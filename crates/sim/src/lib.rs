//! # sim — decision-diagram simulation and outcome-distribution extraction
//!
//! Two complementary capabilities built on top of the [`dd`] package:
//!
//! * [`StateVectorSimulator`] — classical Schrödinger-style simulation of
//!   *unitary* circuits (plus trailing measurements), used for the static
//!   reference circuits and for simulative equivalence checking.
//! * [`extract_distribution`] — the paper's Section 5 scheme: extracting the
//!   complete measurement-outcome distribution of a *dynamic* circuit by
//!   branching the simulation at every measurement and reset, check-pointing
//!   the outcome probabilities and pruning zero-probability branches.
//!
//! ```
//! use algorithms::bv;
//! use sim::{extract_distribution, ExtractionConfig, StateVectorSimulator};
//!
//! let hidden = vec![true, false, true];
//! // Simulate the static circuit …
//! let mut static_sim = StateVectorSimulator::new(4);
//! static_sim.run(&bv::bv_static(&hidden, true))?;
//! let static_dist = static_sim.outcome_distribution();
//! // … extract the dynamic circuit's distribution …
//! let dynamic = extract_distribution(&bv::bv_dynamic(&hidden), &ExtractionConfig::default())?;
//! // … and compare.
//! assert!(static_dist.approx_eq(&dynamic.distribution, 1e-9));
//! # Ok::<(), sim::SimError>(())
//! ```

#![warn(missing_docs)]

mod distribution;
mod error;
mod extraction;
mod gate_map;
mod statevector;
mod stochastic;

pub use distribution::OutcomeDistribution;
pub use error::SimError;
pub use extraction::{
    extract_distribution, extract_distribution_budgeted, extract_distribution_budgeted_in,
    extract_distribution_from, extract_distribution_parallel, ExtractionConfig, ExtractionResult,
};
pub use gate_map::{controls as dd_controls, gate_matrix};
pub use statevector::StateVectorSimulator;
pub use stochastic::{
    sample_distribution, sample_record, shots_to_reach_tolerance, ShotConfig, ShotResult,
};
