//! Error type of the simulation layer.

use std::fmt;

/// Error returned by the simulators and the extraction scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A dynamic-circuit primitive was encountered where only unitary
    /// operations are supported.
    UnsupportedOperation {
        /// Description of the offending operation.
        operation: String,
        /// What the caller was trying to do.
        context: &'static str,
    },
    /// The branching extraction exceeded the configured branch budget.
    BranchLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// The provided initial state has the wrong number of qubits.
    InitialStateMismatch {
        /// Qubits in the circuit.
        expected: usize,
        /// Qubits provided.
        provided: usize,
    },
    /// The computation was stopped by its [`dd::Budget`]: cancelled by a
    /// competing scheme or out of its node budget.
    Interrupted(dd::LimitExceeded),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnsupportedOperation { operation, context } => {
                write!(
                    f,
                    "operation `{operation}` is not supported during {context}"
                )
            }
            SimError::BranchLimitExceeded { limit } => {
                write!(f, "extraction exceeded the branch limit of {limit}")
            }
            SimError::InitialStateMismatch { expected, provided } => write!(
                f,
                "initial state has {provided} qubits but the circuit expects {expected}"
            ),
            SimError::Interrupted(reason) => write!(f, "simulation interrupted: {reason}"),
        }
    }
}

impl std::error::Error for SimError {}
