//! Measurement-outcome distributions and their comparison metrics.

use std::collections::BTreeMap;
use std::fmt;

/// A probability distribution over classical bit strings.
///
/// Outcomes are keyed by the vector of classical bit values (`outcome[b]` is
/// the value of classical bit `b`). Only outcomes with non-zero probability
/// are stored, so sparse distributions (such as the Bernstein–Vazirani or
/// exact-phase QPE outputs) stay small even for wide registers.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OutcomeDistribution {
    n_bits: usize,
    probabilities: BTreeMap<Vec<bool>, f64>,
}

impl OutcomeDistribution {
    /// Creates an empty distribution over `n_bits` classical bits.
    pub fn new(n_bits: usize) -> Self {
        OutcomeDistribution {
            n_bits,
            probabilities: BTreeMap::new(),
        }
    }

    /// Number of classical bits of each outcome.
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }

    /// Number of outcomes with non-zero recorded probability.
    pub fn len(&self) -> usize {
        self.probabilities.len()
    }

    /// Returns `true` when no outcome has been recorded.
    pub fn is_empty(&self) -> bool {
        self.probabilities.is_empty()
    }

    /// Adds `probability` mass to `outcome`.
    ///
    /// # Panics
    ///
    /// Panics if the outcome length does not match the declared bit count.
    pub fn add(&mut self, outcome: Vec<bool>, probability: f64) {
        assert_eq!(outcome.len(), self.n_bits, "outcome length mismatch");
        if probability <= 0.0 {
            return;
        }
        *self.probabilities.entry(outcome).or_insert(0.0) += probability;
    }

    /// Probability of a specific outcome (0 when absent).
    pub fn probability(&self, outcome: &[bool]) -> f64 {
        self.probabilities.get(outcome).copied().unwrap_or(0.0)
    }

    /// Probability of the outcome given as a little-endian integer
    /// (bit `b` of `index` is classical bit `b`).
    pub fn probability_of_index(&self, index: usize) -> f64 {
        let outcome: Vec<bool> = (0..self.n_bits).map(|b| (index >> b) & 1 == 1).collect();
        self.probability(&outcome)
    }

    /// Iterator over `(outcome, probability)` pairs in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<bool>, f64)> {
        self.probabilities.iter().map(|(k, &v)| (k, v))
    }

    /// Total recorded probability mass (1 for a complete distribution).
    pub fn total(&self) -> f64 {
        self.probabilities.values().sum()
    }

    /// Rescales the distribution to total mass one.
    ///
    /// No-op for an empty distribution.
    pub fn normalize(&mut self) {
        let total = self.total();
        if total > 0.0 {
            for p in self.probabilities.values_mut() {
                *p /= total;
            }
        }
    }

    /// The most probable outcome, if any.
    pub fn most_probable(&self) -> Option<(&Vec<bool>, f64)> {
        self.probabilities
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are finite"))
            .map(|(k, &v)| (k, v))
    }

    /// The `k` most probable outcomes, most probable first.
    pub fn top_k(&self, k: usize) -> Vec<(Vec<bool>, f64)> {
        let mut entries: Vec<(Vec<bool>, f64)> = self
            .probabilities
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        entries.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("probabilities are finite"));
        entries.truncate(k);
        entries
    }

    /// Total-variation distance `½ Σ |p(x) − q(x)|` to another distribution.
    ///
    /// # Panics
    ///
    /// Panics if the bit counts differ.
    pub fn total_variation_distance(&self, other: &OutcomeDistribution) -> f64 {
        assert_eq!(self.n_bits, other.n_bits, "bit count mismatch");
        let mut distance = 0.0;
        for (outcome, p) in &self.probabilities {
            distance += (p - other.probability(outcome)).abs();
        }
        for (outcome, q) in &other.probabilities {
            if !self.probabilities.contains_key(outcome) {
                distance += q;
            }
        }
        distance / 2.0
    }

    /// Classical (Bhattacharyya) fidelity `(Σ √(p(x) q(x)))²` to another
    /// distribution. Equals 1 exactly when the distributions coincide.
    ///
    /// # Panics
    ///
    /// Panics if the bit counts differ.
    pub fn fidelity(&self, other: &OutcomeDistribution) -> f64 {
        assert_eq!(self.n_bits, other.n_bits, "bit count mismatch");
        let mut sum = 0.0;
        for (outcome, p) in &self.probabilities {
            sum += (p * other.probability(outcome)).sqrt();
        }
        sum * sum
    }

    /// Returns `true` when the distributions agree within `tolerance` in
    /// total-variation distance.
    pub fn approx_eq(&self, other: &OutcomeDistribution, tolerance: f64) -> bool {
        self.n_bits == other.n_bits && self.total_variation_distance(other) <= tolerance
    }
}

impl fmt::Display for OutcomeDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "distribution over {} bits:", self.n_bits)?;
        for (outcome, p) in self.iter() {
            // Print the most-significant classical bit first.
            let bits: String = outcome
                .iter()
                .rev()
                .map(|&b| if b { '1' } else { '0' })
                .collect();
            writeln!(f, "  |{bits}⟩: {p:.6}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(pattern: &str) -> Vec<bool> {
        // Little-endian input: first character is classical bit 0.
        pattern.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn add_and_query() {
        let mut d = OutcomeDistribution::new(3);
        d.add(bits("100"), 0.25);
        d.add(bits("011"), 0.75);
        assert_eq!(d.len(), 2);
        assert!((d.probability(&bits("100")) - 0.25).abs() < 1e-12);
        assert!((d.probability(&bits("000")) - 0.0).abs() < 1e-12);
        assert!((d.total() - 1.0).abs() < 1e-12);
        // index 1 = bit 0 set.
        assert!((d.probability_of_index(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn adding_zero_probability_is_ignored() {
        let mut d = OutcomeDistribution::new(2);
        d.add(bits("00"), 0.0);
        assert!(d.is_empty());
    }

    #[test]
    fn accumulates_repeated_outcomes() {
        let mut d = OutcomeDistribution::new(1);
        d.add(bits("1"), 0.25);
        d.add(bits("1"), 0.25);
        assert!((d.probability(&bits("1")) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalize_scales_to_one() {
        let mut d = OutcomeDistribution::new(1);
        d.add(bits("0"), 0.2);
        d.add(bits("1"), 0.6);
        d.normalize();
        assert!((d.total() - 1.0).abs() < 1e-12);
        assert!((d.probability(&bits("1")) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn metrics_on_identical_distributions() {
        let mut d = OutcomeDistribution::new(2);
        d.add(bits("00"), 0.5);
        d.add(bits("11"), 0.5);
        assert!(d.total_variation_distance(&d.clone()) < 1e-12);
        assert!((d.fidelity(&d.clone()) - 1.0).abs() < 1e-12);
        assert!(d.approx_eq(&d.clone(), 1e-9));
    }

    #[test]
    fn metrics_on_disjoint_distributions() {
        let mut a = OutcomeDistribution::new(1);
        a.add(bits("0"), 1.0);
        let mut b = OutcomeDistribution::new(1);
        b.add(bits("1"), 1.0);
        assert!((a.total_variation_distance(&b) - 1.0).abs() < 1e-12);
        assert!(a.fidelity(&b) < 1e-12);
        assert!(!a.approx_eq(&b, 0.5));
    }

    #[test]
    fn top_k_orders_by_probability() {
        let mut d = OutcomeDistribution::new(2);
        d.add(bits("00"), 0.1);
        d.add(bits("10"), 0.6);
        d.add(bits("01"), 0.3);
        let top = d.top_k(2);
        assert_eq!(top[0].0, bits("10"));
        assert_eq!(top[1].0, bits("01"));
        assert_eq!(d.most_probable().unwrap().0, &bits("10"));
    }

    #[test]
    fn display_prints_msb_first() {
        let mut d = OutcomeDistribution::new(3);
        d.add(bits("100"), 1.0); // bit 0 = 1 → printed as |001⟩
        let text = format!("{d}");
        assert!(text.contains("|001⟩"));
    }

    #[test]
    #[should_panic(expected = "outcome length mismatch")]
    fn wrong_length_outcome_panics() {
        let mut d = OutcomeDistribution::new(2);
        d.add(vec![true], 1.0);
    }
}
