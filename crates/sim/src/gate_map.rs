//! Mapping from the symbolic circuit IR onto numeric decision-diagram gates.

use circuit::{QuantumControl, StandardGate};
use dd::{gates, Control, GateMatrix};

/// Returns the 2x2 matrix of a symbolic gate.
pub fn gate_matrix(gate: StandardGate) -> GateMatrix {
    match gate {
        StandardGate::I => gates::id(),
        StandardGate::H => gates::h(),
        StandardGate::X => gates::x(),
        StandardGate::Y => gates::y(),
        StandardGate::Z => gates::z(),
        StandardGate::S => gates::s(),
        StandardGate::Sdg => gates::sdg(),
        StandardGate::T => gates::t(),
        StandardGate::Tdg => gates::tdg(),
        StandardGate::Sx => gates::sx(),
        StandardGate::Sxdg => gates::sxdg(),
        StandardGate::Phase(theta) => gates::phase(theta),
        StandardGate::Rx(theta) => gates::rx(theta),
        StandardGate::Ry(theta) => gates::ry(theta),
        StandardGate::Rz(theta) => gates::rz(theta),
        StandardGate::U(theta, phi, lambda) => gates::u3(theta, phi, lambda),
    }
}

/// Converts circuit-level quantum controls into decision-diagram controls.
pub fn controls(controls: &[QuantumControl]) -> Vec<Control> {
    controls
        .iter()
        .map(|c| Control {
            qubit: c.qubit,
            positive: c.positive,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd::gates::{is_unitary, matmul};

    #[test]
    fn every_gate_maps_to_a_unitary_matrix() {
        let all = [
            StandardGate::I,
            StandardGate::H,
            StandardGate::X,
            StandardGate::Y,
            StandardGate::Z,
            StandardGate::S,
            StandardGate::Sdg,
            StandardGate::T,
            StandardGate::Tdg,
            StandardGate::Sx,
            StandardGate::Sxdg,
            StandardGate::Phase(0.37),
            StandardGate::Rx(-1.1),
            StandardGate::Ry(0.6),
            StandardGate::Rz(2.4),
            StandardGate::U(0.2, 1.3, -0.8),
        ];
        for g in all {
            assert!(is_unitary(&gate_matrix(g)), "{g} should be unitary");
        }
    }

    #[test]
    fn symbolic_inverse_matches_matrix_adjoint() {
        let gates_to_check = [
            StandardGate::H,
            StandardGate::S,
            StandardGate::T,
            StandardGate::Sx,
            StandardGate::Phase(0.9),
            StandardGate::Rx(1.7),
            StandardGate::Ry(-0.4),
            StandardGate::Rz(0.55),
            StandardGate::U(0.3, -1.0, 2.0),
        ];
        for g in gates_to_check {
            let product = matmul(&gate_matrix(g.inverse()), &gate_matrix(g));
            assert!(
                product[0][0].is_one()
                    && product[1][1].is_one()
                    && product[0][1].is_zero()
                    && product[1][0].is_zero(),
                "inverse of {g} is not its adjoint"
            );
        }
    }

    #[test]
    fn control_polarity_is_preserved() {
        let qc = [QuantumControl::pos(3), QuantumControl::neg(1)];
        let dd_controls = controls(&qc);
        assert_eq!(dd_controls.len(), 2);
        assert_eq!(dd_controls[0].qubit, 3);
        assert!(dd_controls[0].positive);
        assert_eq!(dd_controls[1].qubit, 1);
        assert!(!dd_controls[1].positive);
    }
}
