//! Shot-based stochastic simulation of dynamic circuits.
//!
//! Section 5 of the paper discusses — and dismisses — the most obvious way of
//! obtaining the measurement-outcome distribution of a dynamic circuit:
//! simulate it over and over, sampling a concrete outcome at every
//! measurement and reset, and histogram the observed classical records. The
//! approach handles every dynamic primitive trivially but needs "huge amounts
//! of individual runs in order to reason about the output distribution in a
//! statistically significant way".
//!
//! This module implements that baseline so the claim can be quantified: the
//! ablation benchmarks compare the number of shots required to approximate
//! the exact distribution (as produced by [`extract_distribution`]) within a
//! given total-variation distance against the cost of a single extraction.
//!
//! [`extract_distribution`]: crate::extract_distribution

use crate::distribution::OutcomeDistribution;
use crate::error::SimError;
use crate::gate_map;
use circuit::{OpKind, QuantumCircuit};
use dd::{gates, DdPackage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Configuration of a stochastic (shot-based) simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShotConfig {
    /// Number of end-to-end circuit executions to sample.
    pub shots: usize,
    /// Seed of the pseudo-random number generator, so runs are reproducible.
    pub seed: u64,
}

impl Default for ShotConfig {
    fn default() -> Self {
        ShotConfig {
            shots: 1024,
            seed: 0,
        }
    }
}

/// Result of a stochastic simulation.
#[derive(Debug, Clone)]
pub struct ShotResult {
    /// Empirical distribution of the classical records (normalised).
    pub distribution: OutcomeDistribution,
    /// Number of shots that were executed.
    pub shots: usize,
    /// Wall-clock time of the sampling run.
    pub duration: Duration,
}

/// Samples the classical record of a single end-to-end execution of
/// `circuit`, realising every measurement and reset stochastically.
///
/// # Errors
///
/// Never fails for well-formed circuits; the `Result` mirrors the other
/// simulator entry points (an out-of-range index would panic inside the
/// decision-diagram package instead).
pub fn sample_record(circuit: &QuantumCircuit, rng: &mut impl Rng) -> Result<Vec<bool>, SimError> {
    let mut package = DdPackage::new(circuit.num_qubits());
    let mut state = package.zero_state();
    let mut bits = vec![false; circuit.num_bits()];
    for op in circuit.iter() {
        match &op.kind {
            OpKind::Barrier => {}
            OpKind::Unitary {
                gate,
                target,
                controls,
            } => {
                let apply = match op.condition {
                    None => true,
                    Some(cond) => bits[cond.bit] == cond.value,
                };
                if apply {
                    let matrix = gate_map::gate_matrix(*gate);
                    let dd_controls = gate_map::controls(controls);
                    state = package.apply_gate(state, &matrix, *target, &dd_controls);
                }
            }
            OpKind::Measure { qubit, bit } => {
                let (p0, _p1) = package.probabilities(state, *qubit);
                let outcome = rng.gen::<f64>() >= p0;
                let (collapsed, _) = package.collapse(state, *qubit, outcome, true);
                state = collapsed;
                bits[*bit] = outcome;
            }
            OpKind::Reset { qubit } => {
                let (p0, _p1) = package.probabilities(state, *qubit);
                let outcome = rng.gen::<f64>() >= p0;
                let (collapsed, _) = package.collapse(state, *qubit, outcome, true);
                state = collapsed;
                if outcome {
                    state = package.apply_gate(state, &gates::x(), *qubit, &[]);
                }
            }
        }
    }
    Ok(bits)
}

/// Runs `config.shots` stochastic executions of `circuit` and histograms the
/// observed classical records.
///
/// # Errors
///
/// Propagates errors from [`sample_record`] (none for well-formed circuits).
///
/// # Examples
///
/// ```
/// use circuit::QuantumCircuit;
/// use sim::{sample_distribution, ShotConfig};
///
/// let mut qc = QuantumCircuit::new(1, 1);
/// qc.h(0).measure(0, 0);
/// let result = sample_distribution(&qc, &ShotConfig { shots: 2000, seed: 7 })?;
/// let p1 = result.distribution.probability(&[true]);
/// assert!((p1 - 0.5).abs() < 0.1);
/// # Ok::<(), sim::SimError>(())
/// ```
pub fn sample_distribution(
    circuit: &QuantumCircuit,
    config: &ShotConfig,
) -> Result<ShotResult, SimError> {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut distribution = OutcomeDistribution::new(circuit.num_bits());
    let weight = 1.0 / config.shots.max(1) as f64;
    for _ in 0..config.shots {
        let record = sample_record(circuit, &mut rng)?;
        distribution.add(record, weight);
    }
    Ok(ShotResult {
        distribution,
        shots: config.shots,
        duration: start.elapsed(),
    })
}

/// Keeps doubling the shot count until the empirical distribution is within
/// `tolerance` total-variation distance of `reference`, or `max_shots` is
/// reached. Returns the number of shots that sufficed (`Err(shots_used)` when
/// the budget ran out).
///
/// This quantifies the paper's argument that stochastic sampling needs "huge
/// amounts of individual runs" compared to a single run of the extraction
/// scheme.
///
/// # Errors
///
/// Returns `Err(max_shots)` when the tolerance was not reached within the
/// budget.
pub fn shots_to_reach_tolerance(
    circuit: &QuantumCircuit,
    reference: &OutcomeDistribution,
    tolerance: f64,
    max_shots: usize,
    seed: u64,
) -> Result<usize, usize> {
    let mut shots = 64;
    loop {
        let config = ShotConfig { shots, seed };
        let result = sample_distribution(circuit, &config)
            .expect("stochastic sampling of a well-formed circuit");
        if result.distribution.total_variation_distance(reference) <= tolerance {
            return Ok(shots);
        }
        if shots >= max_shots {
            return Err(max_shots);
        }
        shots = (shots * 2).min(max_shots);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::QuantumCircuit;

    #[test]
    fn deterministic_circuit_yields_single_record() {
        let mut qc = QuantumCircuit::new(2, 2);
        qc.x(0).measure(0, 0).measure(1, 1);
        let result = sample_distribution(&qc, &ShotConfig { shots: 50, seed: 1 }).unwrap();
        assert_eq!(result.distribution.len(), 1);
        assert!((result.distribution.probability(&[true, false]) - 1.0).abs() < 1e-12);
        assert_eq!(result.shots, 50);
    }

    #[test]
    fn sampling_is_reproducible_for_a_fixed_seed() {
        let mut qc = QuantumCircuit::new(1, 1);
        qc.h(0).measure(0, 0);
        let a = sample_distribution(
            &qc,
            &ShotConfig {
                shots: 128,
                seed: 3,
            },
        )
        .unwrap();
        let b = sample_distribution(
            &qc,
            &ShotConfig {
                shots: 128,
                seed: 3,
            },
        )
        .unwrap();
        assert!(a.distribution.approx_eq(&b.distribution, 1e-12));
    }

    #[test]
    fn classically_controlled_correction_is_respected() {
        // Measure |+⟩, then flip a second qubit when the outcome was 1: the
        // two classical bits must always agree.
        let mut qc = QuantumCircuit::new(2, 2);
        qc.h(0).measure(0, 0).x_if(1, 0).measure(1, 1);
        let result = sample_distribution(
            &qc,
            &ShotConfig {
                shots: 200,
                seed: 11,
            },
        )
        .unwrap();
        for (record, p) in result.distribution.iter() {
            assert_eq!(record[0], record[1], "records disagree with p = {p}");
        }
    }

    #[test]
    fn reset_restores_the_ground_state() {
        let mut qc = QuantumCircuit::new(1, 2);
        qc.h(0).measure(0, 0).reset(0).measure(0, 1);
        let result = sample_distribution(
            &qc,
            &ShotConfig {
                shots: 300,
                seed: 5,
            },
        )
        .unwrap();
        // Classical bit 1 is measured after the reset and must always be 0.
        for (record, _) in result.distribution.iter() {
            assert!(!record[1]);
        }
    }

    #[test]
    fn empirical_distribution_converges_to_uniform() {
        let mut qc = QuantumCircuit::new(2, 2);
        qc.h(0).h(1).measure(0, 0).measure(1, 1);
        let result = sample_distribution(
            &qc,
            &ShotConfig {
                shots: 8000,
                seed: 17,
            },
        )
        .unwrap();
        for index in 0..4 {
            let p = result.distribution.probability_of_index(index);
            assert!(
                (p - 0.25).abs() < 0.05,
                "outcome {index} has probability {p}"
            );
        }
        assert!((result.distribution.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shots_to_reach_tolerance_reports_budget_exhaustion() {
        let mut qc = QuantumCircuit::new(1, 1);
        qc.h(0).measure(0, 0);
        let mut exact = OutcomeDistribution::new(1);
        exact.add(vec![false], 0.5);
        exact.add(vec![true], 0.5);
        // A loose tolerance is reached quickly …
        let ok = shots_to_reach_tolerance(&qc, &exact, 0.2, 1 << 12, 23);
        assert!(ok.is_ok());
        // … an absurdly tight one exhausts the budget.
        let err = shots_to_reach_tolerance(&qc, &exact, 1e-9, 256, 23);
        assert_eq!(err, Err(256));
    }
}
