//! Decision-diagram based state-vector simulation of unitary circuits.

use crate::distribution::OutcomeDistribution;
use crate::error::SimError;
use crate::gate_map;
use circuit::{OpKind, Operation, QuantumCircuit};
use dd::{Complex, DdPackage, VEdge};
use std::time::{Duration, Instant};

/// Widest register for which [`StateVectorSimulator::fidelity_with`] takes
/// the dense SoA inner-product path (4096 amplitudes, 128 KiB of lanes per
/// state); wider states fall back to the DD-walk rebuild.
const DENSE_FIDELITY_MAX_QUBITS: usize = 12;

/// A Schrödinger-style simulator representing the state as a vector decision
/// diagram.
///
/// The simulator handles unitary operations and *trailing* measurements (the
/// structure of the paper's static benchmark circuits). Mid-circuit
/// non-unitary primitives are rejected — that is exactly the gap the
/// extraction scheme in [`crate::extract_distribution`] fills.
///
/// # Examples
///
/// ```
/// use algorithms::ghz;
/// use sim::StateVectorSimulator;
///
/// let circuit = ghz::ghz(3, true);
/// let mut sim = StateVectorSimulator::new(3);
/// sim.run(&circuit)?;
/// let dist = sim.outcome_distribution();
/// assert_eq!(dist.len(), 2); // |000⟩ and |111⟩
/// # Ok::<(), sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct StateVectorSimulator {
    package: DdPackage,
    state: VEdge,
    n_qubits: usize,
    /// (qubit, bit) pairs recorded from measurement operations.
    measurements: Vec<(usize, usize)>,
    n_bits: usize,
    applied_gates: usize,
}

impl StateVectorSimulator {
    /// Creates a simulator for `n_qubits` qubits in the all-zeros state.
    pub fn new(n_qubits: usize) -> Self {
        StateVectorSimulator::with_budget(n_qubits, dd::Budget::unlimited())
    }

    /// Creates a simulator initialised to the computational basis state given
    /// by `bits` (`bits[q]` is the value of qubit `q`).
    pub fn with_initial_state(bits: &[bool]) -> Self {
        let mut sim = StateVectorSimulator::new(bits.len());
        let initial = sim.package.basis_state(bits);
        sim.set_state(initial);
        sim
    }

    /// Creates a simulator whose decision-diagram package observes `budget`
    /// (see [`DdPackage::with_budget`]): [`run`](Self::run) then stops with
    /// [`SimError::Interrupted`] when the budget's cancel token fires, its
    /// deadline passes or its node limit trips.
    pub fn with_budget(n_qubits: usize, budget: dd::Budget) -> Self {
        StateVectorSimulator::with_budget_in(n_qubits, budget, None)
    }

    /// [`with_budget`](Self::with_budget), optionally attaching the
    /// simulator's package as a workspace of a shared decision-diagram store
    /// (see [`dd::SharedStore`]) so racing verification schemes reuse each
    /// other's subdiagrams.
    pub fn with_budget_in(
        n_qubits: usize,
        budget: dd::Budget,
        store: Option<&std::sync::Arc<dd::SharedStore>>,
    ) -> Self {
        StateVectorSimulator::with_memory_in(n_qubits, budget, dd::MemoryConfig::default(), store)
    }

    /// [`with_budget_in`](Self::with_budget_in) with explicit
    /// [`dd::MemoryConfig`] sizing for the simulator's package — the hook
    /// through which the portfolio scheduler's per-scheme GC-threshold hints
    /// reach the simulative check.
    pub fn with_memory_in(
        n_qubits: usize,
        budget: dd::Budget,
        memory: dd::MemoryConfig,
        store: Option<&std::sync::Arc<dd::SharedStore>>,
    ) -> Self {
        let mut package = DdPackage::with_store_config(store, n_qubits, budget, memory);
        let state = package.zero_state();
        // The current state is the garbage-collection root of the simulator:
        // everything else the package holds may be reclaimed between gates.
        package.protect_vector(state);
        StateVectorSimulator {
            package,
            state,
            n_qubits,
            measurements: Vec::new(),
            n_bits: 0,
            applied_gates: 0,
        }
    }

    /// Combines [`with_budget`](Self::with_budget) and
    /// [`with_initial_state`](Self::with_initial_state).
    pub fn with_budget_and_initial_state(bits: &[bool], budget: dd::Budget) -> Self {
        StateVectorSimulator::with_budget_and_initial_state_in(bits, budget, None)
    }

    /// [`with_budget_and_initial_state`](Self::with_budget_and_initial_state)
    /// with an optional shared decision-diagram store.
    pub fn with_budget_and_initial_state_in(
        bits: &[bool],
        budget: dd::Budget,
        store: Option<&std::sync::Arc<dd::SharedStore>>,
    ) -> Self {
        StateVectorSimulator::with_memory_and_initial_state_in(
            bits,
            budget,
            dd::MemoryConfig::default(),
            store,
        )
    }

    /// [`with_budget_and_initial_state_in`](Self::with_budget_and_initial_state_in)
    /// with explicit [`dd::MemoryConfig`] sizing.
    pub fn with_memory_and_initial_state_in(
        bits: &[bool],
        budget: dd::Budget,
        memory: dd::MemoryConfig,
        store: Option<&std::sync::Arc<dd::SharedStore>>,
    ) -> Self {
        let mut sim = StateVectorSimulator::with_memory_in(bits.len(), budget, memory, store);
        let initial = sim.package.basis_state(bits);
        sim.set_state(initial);
        sim
    }

    /// Replaces the current state, moving the garbage-collection protection
    /// from the old edge to the new one.
    fn set_state(&mut self, state: VEdge) {
        self.package.unprotect_vector(self.state);
        self.package.protect_vector(state);
        self.state = state;
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of unitary gates applied so far.
    pub fn applied_gates(&self) -> usize {
        self.applied_gates
    }

    /// The decision-diagram package backing this simulator.
    pub fn package_mut(&mut self) -> &mut DdPackage {
        &mut self.package
    }

    /// The current state as a decision-diagram edge.
    pub fn state(&self) -> VEdge {
        self.state
    }

    /// Applies a single operation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnsupportedOperation`] for resets and
    /// classically-controlled operations. Measurements are *recorded* (for
    /// [`outcome_distribution`](Self::outcome_distribution)) but do not alter
    /// the state; they are only valid as the trailing operations of a static
    /// circuit.
    pub fn apply(&mut self, op: &Operation) -> Result<(), SimError> {
        if op.condition.is_some() {
            return Err(SimError::UnsupportedOperation {
                operation: op.to_string(),
                context: "state-vector simulation",
            });
        }
        match &op.kind {
            OpKind::Barrier => Ok(()),
            OpKind::Unitary {
                gate,
                target,
                controls,
            } => {
                let matrix = gate_map::gate_matrix(*gate);
                let dd_controls = gate_map::controls(controls);
                let next = self
                    .package
                    .apply_gate(self.state, &matrix, *target, &dd_controls);
                self.set_state(next);
                self.applied_gates += 1;
                Ok(())
            }
            OpKind::Measure { qubit, bit } => {
                self.measurements.push((*qubit, *bit));
                self.n_bits = self.n_bits.max(bit + 1);
                Ok(())
            }
            OpKind::Reset { qubit } => Err(SimError::UnsupportedOperation {
                operation: format!("reset q[{qubit}]"),
                context: "state-vector simulation",
            }),
        }
    }

    /// Runs all operations of `circuit`.
    ///
    /// # Errors
    ///
    /// See [`apply`](Self::apply). The circuit must act on at most the
    /// simulator's qubit count.
    pub fn run(&mut self, circuit: &QuantumCircuit) -> Result<(), SimError> {
        if circuit.num_qubits() > self.n_qubits {
            return Err(SimError::InitialStateMismatch {
                expected: circuit.num_qubits(),
                provided: self.n_qubits,
            });
        }
        self.n_bits = self.n_bits.max(circuit.num_bits());
        for op in circuit.ops() {
            self.apply(op)?;
            if let Some(reason) = self.package.limit_exceeded() {
                return Err(SimError::Interrupted(reason));
            }
        }
        Ok(())
    }

    /// Amplitude of a computational basis state (index bit `q` = qubit `q`).
    pub fn amplitude(&self, basis_index: usize) -> Complex {
        self.package.amplitude(self.state, basis_index)
    }

    /// Dense amplitude vector (only for small registers; see
    /// [`DdPackage::amplitudes`]).
    pub fn amplitudes(&self) -> Vec<Complex> {
        self.package.amplitudes(self.state)
    }

    /// Measurement probabilities of a single qubit.
    pub fn probabilities(&mut self, qubit: usize) -> (f64, f64) {
        self.package.probabilities(self.state, qubit)
    }

    /// Squared norm of the current state (should stay 1 under unitary
    /// evolution).
    pub fn norm_sqr(&mut self) -> f64 {
        self.package.norm_sqr(self.state)
    }

    /// Number of decision-diagram nodes of the current state.
    pub fn state_size(&self) -> usize {
        self.package.vector_size(self.state)
    }

    /// Memory telemetry of the backing decision-diagram package.
    pub fn memory_stats(&self) -> dd::MemoryStats {
        self.package.memory_stats()
    }

    /// Fidelity `|⟨self|other⟩|²` with another simulator state over the same
    /// qubit count.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn fidelity_with(&mut self, other: &StateVectorSimulator) -> f64 {
        assert_eq!(self.n_qubits, other.n_qubits, "qubit count mismatch");
        if self.n_qubits <= DENSE_FIDELITY_MAX_QUBITS {
            // Small registers: expand both states to SoA amplitude lanes and
            // take the inner product with the batched kernel. No nodes are
            // re-interned into this package, and both kernel backends reduce
            // with the same accumulator structure, so the value (and any
            // verdict derived from it) is backend-independent.
            let (mut a_re, mut a_im) = (Vec::new(), Vec::new());
            let (mut b_re, mut b_im) = (Vec::new(), Vec::new());
            self.package
                .amplitude_lanes(self.state, &mut a_re, &mut a_im);
            other
                .package
                .amplitude_lanes(other.state, &mut b_re, &mut b_im);
            return dd::kernels::dot_conj_lanes(&a_re, &a_im, &b_re, &b_im).norm_sqr();
        }
        // Rebuild the other state in this package via its amplitude decision
        // diagram structure: walk the other's DD and re-intern it here.
        let rebuilt = clone_state_into(&mut self.package, &other.package, other.state);
        self.package.fidelity(self.state, rebuilt)
    }

    /// Runs `circuit` from the basis state `bits` *in this simulator's own
    /// package* and returns the fidelity `|⟨before|after⟩|²` between the
    /// state held before the call and the rerun's final state (which also
    /// becomes the current state).
    ///
    /// Compared to running a second simulator and [`fidelity_with`]
    /// (Self::fidelity_with), this keeps a single decision-diagram package
    /// alive — on a shared store, a single *attachment*, which matters for
    /// the store's barrier garbage collection: a thread can only park one
    /// workspace at a safe point, so a second simultaneous attachment on
    /// the same thread would stall mid-race collections into the deferral
    /// fallback.
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run); on error the current state is the rerun's
    /// partial state and the previous state is released.
    pub fn fidelity_with_rerun(
        &mut self,
        circuit: &QuantumCircuit,
        bits: &[bool],
    ) -> Result<f64, SimError> {
        let previous = self.state;
        // Keep the finished state alive across the rerun's collections (the
        // rerun's states take over the simulator's own protection slot).
        self.package.protect_vector(previous);
        let fresh = self.package.basis_state(bits);
        self.set_state(fresh);
        let outcome = self.run(circuit);
        let fidelity = outcome.map(|()| self.package.fidelity(previous, self.state));
        self.package.unprotect_vector(previous);
        fidelity
    }

    /// Probability distribution over the recorded measurements.
    ///
    /// The distribution ranges over the classical bits of the circuits run so
    /// far (at least every bit written by a measurement). Classical bits that
    /// are never measured read 0. Unmeasured qubits are traced out. Branches
    /// whose probability mass is below `1e-12` are pruned, so sparse states
    /// produce small distributions even on wide registers.
    pub fn outcome_distribution(&mut self) -> OutcomeDistribution {
        let n_bits = self
            .measurements
            .iter()
            .map(|&(_, b)| b + 1)
            .max()
            .unwrap_or(0)
            .max(self.n_bits);
        let mut dist = OutcomeDistribution::new(n_bits);
        // For every classical bit, the *last* measurement writing it wins;
        // earlier writers are traced out. A single qubit may determine
        // several bits, so the map is qubit → bits.
        let mut winner_of_bit: Vec<Option<usize>> = vec![None; n_bits];
        for &(q, b) in &self.measurements {
            winner_of_bit[b] = Some(q);
        }
        let mut bits_of_qubit: Vec<Vec<usize>> = vec![Vec::new(); self.n_qubits];
        for (b, winner) in winner_of_bit.iter().enumerate() {
            if let Some(q) = winner {
                bits_of_qubit[*q].push(b);
            }
        }
        let mut outcome = vec![false; n_bits];
        let state = self.state;
        self.enumerate(
            state,
            self.n_qubits,
            1.0,
            &bits_of_qubit,
            &mut outcome,
            &mut dist,
        );
        dist
    }

    fn enumerate(
        &mut self,
        edge: VEdge,
        level: usize,
        path_weight_sqr: f64,
        bits_of_qubit: &[Vec<usize>],
        outcome: &mut Vec<bool>,
        dist: &mut OutcomeDistribution,
    ) {
        const PRUNE: f64 = 1e-12;
        let mass = path_weight_sqr * self.package.norm_sqr(edge);
        if mass < PRUNE {
            return;
        }
        if level == 0 {
            dist.add(outcome.clone(), mass);
            return;
        }
        let qubit = level - 1;
        if edge.is_zero() {
            return;
        }
        let node_weight = self.package.vweight(edge).norm_sqr();
        let node = edge;
        // Children of the node at this level.
        let (child0, child1) = {
            let amps_level = self.package.vedge_level(node).expect("non-terminal");
            debug_assert_eq!(amps_level as usize, qubit);
            self.children_of(node)
        };
        let bits = &bits_of_qubit[qubit];
        if bits.is_empty() {
            // Traced-out qubit: accumulate both branches into the same
            // outcome.
            for child in [child0, child1] {
                self.enumerate(
                    child,
                    level - 1,
                    path_weight_sqr * node_weight,
                    bits_of_qubit,
                    outcome,
                    dist,
                );
            }
        } else {
            for (value, child) in [(false, child0), (true, child1)] {
                for &bit in bits {
                    outcome[bit] = value;
                }
                self.enumerate(
                    child,
                    level - 1,
                    path_weight_sqr * node_weight,
                    bits_of_qubit,
                    outcome,
                    dist,
                );
            }
            for &bit in bits {
                outcome[bit] = false;
            }
        }
    }

    fn children_of(&self, edge: VEdge) -> (VEdge, VEdge) {
        // Safe: only called on non-terminal edges.
        let amps = self.package.vector_children(edge);
        (amps[0], amps[1])
    }

    /// Simulation time helper: runs the unitary part of `circuit` in a fresh
    /// simulator and reports the simulator together with the elapsed time
    /// (the paper's `t_sim`).
    pub fn timed_run(circuit: &QuantumCircuit) -> Result<(Self, Duration), SimError> {
        let start = Instant::now();
        let mut sim = StateVectorSimulator::new(circuit.num_qubits());
        sim.run(circuit)?;
        Ok((sim, start.elapsed()))
    }
}

/// Re-creates the decision diagram `state` (owned by `source`) inside
/// `target`, preserving amplitudes.
fn clone_state_into(target: &mut DdPackage, source: &DdPackage, state: VEdge) -> VEdge {
    fn rec(target: &mut DdPackage, source: &DdPackage, edge: VEdge, level: usize) -> VEdge {
        if edge.is_zero() {
            return VEdge::ZERO;
        }
        if level == 0 {
            let w = target.intern(source.vweight(edge));
            return VEdge::terminal(w);
        }
        let children = source.vector_children(edge);
        let lo = rec(target, source, children[0], level - 1);
        let hi = rec(target, source, children[1], level - 1);
        let node = target.make_vnode((level - 1) as u16, [lo, hi]);
        let w = target.intern(source.vweight(edge));
        let scaled = target.intern(target.value(node.weight) * target.value(w));
        VEdge::new(node.node, scaled)
    }
    rec(target, source, state, source.n_qubits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use algorithms::{bv, ghz, qpe};

    #[test]
    fn ghz_state_distribution() {
        let circuit = ghz::ghz(4, true);
        let mut sim = StateVectorSimulator::new(4);
        sim.run(&circuit).expect("unitary circuit");
        assert!((sim.norm_sqr() - 1.0).abs() < 1e-10);
        let dist = sim.outcome_distribution();
        assert_eq!(dist.len(), 2);
        assert!((dist.probability(&[false; 4]) - 0.5).abs() < 1e-10);
        assert!((dist.probability(&[true; 4]) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn bv_static_recovers_hidden_string() {
        let hidden = vec![true, false, true, true, false];
        let circuit = bv::bv_static(&hidden, true);
        let mut sim = StateVectorSimulator::new(circuit.num_qubits());
        sim.run(&circuit).expect("unitary circuit");
        let dist = sim.outcome_distribution();
        assert_eq!(dist.len(), 1);
        let (outcome, p) = dist.most_probable().expect("deterministic outcome");
        assert!((p - 1.0).abs() < 1e-9);
        assert_eq!(outcome, &hidden);
    }

    #[test]
    fn qpe_static_peaks_at_exact_phase() {
        // θ = 0.101₂ = 5/8 → φ = 2π · 5/8.
        let pattern = [true, false, true];
        let phi = qpe::phase_from_bits(&pattern);
        let circuit = qpe::qpe_static(phi, 3, true);
        let mut sim = StateVectorSimulator::new(circuit.num_qubits());
        sim.run(&circuit).expect("unitary circuit");
        let dist = sim.outcome_distribution();
        let (outcome, p) = dist.most_probable().expect("non-empty");
        assert!(
            p > 0.99,
            "exact phase should be recovered with certainty, got {p}"
        );
        // Classical bit k holds the k-th most significant fractional bit.
        let estimate: Vec<bool> = outcome.clone();
        assert_eq!(estimate.len(), 3);
        assert_eq!(
            &estimate[..],
            &pattern[..],
            "estimate should equal the phase bits"
        );
    }

    #[test]
    fn rejects_resets_and_conditions() {
        let mut qc = QuantumCircuit::new(1, 1);
        qc.reset(0);
        let mut sim = StateVectorSimulator::new(1);
        assert!(matches!(
            sim.run(&qc),
            Err(SimError::UnsupportedOperation { .. })
        ));

        let mut qc2 = QuantumCircuit::new(1, 1);
        qc2.x_if(0, 0);
        let mut sim2 = StateVectorSimulator::new(1);
        assert!(matches!(
            sim2.run(&qc2),
            Err(SimError::UnsupportedOperation { .. })
        ));
    }

    #[test]
    fn initial_state_constructor() {
        let sim = StateVectorSimulator::with_initial_state(&[true, false, true]);
        assert!(sim.amplitude(0b101).is_one());
    }

    #[test]
    fn fidelity_between_simulators() {
        let mut a = StateVectorSimulator::new(2);
        let mut b = StateVectorSimulator::new(2);
        let circuit = ghz::ghz(2, false);
        a.run(&circuit).unwrap();
        b.run(&circuit).unwrap();
        assert!((a.fidelity_with(&b) - 1.0).abs() < 1e-9);

        let mut c = StateVectorSimulator::new(2);
        c.run(&ghz::ghz_log_depth(2, false)).unwrap();
        assert!((a.fidelity_with(&c) - 1.0).abs() < 1e-9);

        let mut d = StateVectorSimulator::new(2);
        let mut flip = QuantumCircuit::new(2, 0);
        flip.x(0);
        d.run(&flip).unwrap();
        assert!(a.fidelity_with(&d) < 0.6);
    }

    #[test]
    fn fidelity_with_rerun_matches_two_simulator_fidelity() {
        let n = 3;
        let circuit = ghz::ghz(n, false);
        let alt = ghz::ghz_log_depth(n, false);
        let bits = vec![false; n];

        let mut two_sim_a = StateVectorSimulator::with_initial_state(&bits);
        two_sim_a.run(&circuit).unwrap();
        let mut two_sim_b = StateVectorSimulator::with_initial_state(&bits);
        two_sim_b.run(&alt).unwrap();
        let reference = two_sim_a.fidelity_with(&two_sim_b);

        let mut sim = StateVectorSimulator::with_initial_state(&bits);
        sim.run(&circuit).unwrap();
        let rerun = sim.fidelity_with_rerun(&alt, &bits).unwrap();
        assert!((rerun - reference).abs() < 1e-9, "{rerun} vs {reference}");
        // The rerun's final state becomes the current state.
        assert!((sim.norm_sqr() - 1.0).abs() < 1e-9);

        let mut flip = QuantumCircuit::new(n, 0);
        flip.x(0);
        let mut sim2 = StateVectorSimulator::with_initial_state(&bits);
        sim2.run(&circuit).unwrap();
        assert!(sim2.fidelity_with_rerun(&flip, &bits).unwrap() < 0.6);
    }

    #[test]
    fn timed_run_reports_duration() {
        let circuit = ghz::ghz(8, true);
        let (mut sim, elapsed) = StateVectorSimulator::timed_run(&circuit).unwrap();
        assert!(elapsed.as_nanos() > 0);
        assert_eq!(sim.outcome_distribution().len(), 2);
    }

    #[test]
    fn wide_sparse_state_stays_small() {
        // 64-qubit GHZ: the decision diagram stays linear in the qubit count
        // and the distribution has exactly two outcomes.
        let circuit = ghz::ghz(64, true);
        let mut sim = StateVectorSimulator::new(64);
        sim.run(&circuit).unwrap();
        assert!(sim.state_size() <= 130);
        let dist = sim.outcome_distribution();
        assert_eq!(dist.len(), 2);
    }

    use circuit::QuantumCircuit;
}
