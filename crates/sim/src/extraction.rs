//! Extraction of the complete measurement-outcome distribution of a dynamic
//! circuit by branching classical simulation (Section 5 of the paper).
//!
//! Every measurement encountered during the simulation is a *branching
//! point*: the probabilities of the measured qubit are check-pointed and the
//! simulation forks into the |0⟩- and |1⟩-successor. Resets likewise branch
//! (the two outcomes are merged again, since a reset discards its outcome)
//! and classically-controlled operations are applied or skipped according to
//! the branch's classical bits. The probability of a bit string is the
//! product of the check-pointed probabilities along its path. Branches whose
//! probability falls below a configurable threshold are pruned, so sparse
//! output distributions require far fewer than the worst-case `2^m` leaf
//! simulations.

use crate::distribution::OutcomeDistribution;
use crate::error::SimError;
use crate::gate_map;
use circuit::{OpKind, QuantumCircuit};
use dd::{gates, Budget, DdPackage, VEdge};
use std::time::{Duration, Instant};

/// Configuration of the extraction scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtractionConfig {
    /// Branches whose accumulated probability falls below this threshold are
    /// pruned. The paper prunes exactly-zero branches; the small non-zero
    /// default additionally guards against floating-point dust.
    pub prune_threshold: f64,
    /// Optional hard limit on the number of leaf simulations, as a safeguard
    /// against accidentally extracting a dense distribution over very many
    /// measurements.
    pub max_leaves: Option<usize>,
    /// Decision-diagram memory sizing for the extraction walker's package
    /// (compute-table bounds and the automatic garbage-collection
    /// threshold). The portfolio scheduler overrides the GC threshold per
    /// scheme from recorded peak-node telemetry.
    pub memory: dd::MemoryConfig,
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        ExtractionConfig {
            prune_threshold: 1e-12,
            max_leaves: None,
            memory: dd::MemoryConfig::default(),
        }
    }
}

/// Result of the extraction scheme.
#[derive(Debug, Clone)]
pub struct ExtractionResult {
    /// The complete distribution over the circuit's classical bits.
    pub distribution: OutcomeDistribution,
    /// Number of leaf simulations that were actually carried out.
    pub leaves: usize,
    /// Number of branching points (measurements and resets) in the circuit.
    pub branch_points: usize,
    /// Wall-clock time of the extraction (the paper's `t_extract`).
    pub duration: Duration,
    /// Decision-diagram memory telemetry (aggregated over all worker
    /// packages for the parallel variant).
    pub memory: dd::MemoryStats,
}

struct Extractor<'a> {
    package: DdPackage,
    ops: &'a [circuit::Operation],
    config: ExtractionConfig,
    distribution: OutcomeDistribution,
    leaves: usize,
}

impl<'a> Extractor<'a> {
    // Every frame of the branch walk protects the state it holds, so the
    // package's automatic garbage collection (triggered inside gate
    // applications deeper in the recursion) never reclaims a sibling
    // branch's state. Error paths skip the unprotect — the whole extraction
    // (and its package) is abandoned on error, so leaked protections are
    // irrelevant.
    fn explore(
        &mut self,
        start: usize,
        state: VEdge,
        bits: &mut Vec<bool>,
        probability: f64,
    ) -> Result<(), SimError> {
        let mut state = state;
        self.package.protect_vector(state);
        let mut idx = start;
        while idx < self.ops.len() {
            if let Some(reason) = self.package.limit_exceeded() {
                return Err(SimError::Interrupted(reason));
            }
            let op = &self.ops[idx];
            match &op.kind {
                OpKind::Barrier => {}
                OpKind::Unitary {
                    gate,
                    target,
                    controls,
                } => {
                    let apply = match op.condition {
                        None => true,
                        Some(cond) => bits[cond.bit] == cond.value,
                    };
                    if apply {
                        let matrix = gate_map::gate_matrix(*gate);
                        let dd_controls = gate_map::controls(controls);
                        let next = self
                            .package
                            .apply_gate(state, &matrix, *target, &dd_controls);
                        self.package.unprotect_vector(state);
                        self.package.protect_vector(next);
                        state = next;
                    }
                }
                OpKind::Measure { qubit, bit } => {
                    let (p0, p1) = self.package.probabilities(state, *qubit);
                    // The classical bit may have been written before (a later
                    // measurement overwriting an earlier one); restore the
                    // previous value after exploring both branches so sibling
                    // branches of *outer* branching points see it unchanged.
                    let previous = bits[*bit];
                    for (value, p) in [(false, p0), (true, p1)] {
                        let branch_probability = probability * p;
                        if branch_probability < self.config.prune_threshold {
                            continue;
                        }
                        let (collapsed, _) = self.package.collapse(state, *qubit, value, true);
                        bits[*bit] = value;
                        self.explore(idx + 1, collapsed, bits, branch_probability)?;
                    }
                    bits[*bit] = previous;
                    self.package.unprotect_vector(state);
                    return Ok(());
                }
                OpKind::Reset { qubit } => {
                    let (p0, p1) = self.package.probabilities(state, *qubit);
                    for (value, p) in [(false, p0), (true, p1)] {
                        let branch_probability = probability * p;
                        if branch_probability < self.config.prune_threshold {
                            continue;
                        }
                        let (collapsed, _) = self.package.collapse(state, *qubit, value, true);
                        // A reset discards the outcome and re-initialises the
                        // qubit to |0⟩: flip it back when the outcome was |1⟩.
                        let reinitialised = if value {
                            self.package.apply_gate(collapsed, &gates::x(), *qubit, &[])
                        } else {
                            collapsed
                        };
                        self.explore(idx + 1, reinitialised, bits, branch_probability)?;
                    }
                    self.package.unprotect_vector(state);
                    return Ok(());
                }
            }
            idx += 1;
        }
        // Leaf: record the probability of this classical-bit assignment.
        self.package.unprotect_vector(state);
        self.leaves += 1;
        if let Some(limit) = self.config.max_leaves {
            if self.leaves > limit {
                return Err(SimError::BranchLimitExceeded { limit });
            }
        }
        self.distribution.add(bits.clone(), probability);
        Ok(())
    }
}

/// Extracts the complete measurement-outcome distribution of `circuit` for
/// the all-zeros input state.
///
/// # Errors
///
/// Returns [`SimError::BranchLimitExceeded`] when
/// [`ExtractionConfig::max_leaves`] is exceeded.
///
/// # Examples
///
/// The paper's running example (Example 7 / Fig. 4): the 3-bit IQPE circuit
/// for `U = P(3π/8)` yields `|001⟩` with probability ≈ 0.408.
///
/// ```
/// use algorithms::qpe;
/// use sim::{extract_distribution, ExtractionConfig};
///
/// let phi = 3.0 * std::f64::consts::PI / 8.0;
/// let iqpe = qpe::iqpe_dynamic(phi, 3);
/// let result = extract_distribution(&iqpe, &ExtractionConfig::default())?;
/// let p001 = result.distribution.probability(&vec![true, false, false]);
/// assert!((p001 - 0.408).abs() < 0.01);
/// # Ok::<(), sim::SimError>(())
/// ```
pub fn extract_distribution(
    circuit: &QuantumCircuit,
    config: &ExtractionConfig,
) -> Result<ExtractionResult, SimError> {
    extract_distribution_from(circuit, None, config)
}

/// Variant of [`extract_distribution`] starting from the computational basis
/// state given by `initial` (`initial[q]` is the value of qubit `q`).
///
/// # Errors
///
/// Returns [`SimError::InitialStateMismatch`] when the initial state length
/// does not match the circuit, or [`SimError::BranchLimitExceeded`] when the
/// leaf budget is exceeded.
pub fn extract_distribution_from(
    circuit: &QuantumCircuit,
    initial: Option<&[bool]>,
    config: &ExtractionConfig,
) -> Result<ExtractionResult, SimError> {
    extract_distribution_budgeted(circuit, initial, config, &Budget::unlimited())
}

/// Budget-aware variant of [`extract_distribution_from`].
///
/// The extraction observes `budget` cooperatively: its decision-diagram
/// package stops on cancellation or when the node limit trips (reported as
/// [`SimError::Interrupted`]), and the budget's leaf limit is merged with
/// [`ExtractionConfig::max_leaves`] (the smaller of the two applies,
/// reported as [`SimError::BranchLimitExceeded`]).
///
/// This is the entry point the portfolio engine uses to race the Section 5
/// scheme against functional verification: when another scheme wins, the
/// shared cancel token makes this extraction return within a few hundred
/// node allocations instead of finishing a hopeless branch walk.
///
/// # Errors
///
/// Same as [`extract_distribution_from`], plus [`SimError::Interrupted`].
pub fn extract_distribution_budgeted(
    circuit: &QuantumCircuit,
    initial: Option<&[bool]>,
    config: &ExtractionConfig,
    budget: &Budget,
) -> Result<ExtractionResult, SimError> {
    extract_distribution_budgeted_in(circuit, initial, config, budget, None)
}

/// [`extract_distribution_budgeted`] with an optional shared
/// decision-diagram store (see [`dd::SharedStore`]): the extraction's
/// package then attaches as a workspace, so the gate diagrams and state
/// fragments it builds are shared with (and reused from) the other racing
/// schemes of a portfolio.
///
/// # Errors
///
/// Same as [`extract_distribution_budgeted`].
pub fn extract_distribution_budgeted_in(
    circuit: &QuantumCircuit,
    initial: Option<&[bool]>,
    config: &ExtractionConfig,
    budget: &Budget,
    store: Option<&std::sync::Arc<dd::SharedStore>>,
) -> Result<ExtractionResult, SimError> {
    let start = Instant::now();
    let n = circuit.num_qubits();
    let mut package = DdPackage::with_store_config(store, n, budget.clone(), config.memory);
    let config = &ExtractionConfig {
        max_leaves: match (config.max_leaves, budget.max_leaves()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        },
        ..*config
    };
    let state = match initial {
        None => package.zero_state(),
        Some(bits) => {
            if bits.len() != n {
                return Err(SimError::InitialStateMismatch {
                    expected: n,
                    provided: bits.len(),
                });
            }
            package.basis_state(bits)
        }
    };
    let branch_points = circuit
        .ops()
        .iter()
        .filter(|op| matches!(op.kind, OpKind::Measure { .. } | OpKind::Reset { .. }))
        .count();
    let mut extractor = Extractor {
        package,
        ops: circuit.ops(),
        config: *config,
        distribution: OutcomeDistribution::new(circuit.num_bits()),
        leaves: 0,
    };
    let mut bits = vec![false; circuit.num_bits()];
    extractor.explore(0, state, &mut bits, 1.0)?;
    Ok(ExtractionResult {
        distribution: extractor.distribution,
        leaves: extractor.leaves,
        branch_points,
        duration: start.elapsed(),
        memory: extractor.package.memory_stats(),
    })
}

/// Parallel variant of [`extract_distribution`]: the branch tree is split at
/// the first few branching points and the resulting sub-trees are explored by
/// independent worker threads, each with its own decision-diagram package.
///
/// The result is identical to the sequential extraction; only the wall-clock
/// time changes. `threads` is clamped to at least 1.
///
/// # Errors
///
/// Same as [`extract_distribution`].
pub fn extract_distribution_parallel(
    circuit: &QuantumCircuit,
    config: &ExtractionConfig,
    threads: usize,
) -> Result<ExtractionResult, SimError> {
    let threads = threads.max(1);
    // Depth of the forced prefix: 2^depth sub-trees.
    let branch_ops: Vec<usize> = circuit
        .ops()
        .iter()
        .enumerate()
        .filter(|(_, op)| matches!(op.kind, OpKind::Measure { .. } | OpKind::Reset { .. }))
        .map(|(i, _)| i)
        .collect();
    let depth = (threads as f64).log2().ceil() as usize;
    let depth = depth.min(branch_ops.len()).min(8);
    if depth == 0 {
        return extract_distribution(circuit, config);
    }

    let start = Instant::now();
    let prefixes: Vec<Vec<bool>> = (0..(1usize << depth))
        .map(|mask| (0..depth).map(|i| (mask >> i) & 1 == 1).collect())
        .collect();

    let results: Vec<Result<(OutcomeDistribution, usize, dd::MemoryStats), SimError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = prefixes
                .iter()
                .map(|prefix| scope.spawn(move || run_with_forced_prefix(circuit, prefix, config)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

    let mut distribution = OutcomeDistribution::new(circuit.num_bits());
    let mut leaves = 0;
    let mut memory = dd::MemoryStats::default();
    for result in results {
        let (partial, partial_leaves, partial_memory) = result?;
        leaves += partial_leaves;
        memory = memory.merged_with(&partial_memory);
        for (outcome, p) in partial.iter() {
            distribution.add(outcome.clone(), p);
        }
    }
    Ok(ExtractionResult {
        distribution,
        leaves,
        branch_points: branch_ops.len(),
        duration: start.elapsed(),
        memory,
    })
}

/// Runs a full extraction in which the first `forced.len()` branching points
/// are forced to the given outcomes (the branch probability is still
/// accounted for), returning the partial distribution and leaf count.
fn run_with_forced_prefix(
    circuit: &QuantumCircuit,
    forced: &[bool],
    config: &ExtractionConfig,
) -> Result<(OutcomeDistribution, usize, dd::MemoryStats), SimError> {
    struct ForcedExtractor<'a> {
        package: DdPackage,
        ops: &'a [circuit::Operation],
        config: ExtractionConfig,
        distribution: OutcomeDistribution,
        leaves: usize,
        forced: &'a [bool],
    }

    impl<'a> ForcedExtractor<'a> {
        #[allow(clippy::too_many_arguments)]
        fn explore(
            &mut self,
            start: usize,
            state: VEdge,
            bits: &mut Vec<bool>,
            probability: f64,
            branch_index: usize,
        ) -> Result<(), SimError> {
            let mut state = state;
            self.package.protect_vector(state);
            let mut idx = start;
            while idx < self.ops.len() {
                let op = &self.ops[idx];
                match &op.kind {
                    OpKind::Barrier => {}
                    OpKind::Unitary {
                        gate,
                        target,
                        controls,
                    } => {
                        let apply = match op.condition {
                            None => true,
                            Some(cond) => bits[cond.bit] == cond.value,
                        };
                        if apply {
                            let matrix = gate_map::gate_matrix(*gate);
                            let dd_controls = gate_map::controls(controls);
                            let next =
                                self.package
                                    .apply_gate(state, &matrix, *target, &dd_controls);
                            self.package.unprotect_vector(state);
                            self.package.protect_vector(next);
                            state = next;
                        }
                    }
                    OpKind::Measure { .. } | OpKind::Reset { .. } => {
                        let (qubit, record_bit) = match op.kind {
                            OpKind::Measure { qubit, bit } => (qubit, Some(bit)),
                            OpKind::Reset { qubit } => (qubit, None),
                            _ => unreachable!(),
                        };
                        let (p0, p1) = self.package.probabilities(state, qubit);
                        let outcomes: Vec<(bool, f64)> =
                            if let Some(&forced_value) = self.forced.get(branch_index) {
                                vec![(forced_value, if forced_value { p1 } else { p0 })]
                            } else {
                                vec![(false, p0), (true, p1)]
                            };
                        let previous = record_bit.map(|bit| bits[bit]);
                        for (value, p) in outcomes {
                            let branch_probability = probability * p;
                            if branch_probability < self.config.prune_threshold {
                                continue;
                            }
                            let (collapsed, _) = self.package.collapse(state, qubit, value, true);
                            let next_state = match record_bit {
                                Some(bit) => {
                                    bits[bit] = value;
                                    collapsed
                                }
                                None => {
                                    if value {
                                        self.package.apply_gate(collapsed, &gates::x(), qubit, &[])
                                    } else {
                                        collapsed
                                    }
                                }
                            };
                            self.explore(
                                idx + 1,
                                next_state,
                                bits,
                                branch_probability,
                                branch_index + 1,
                            )?;
                        }
                        if let (Some(bit), Some(previous)) = (record_bit, previous) {
                            bits[bit] = previous;
                        }
                        self.package.unprotect_vector(state);
                        return Ok(());
                    }
                }
                idx += 1;
            }
            self.package.unprotect_vector(state);
            self.leaves += 1;
            if let Some(limit) = self.config.max_leaves {
                if self.leaves > limit {
                    return Err(SimError::BranchLimitExceeded { limit });
                }
            }
            self.distribution.add(bits.clone(), probability);
            Ok(())
        }
    }

    let n = circuit.num_qubits();
    let mut package = DdPackage::new(n);
    let state = package.zero_state();
    let mut extractor = ForcedExtractor {
        package,
        ops: circuit.ops(),
        config: *config,
        distribution: OutcomeDistribution::new(circuit.num_bits()),
        leaves: 0,
        forced,
    };
    let mut bits = vec![false; circuit.num_bits()];
    extractor.explore(0, state, &mut bits, 1.0, 0)?;
    let memory = extractor.package.memory_stats();
    Ok((extractor.distribution, extractor.leaves, memory))
}

#[cfg(test)]
mod tests {
    use super::*;
    use algorithms::{bv, qft, qpe};

    #[test]
    fn figure_4_of_the_paper() {
        // 3-bit IQPE of U = P(3π/8), eigenstate |1⟩, input |0001⟩: the
        // distribution from Fig. 4 of the paper.
        let phi = 3.0 * std::f64::consts::PI / 8.0;
        let iqpe = qpe::iqpe_dynamic(phi, 3);
        let result = extract_distribution(&iqpe, &ExtractionConfig::default()).unwrap();
        let d = &result.distribution;
        // Bits are little-endian: outcome[i] = classical bit i = c_i.
        let p = |c2: bool, c1: bool, c0: bool| d.probability(&[c0, c1, c2]);
        // Fig. 4 leaf probabilities (paper rounds to two decimals):
        // |000⟩: 0.5·0.15·0.69, |100⟩: 0.5·0.15·0.31, |010⟩: 0.5·0.85·0.96·... —
        // we check the two headline values and the normalisation.
        assert!((p(false, false, true) - 0.408).abs() < 0.01, "P(|001⟩)");
        assert!((p(false, true, false) - 0.408).abs() < 0.01, "P(|010⟩)");
        assert!((d.total() - 1.0).abs() < 1e-9);
        assert_eq!(result.branch_points, 3 + 2); // 3 measurements + 2 resets
        assert!(result.leaves <= 1 << 5);
    }

    #[test]
    fn exact_phase_iqpe_is_deterministic() {
        let pattern = [true, false, true, true];
        let phi = qpe::phase_from_bits(&pattern);
        let iqpe = qpe::iqpe_dynamic(phi, 4);
        let result = extract_distribution(&iqpe, &ExtractionConfig::default()).unwrap();
        assert_eq!(result.distribution.len(), 1);
        let (outcome, p) = result.distribution.most_probable().unwrap();
        assert!((p - 1.0).abs() < 1e-9);
        // Classical bit i of the IQPE is the i-th *least* significant bit of
        // the estimate; pattern[0] is the most significant.
        let expected: Vec<bool> = pattern.iter().rev().copied().collect();
        assert_eq!(outcome, &expected);
        // Zero-probability branches are pruned: far fewer than 2^m leaves.
        assert_eq!(result.leaves, 1);
    }

    #[test]
    fn dynamic_bv_recovers_hidden_string_deterministically() {
        let hidden = vec![true, false, false, true, true, false, true];
        let circuit = bv::bv_dynamic(&hidden);
        let result = extract_distribution(&circuit, &ExtractionConfig::default()).unwrap();
        assert_eq!(result.distribution.len(), 1);
        let (outcome, p) = result.distribution.most_probable().unwrap();
        assert!((p - 1.0).abs() < 1e-9);
        assert_eq!(outcome, &hidden);
        assert_eq!(result.leaves, 1);
    }

    #[test]
    fn dynamic_qft_distribution_is_uniform_and_dense() {
        // QFT of |0…0⟩ is the uniform superposition: every outcome has the
        // same probability and the extraction needs 2^n leaves.
        let n = 5;
        let circuit = qft::qft_dynamic(n);
        let result = extract_distribution(&circuit, &ExtractionConfig::default()).unwrap();
        assert_eq!(result.distribution.len(), 1 << n);
        assert_eq!(result.leaves, 1 << n);
        for (_, p) in result.distribution.iter() {
            assert!((p - 1.0 / (1 << n) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn branch_limit_is_enforced() {
        let circuit = qft::qft_dynamic(6);
        let config = ExtractionConfig {
            max_leaves: Some(10),
            ..Default::default()
        };
        assert!(matches!(
            extract_distribution(&circuit, &config),
            Err(SimError::BranchLimitExceeded { limit: 10 })
        ));
    }

    #[test]
    fn custom_initial_state() {
        // A circuit that simply measures both qubits, started in |10⟩.
        let mut qc = circuit::QuantumCircuit::new(2, 2);
        qc.measure(0, 0).measure(1, 1);
        let result =
            extract_distribution_from(&qc, Some(&[false, true]), &ExtractionConfig::default())
                .unwrap();
        assert_eq!(result.distribution.len(), 1);
        assert!((result.distribution.probability(&[false, true]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn initial_state_length_is_validated() {
        let qc = circuit::QuantumCircuit::new(2, 0);
        assert!(matches!(
            extract_distribution_from(&qc, Some(&[true]), &ExtractionConfig::default()),
            Err(SimError::InitialStateMismatch { .. })
        ));
    }

    #[test]
    fn budget_leaf_limit_merges_with_config() {
        let circuit = qft::qft_dynamic(6);
        let budget = dd::Budget::unlimited().with_leaf_limit(10);
        assert!(matches!(
            extract_distribution_budgeted(&circuit, None, &ExtractionConfig::default(), &budget),
            Err(SimError::BranchLimitExceeded { limit: 10 })
        ));
        // The tighter of the two limits wins.
        let config = ExtractionConfig {
            max_leaves: Some(5),
            ..Default::default()
        };
        assert!(matches!(
            extract_distribution_budgeted(&circuit, None, &config, &budget),
            Err(SimError::BranchLimitExceeded { limit: 5 })
        ));
    }

    #[test]
    fn cancelled_budget_interrupts_extraction() {
        let circuit = qft::qft_dynamic(10);
        let token = dd::CancelToken::new();
        let budget = dd::Budget::unlimited().with_cancel_token(token.clone());
        token.cancel();
        let started = std::time::Instant::now();
        let result =
            extract_distribution_budgeted(&circuit, None, &ExtractionConfig::default(), &budget);
        assert!(matches!(
            result,
            Err(SimError::Interrupted(dd::LimitExceeded::Cancelled))
        ));
        // A full 2^10-leaf walk would take far longer than the early exit.
        assert!(started.elapsed() < std::time::Duration::from_secs(2));
    }

    #[test]
    fn parallel_extraction_matches_sequential() {
        let phi = qpe::phase_from_bits(&[true, true, false, true]);
        // Use an inexact phase so that the distribution has many outcomes.
        let iqpe = qpe::iqpe_dynamic(phi + 0.1, 5);
        let sequential = extract_distribution(&iqpe, &ExtractionConfig::default()).unwrap();
        let parallel =
            extract_distribution_parallel(&iqpe, &ExtractionConfig::default(), 4).unwrap();
        assert!(sequential
            .distribution
            .approx_eq(&parallel.distribution, 1e-9));
        assert_eq!(sequential.branch_points, parallel.branch_points);
    }

    #[test]
    fn parallel_with_one_thread_falls_back_to_sequential() {
        let circuit = bv::bv_dynamic(&[true, true]);
        let a = extract_distribution(&circuit, &ExtractionConfig::default()).unwrap();
        let b = extract_distribution_parallel(&circuit, &ExtractionConfig::default(), 1).unwrap();
        assert!(a.distribution.approx_eq(&b.distribution, 1e-12));
    }

    #[test]
    fn teleportation_preserves_the_payload_distribution() {
        // Teleport a state with known ⟨Z⟩ statistics and verify the final
        // measurement of the target qubit reproduces them, no matter which
        // Bell-measurement branch was taken.
        let (theta, phi_angle, lambda) = (1.1, 0.4, -0.7);
        let circuit = algorithms::teleport::teleport(theta, phi_angle, lambda, true);
        let result = extract_distribution(&circuit, &ExtractionConfig::default()).unwrap();
        // P(c2 = 1) should equal sin²(θ/2) for the payload U(θ,φ,λ)|0⟩.
        let expected_p1 = (theta / 2.0).sin().powi(2);
        let mut p1 = 0.0;
        for (outcome, p) in result.distribution.iter() {
            if outcome[2] {
                p1 += p;
            }
        }
        assert!((p1 - expected_p1).abs() < 1e-9);
        // All four Bell branches occur with probability 1/4 each.
        for c0 in [false, true] {
            for c1 in [false, true] {
                let mut branch = 0.0;
                for (outcome, p) in result.distribution.iter() {
                    if outcome[0] == c0 && outcome[1] == c1 {
                        branch += p;
                    }
                }
                assert!((branch - 0.25).abs() < 1e-9);
            }
        }
    }
}
