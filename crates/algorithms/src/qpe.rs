//! Quantum Phase Estimation (static) and Iterative QPE (dynamic).
//!
//! The running example of the paper: estimate the phase θ of the unitary
//! `U = P(φ)` (with `φ = 2πθ`) for the eigenstate |1⟩, to `m` fractional
//! bits. The static realization uses `m` counting qubits plus one eigenstate
//! qubit; the iterative realization (IQPE, reference [29] of the paper) uses
//! a single re-used working qubit plus the eigenstate qubit.

use circuit::QuantumCircuit;

/// Reduces `2^k * phi` modulo 2π without building astronomically large
/// intermediate angles.
fn pow2_angle(phi: f64, k: usize) -> f64 {
    let two_pi = 2.0 * std::f64::consts::PI;
    let mut angle = phi.rem_euclid(two_pi);
    for _ in 0..k {
        angle = (2.0 * angle).rem_euclid(two_pi);
    }
    angle
}

/// Converts a binary fraction `0.b₁b₂…` (most-significant bit first) into the
/// phase-gate angle `φ = 2π · 0.b₁b₂…`.
///
/// ```
/// use algorithms::qpe::phase_from_bits;
/// let phi = phase_from_bits(&[false, false, true, true]); // θ = 3/16
/// assert!((phi - 3.0 * std::f64::consts::PI / 8.0).abs() < 1e-12);
/// ```
pub fn phase_from_bits(bits: &[bool]) -> f64 {
    let mut theta = 0.0;
    for (i, &b) in bits.iter().enumerate() {
        if b {
            theta += 1.0 / (1u128 << (i + 1)) as f64;
        }
    }
    2.0 * std::f64::consts::PI * theta
}

/// Deterministically generates a pseudo-random exactly-representable phase
/// with `bits` fractional bits, returned as the phase-gate angle `φ`.
pub fn random_exact_phase(bits: usize, seed: u64) -> f64 {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let pattern: Vec<bool> = (0..bits).map(|_| rng.r#gen::<bool>()).collect();
    phase_from_bits(&pattern)
}

/// Builds the static QPE circuit estimating the phase of `U = P(phi)` on the
/// eigenstate |1⟩ with `precision` fractional bits.
///
/// Register layout: qubits `0..precision` form the counting register (qubit
/// `k` controls `U^{2^{precision-1-k}}`, so classical bit `k` ends up holding
/// the *k-th most significant* bit of the estimate after the inverse QFT);
/// qubit `precision` is the eigenstate qubit, prepared in |1⟩ with an X gate.
///
/// When `measured` is `true`, counting qubit `k` is measured into classical
/// bit `k`.
pub fn qpe_static(phi: f64, precision: usize, measured: bool) -> QuantumCircuit {
    let m = precision;
    let psi = m;
    let mut qc = QuantumCircuit::with_name(m + 1, m, format!("qpe_static_{}", m + 1));
    qc.x(psi);
    for k in 0..m {
        qc.h(k);
    }
    // Phase kick-back: qubit k controls U^{2^{m-1-k}}.
    for k in 0..m {
        qc.cp(pow2_angle(phi, m - 1 - k), k, psi);
    }
    // Swap-free inverse QFT on the counting register, written in the
    // measured-qubit order of Fig. 1a of the paper.
    for j in 0..m {
        for i in 0..j {
            let distance = j - i;
            qc.cp(
                -std::f64::consts::PI / (1u128 << distance.min(127)) as f64,
                i,
                j,
            );
        }
        qc.h(j);
    }
    if measured {
        for k in 0..m {
            qc.measure(k, k);
        }
    }
    qc
}

/// Builds the dynamic iterative-QPE circuit (2 qubits) estimating the phase
/// of `U = P(phi)` on the eigenstate |1⟩ with `precision` fractional bits.
///
/// Register layout: qubit 0 is the re-used working qubit, qubit 1 the
/// eigenstate qubit (prepared in |1⟩). Iteration `i` measures classical bit
/// `i`; bit 0 is produced first and corresponds to the *least-significant*
/// fractional bit of the estimate, matching [`qpe_static`]'s bit ordering
/// where counting qubit `i` also receives `U^{2^{precision-1-i}}`… inverted:
/// classical bit `i` of both circuits carries the same information, which is
/// what the equivalence check relies on.
pub fn iqpe_dynamic(phi: f64, precision: usize) -> QuantumCircuit {
    let m = precision;
    let working = 0;
    let psi = 1;
    let mut qc = QuantumCircuit::with_name(2, m, format!("iqpe_dynamic_{}", m + 1));
    qc.x(psi);
    for i in 0..m {
        if i > 0 {
            qc.reset(working);
        }
        qc.h(working);
        qc.cp(pow2_angle(phi, m - 1 - i), working, psi);
        // Phase corrections conditioned on the previously measured bits.
        for j in 0..i {
            let distance = i - j;
            qc.p_if(
                -std::f64::consts::PI / (1u128 << distance.min(127)) as f64,
                working,
                j,
            );
        }
        qc.h(working);
        qc.measure(working, i);
    }
    qc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_angle_wraps_correctly() {
        let phi = 3.0 * std::f64::consts::PI / 8.0;
        assert!((pow2_angle(phi, 0) - phi).abs() < 1e-12);
        assert!((pow2_angle(phi, 1) - 2.0 * phi).abs() < 1e-12);
        // 2^3 * 3π/8 = 3π ≡ π (mod 2π)
        assert!((pow2_angle(phi, 3) - std::f64::consts::PI).abs() < 1e-12);
        // Huge powers stay finite and in range.
        let a = pow2_angle(phi, 200);
        assert!((0.0..2.0 * std::f64::consts::PI).contains(&a));
    }

    #[test]
    fn phase_from_bits_examples() {
        assert_eq!(phase_from_bits(&[]), 0.0);
        assert!((phase_from_bits(&[true]) - std::f64::consts::PI).abs() < 1e-12);
        // 0.011 = 3/8 → φ = 3π/4
        assert!(
            (phase_from_bits(&[false, true, true]) - 3.0 * std::f64::consts::PI / 4.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn static_gate_counts_match_paper() {
        // Closed form: |G| = 1 + 3m + m(m-1)/2. The paper's Table 1 values
        // (988, 1033, 1079, …) follow the same formula up to a handful of
        // phase rotations that vanish for its particular random phase, so we
        // require agreement within 1%.
        for (n, paper) in [(43usize, 988usize), (44, 1033), (45, 1079), (50, 1314)] {
            let m = n - 1;
            let qc = qpe_static(random_exact_phase(m, 3), m, false);
            assert_eq!(qc.gate_count(), 1 + 3 * m + m * (m - 1) / 2, "n = {n}");
            assert_eq!(qc.num_qubits(), n);
            let diff = qc.gate_count().abs_diff(paper) as f64;
            assert!(
                diff / paper as f64 <= 0.01,
                "n = {n}: {} vs paper {paper}",
                qc.gate_count()
            );
        }
    }

    #[test]
    fn dynamic_gate_counts_match_paper() {
        // Closed form: |G| = 5m + m(m-1)/2; paper values within 1%.
        for (n, paper) in [(43usize, 1071usize), (44, 1118), (45, 1166), (50, 1421)] {
            let m = n - 1;
            let qc = iqpe_dynamic(random_exact_phase(m, 3), m);
            assert_eq!(qc.gate_count(), 5 * m + m * (m - 1) / 2, "n = {n}");
            assert_eq!(qc.num_qubits(), 2);
            let diff = qc.gate_count().abs_diff(paper) as f64;
            assert!(
                diff / paper as f64 <= 0.01,
                "n = {n}: {} vs paper {paper}",
                qc.gate_count()
            );
        }
    }

    #[test]
    fn dynamic_uses_all_three_primitives() {
        let qc = iqpe_dynamic(phase_from_bits(&[false, false, true, true]), 3);
        let counts = qc.counts();
        assert_eq!(counts.measurements, 3);
        assert_eq!(counts.resets, 2);
        assert!(counts.classically_controlled > 0);
    }

    #[test]
    fn random_exact_phase_is_deterministic_and_exact() {
        let a = random_exact_phase(10, 5);
        let b = random_exact_phase(10, 5);
        assert_eq!(a, b);
        // The angle corresponds to a fraction with denominator 2^10.
        let theta = a / (2.0 * std::f64::consts::PI);
        let scaled = theta * 1024.0;
        assert!((scaled - scaled.round()).abs() < 1e-9);
    }
}
