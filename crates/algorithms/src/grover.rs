//! Grover search circuits.
//!
//! Grover's algorithm amplifies the amplitude of a marked computational basis
//! state using repetitions of *oracle + diffusion*. The circuits here mark a
//! single basis state via a multi-controlled Z, which makes them a natural
//! stress test for the compilation passes (multi-controlled decomposition)
//! and a further sparse-output workload for the simulation-based schemes.

use circuit::{QuantumCircuit, QuantumControl, StandardGate};

/// The number of Grover iterations that maximises the success probability
/// for a single marked item among `2^n` candidates.
pub fn optimal_iterations(n_qubits: usize) -> usize {
    let amplitude = 1.0 / (1u64 << n_qubits) as f64;
    let angle = amplitude.sqrt().asin();
    ((std::f64::consts::FRAC_PI_4 / angle) - 0.5)
        .round()
        .max(1.0) as usize
}

/// Appends a phase flip of the basis state `marked` (little-endian) to `qc`.
fn apply_phase_oracle(qc: &mut QuantumCircuit, n: usize, marked: usize) {
    // Map the marked state to |1…1⟩, flip its phase, and map back.
    for q in 0..n {
        if (marked >> q) & 1 == 0 {
            qc.x(q);
        }
    }
    apply_controlled_z_on_all(qc, n);
    for q in 0..n {
        if (marked >> q) & 1 == 0 {
            qc.x(q);
        }
    }
}

/// Appends a Z on qubit `n−1` controlled by all other qubits.
fn apply_controlled_z_on_all(qc: &mut QuantumCircuit, n: usize) {
    if n == 1 {
        qc.z(0);
        return;
    }
    let controls: Vec<QuantumControl> = (0..n - 1).map(QuantumControl::pos).collect();
    qc.controlled_gate(StandardGate::Z, n - 1, controls);
}

/// Appends the Grover diffusion operator (inversion about the mean) to `qc`.
fn apply_diffusion(qc: &mut QuantumCircuit, n: usize) {
    for q in 0..n {
        qc.h(q);
    }
    for q in 0..n {
        qc.x(q);
    }
    apply_controlled_z_on_all(qc, n);
    for q in 0..n {
        qc.x(q);
    }
    for q in 0..n {
        qc.h(q);
    }
}

/// Builds a Grover search circuit on `n` qubits that marks the basis state
/// `marked` (little-endian).
///
/// When `iterations` is `None` the optimal iteration count is used. When
/// `measured` is `true`, qubit `i` is measured into classical bit `i`.
///
/// # Panics
///
/// Panics when `marked` is not a valid `n`-qubit basis state.
///
/// # Examples
///
/// ```
/// use algorithms::grover::grover;
/// let qc = grover(3, 0b101, None, true);
/// assert_eq!(qc.num_qubits(), 3);
/// assert_eq!(qc.measurement_count(), 3);
/// ```
pub fn grover(
    n: usize,
    marked: usize,
    iterations: Option<usize>,
    measured: bool,
) -> QuantumCircuit {
    assert!(n >= 1, "Grover search needs at least one qubit");
    assert!(
        marked < (1usize << n),
        "marked state {marked} is not an {n}-qubit basis state"
    );
    let rounds = iterations.unwrap_or_else(|| optimal_iterations(n));
    let mut qc = QuantumCircuit::with_name(n, n, format!("grover_{n}_{marked}"));
    for q in 0..n {
        qc.h(q);
    }
    for _ in 0..rounds {
        apply_phase_oracle(&mut qc, n, marked);
        apply_diffusion(&mut qc, n);
    }
    if measured {
        for q in 0..n {
            qc.measure(q, q);
        }
    }
    qc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_iteration_counts_grow_with_the_search_space() {
        assert_eq!(optimal_iterations(2), 1);
        assert_eq!(optimal_iterations(3), 2);
        assert!(optimal_iterations(6) > optimal_iterations(4));
    }

    #[test]
    fn circuit_structure() {
        let qc = grover(3, 5, Some(2), true);
        assert_eq!(qc.num_qubits(), 3);
        assert_eq!(qc.num_bits(), 3);
        assert_eq!(qc.measurement_count(), 3);
        assert!(qc.counts().unitary > 0);
    }

    #[test]
    fn unmeasured_circuit_is_unitary() {
        let qc = grover(4, 11, None, false);
        assert!(qc.is_unitary());
    }

    #[test]
    fn single_qubit_search_degenerates_to_plain_z() {
        let qc = grover(1, 1, Some(1), false);
        assert!(qc.is_unitary());
        assert!(qc.gate_count() >= 3);
    }

    #[test]
    #[should_panic(expected = "basis state")]
    fn out_of_range_marked_state_panics() {
        grover(2, 7, None, false);
    }

    #[test]
    fn iteration_count_controls_circuit_length() {
        let one = grover(3, 1, Some(1), false);
        let three = grover(3, 1, Some(3), false);
        assert!(three.gate_count() > one.gate_count());
    }
}
