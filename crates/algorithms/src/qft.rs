//! Quantum Fourier Transform circuits (static and semiclassical/dynamic).
//!
//! The static QFT follows the textbook construction without the final qubit
//! reversal (swap-free form), which is also how the paper's benchmark
//! instances are counted (`|G| = n(n+1)/2`). The dynamic realization is the
//! semiclassical Fourier transform of Griffiths & Niu (reference [44] of the
//! paper): a single working qubit, measured and reset once per output bit,
//! with the controlled rotations replaced by classically-controlled phases.

use circuit::QuantumCircuit;

/// Builds the swap-free static QFT on `n` qubits.
///
/// When `max_distance` is `Some(d)`, controlled-phase rotations between
/// qubits further than `d` apart are dropped (an *approximate* QFT). The
/// paper's large benchmark instances use `d = 58`, at which point the dropped
/// angles `π/2^d` are far below double precision.
///
/// When `measured` is `true`, qubit `j` is measured into classical bit `j`
/// at the end.
pub fn qft_static(n: usize, max_distance: Option<usize>, measured: bool) -> QuantumCircuit {
    let mut qc = QuantumCircuit::with_name(n, n, format!("qft_static_{n}"));
    for j in (0..n).rev() {
        qc.h(j);
        for k in (0..j).rev() {
            let distance = j - k;
            if let Some(d) = max_distance {
                if distance > d {
                    continue;
                }
            }
            let angle = std::f64::consts::PI / (1u128 << distance.min(127)) as f64;
            qc.cp(angle, k, j);
        }
    }
    if measured {
        for j in 0..n {
            qc.measure(j, j);
        }
    }
    qc
}

/// Builds the dynamic (single working qubit) semiclassical QFT on `n`
/// "virtual" qubits.
///
/// The working qubit is qubit 0. Output bit `j` of the transform is written
/// to classical bit `j`; bits are produced from the most-significant virtual
/// qubit (`n-1`) down to 0, each preceded by the classically-controlled phase
/// corrections conditioned on the bits already measured.
pub fn qft_dynamic(n: usize) -> QuantumCircuit {
    qft_dynamic_approx(n, None)
}

/// Approximate variant of [`qft_dynamic`] dropping corrections further apart
/// than `max_distance` (mirrors [`qft_static`]'s approximation).
pub fn qft_dynamic_approx(n: usize, max_distance: Option<usize>) -> QuantumCircuit {
    let working = 0;
    let mut qc = QuantumCircuit::with_name(1, n, format!("qft_dynamic_{n}"));
    for j in (0..n).rev() {
        if j != n - 1 {
            qc.reset(working);
        }
        // Phase corrections conditioned on the already-measured higher bits.
        for j_prev in (j + 1)..n {
            let distance = j_prev - j;
            if let Some(d) = max_distance {
                if distance > d {
                    continue;
                }
            }
            let angle = std::f64::consts::PI / (1u128 << distance.min(127)) as f64;
            qc.p_if(angle, working, j_prev);
        }
        qc.h(working);
        qc.measure(working, j);
    }
    qc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_gate_count_is_triangular() {
        for n in [3usize, 8, 23, 24] {
            let qc = qft_static(n, None, false);
            assert_eq!(qc.gate_count(), n * (n + 1) / 2, "n = {n}");
            assert!(qc.is_unitary());
        }
    }

    #[test]
    fn approximate_static_count_matches_paper_large_instances() {
        // Paper Table 1: n = 125 → |G| = 5664 with a rotation cutoff of 58.
        let d = 58;
        for (n, expected) in [(125usize, 5664usize), (126, 5723), (127, 5782), (128, 5841)] {
            let qc = qft_static(n, Some(d), false);
            assert_eq!(qc.gate_count(), expected, "n = {n}");
        }
    }

    #[test]
    fn dynamic_gate_count_matches_paper() {
        // Paper Table 1: n = 23 → |G| = 321 = n(n-1)/2 + 3n - 1.
        for (n, expected) in [(23usize, 321usize), (24, 347), (25, 374), (26, 402)] {
            let qc = qft_dynamic(n);
            assert_eq!(qc.gate_count(), expected, "n = {n}");
        }
    }

    #[test]
    fn dynamic_large_instances_match_paper() {
        for (n, expected) in [(125usize, 8124usize), (126, 8252), (127, 8381), (128, 8511)] {
            let qc = qft_dynamic(n);
            assert_eq!(qc.gate_count(), expected, "n = {n}");
        }
    }

    #[test]
    fn dynamic_uses_single_qubit() {
        let qc = qft_dynamic(10);
        assert_eq!(qc.num_qubits(), 1);
        assert_eq!(qc.num_bits(), 10);
        assert_eq!(qc.measurement_count(), 10);
        assert_eq!(qc.reset_count(), 9);
        assert!(qc.is_dynamic());
    }

    #[test]
    fn measured_static_has_one_measurement_per_qubit() {
        let qc = qft_static(5, None, true);
        assert_eq!(qc.measurement_count(), 5);
    }

    #[test]
    fn approximation_only_drops_long_range_rotations() {
        let full = qft_static(10, None, false);
        let approx = qft_static(10, Some(3), false);
        assert!(approx.gate_count() < full.gate_count());
        // Hadamards are untouched.
        let count_h = |qc: &QuantumCircuit| {
            qc.ops()
                .iter()
                .filter(|op| {
                    matches!(
                        op.kind,
                        circuit::OpKind::Unitary {
                            gate: circuit::StandardGate::H,
                            ..
                        }
                    )
                })
                .count()
        };
        assert_eq!(count_h(&full), count_h(&approx));
    }
}
