//! Pseudo-random circuit generators used by tests and ablation benchmarks.
//!
//! All generators are deterministic in their seed so that every test failure
//! is reproducible.

use circuit::{QuantumCircuit, QuantumControl, StandardGate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_standard_gate(rng: &mut StdRng) -> StandardGate {
    match rng.gen_range(0..10) {
        0 => StandardGate::H,
        1 => StandardGate::X,
        2 => StandardGate::Y,
        3 => StandardGate::Z,
        4 => StandardGate::S,
        5 => StandardGate::T,
        6 => StandardGate::Sx,
        7 => StandardGate::Phase(rng.gen_range(-3.2..3.2)),
        8 => StandardGate::Rx(rng.gen_range(-3.2..3.2)),
        _ => StandardGate::Rz(rng.gen_range(-3.2..3.2)),
    }
}

/// Generates a random purely-unitary circuit with `len` gates.
///
/// Roughly half of the gates are controlled by a second, distinct qubit.
pub fn random_unitary_circuit(n_qubits: usize, len: usize, seed: u64) -> QuantumCircuit {
    assert!(n_qubits >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut qc = QuantumCircuit::with_name(n_qubits, 0, format!("random_unitary_{seed}"));
    for _ in 0..len {
        let gate = random_standard_gate(&mut rng);
        let target = rng.gen_range(0..n_qubits);
        if n_qubits > 1 && rng.r#gen::<bool>() {
            let mut control = rng.gen_range(0..n_qubits);
            while control == target {
                control = rng.gen_range(0..n_qubits);
            }
            qc.controlled_gate(gate, target, vec![QuantumControl::pos(control)]);
        } else {
            qc.gate(gate, target);
        }
    }
    qc
}

/// Generates a random *well-formed* dynamic circuit with `len` operations.
///
/// Well-formed means the circuit obeys the structure of realistic dynamic
/// circuits (and of the paper's transformation scheme): once a qubit has been
/// measured it is not acted upon again until it is reset, and classical
/// conditions only reference bits that have already been written by a
/// measurement.
pub fn random_dynamic_circuit(
    n_qubits: usize,
    n_bits: usize,
    len: usize,
    seed: u64,
) -> QuantumCircuit {
    assert!(n_qubits >= 1 && n_bits >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut qc = QuantumCircuit::with_name(n_qubits, n_bits, format!("random_dynamic_{seed}"));
    // Tracks which qubits are currently "retired" (measured, not yet reset)
    // and which classical bits already hold a measurement outcome.
    let mut measured = vec![false; n_qubits];
    let mut written_bits: Vec<usize> = Vec::new();

    for _ in 0..len {
        let choice = rng.gen_range(0..100);
        if choice < 60 {
            // Unitary gate on a non-retired qubit.
            let candidates: Vec<usize> = (0..n_qubits).filter(|&q| !measured[q]).collect();
            if candidates.is_empty() {
                continue;
            }
            let target = candidates[rng.gen_range(0..candidates.len())];
            let gate = random_standard_gate(&mut rng);
            let conditioned = !written_bits.is_empty() && rng.gen_range(0..100) < 25;
            if conditioned {
                let bit = written_bits[rng.gen_range(0..written_bits.len())];
                qc.gate_if(gate, target, bit, rng.r#gen::<bool>());
            } else if candidates.len() > 1 && rng.r#gen::<bool>() {
                let mut control = candidates[rng.gen_range(0..candidates.len())];
                while control == target {
                    control = candidates[rng.gen_range(0..candidates.len())];
                }
                qc.controlled_gate(gate, target, vec![QuantumControl::pos(control)]);
            } else {
                qc.gate(gate, target);
            }
        } else if choice < 80 {
            // Measurement of a non-retired qubit.
            let candidates: Vec<usize> = (0..n_qubits).filter(|&q| !measured[q]).collect();
            if candidates.is_empty() {
                continue;
            }
            let qubit = candidates[rng.gen_range(0..candidates.len())];
            let bit = rng.gen_range(0..n_bits);
            qc.measure(qubit, bit);
            measured[qubit] = true;
            if !written_bits.contains(&bit) {
                written_bits.push(bit);
            }
        } else {
            // Reset of any qubit; brings retired qubits back into play.
            let qubit = rng.gen_range(0..n_qubits);
            qc.reset(qubit);
            measured[qubit] = false;
        }
    }
    qc
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::OpKind;

    #[test]
    fn unitary_generator_is_deterministic() {
        let a = random_unitary_circuit(4, 30, 11);
        let b = random_unitary_circuit(4, 30, 11);
        assert_eq!(a.ops(), b.ops());
        assert!(a.is_unitary());
        assert_eq!(a.gate_count(), 30);
    }

    #[test]
    fn dynamic_generator_is_well_formed() {
        for seed in 0..20 {
            let qc = random_dynamic_circuit(4, 4, 60, seed);
            let mut retired = [false; 4];
            for op in qc.ops() {
                match &op.kind {
                    OpKind::Measure { qubit, .. } => {
                        assert!(!retired[*qubit], "measured a retired qubit (seed {seed})");
                        retired[*qubit] = true;
                    }
                    OpKind::Reset { qubit } => {
                        retired[*qubit] = false;
                    }
                    OpKind::Unitary {
                        target, controls, ..
                    } => {
                        assert!(!retired[*target], "gate on retired qubit (seed {seed})");
                        for c in controls {
                            assert!(!retired[c.qubit], "control on retired qubit (seed {seed})");
                        }
                    }
                    OpKind::Barrier => {}
                }
            }
        }
    }

    #[test]
    fn dynamic_generator_produces_dynamic_circuits() {
        let qc = random_dynamic_circuit(3, 3, 80, 5);
        assert!(qc.is_dynamic());
        assert!(qc.measurement_count() > 0);
    }
}
