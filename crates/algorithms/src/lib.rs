//! # algorithms — benchmark circuit generators
//!
//! Parametric generators for the circuit families used in the paper's
//! evaluation (Bernstein–Vazirani, Quantum Fourier Transform, Quantum Phase
//! Estimation) in both their *static* and *dynamic* (qubit-re-using)
//! realizations, plus a few additional workloads (GHZ, teleportation, random
//! circuits) used by the examples and test suites.
//!
//! Every generator is deterministic in its parameters, and the gate counts of
//! the paper's Table 1 instances are reproduced exactly (see the unit tests
//! in [`bv`], [`qft`] and [`qpe`]).
//!
//! ```
//! use algorithms::{bv, qpe};
//!
//! // The paper's running example: 3-bit IQPE of U = P(3π/8).
//! let phi = 3.0 * std::f64::consts::PI / 8.0;
//! let dynamic = qpe::iqpe_dynamic(phi, 3);
//! assert_eq!(dynamic.num_qubits(), 2);
//!
//! // A 2-qubit dynamic Bernstein-Vazirani instance.
//! let hidden = bv::random_hidden_string(16, 42);
//! let qc = bv::bv_dynamic(&hidden);
//! assert_eq!(qc.num_bits(), 16);
//! ```

#![warn(missing_docs)]

pub mod bv;
pub mod deutsch_jozsa;
pub mod ghz;
pub mod grover;
pub mod qft;
pub mod qpe;
pub mod random;
pub mod teleport;
