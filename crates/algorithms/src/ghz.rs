//! GHZ-state preparation circuits.

use circuit::QuantumCircuit;

/// Builds the standard GHZ preparation circuit: H on qubit 0 followed by a
/// CNOT chain.
///
/// ```
/// use algorithms::ghz::ghz;
/// let qc = ghz(4, false);
/// assert_eq!(qc.gate_count(), 4);
/// ```
pub fn ghz(n: usize, measured: bool) -> QuantumCircuit {
    assert!(n >= 1, "GHZ requires at least one qubit");
    let mut qc = QuantumCircuit::with_name(n, n, format!("ghz_{n}"));
    qc.h(0);
    for q in 1..n {
        qc.cx(q - 1, q);
    }
    if measured {
        qc.measure_all();
    }
    qc
}

/// Builds a GHZ preparation circuit using a fanned-out (logarithmic-depth)
/// CNOT tree instead of a linear chain.
///
/// Starting from |0…0⟩ it prepares the same GHZ state as [`ghz`], so the two
/// are *fixed-input* equivalent; note that the full unitaries differ (they
/// act differently on other basis states), which makes the pair a useful
/// example for distinguishing the two notions of equivalence.
pub fn ghz_log_depth(n: usize, measured: bool) -> QuantumCircuit {
    assert!(n >= 1, "GHZ requires at least one qubit");
    let mut qc = QuantumCircuit::with_name(n, n, format!("ghz_log_{n}"));
    qc.h(0);
    // Double the number of entangled qubits in every round.
    let mut filled = 1;
    while filled < n {
        let copy = filled.min(n - filled);
        for i in 0..copy {
            qc.cx(i, filled + i);
        }
        filled += copy;
    }
    if measured {
        qc.measure_all();
    }
    qc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_ghz_structure() {
        let qc = ghz(5, false);
        assert_eq!(qc.num_qubits(), 5);
        assert_eq!(qc.gate_count(), 5);
        assert!(qc.is_unitary());
    }

    #[test]
    fn measured_ghz_measures_every_qubit() {
        let qc = ghz(3, true);
        assert_eq!(qc.measurement_count(), 3);
    }

    #[test]
    fn log_depth_ghz_has_same_gate_count() {
        for n in [1usize, 2, 3, 7, 8, 13] {
            assert_eq!(
                ghz(n, false).gate_count(),
                ghz_log_depth(n, false).gate_count()
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn zero_qubits_rejected() {
        let _ = ghz(0, false);
    }
}
