//! Deutsch–Jozsa circuits (static and dynamic realizations).
//!
//! The Deutsch–Jozsa algorithm decides with a single oracle query whether a
//! Boolean function `f : {0,1}^m → {0,1}` is constant or balanced. The
//! workspace uses the two standard oracle families:
//!
//! * *constant* oracles (`f ≡ 0` or `f ≡ 1`), and
//! * *balanced parity* oracles `f(x) = s·x ⊕ b` for a non-zero mask `s`.
//!
//! For a constant oracle every input qubit returns |0⟩, for a balanced parity
//! oracle the measurement reveals the mask `s` (the algorithm degenerates to
//! Bernstein–Vazirani) — in both cases the outcome is deterministic, which
//! makes the family a good sparse benchmark for the extraction scheme.
//!
//! As with the other families, a *dynamic* realization re-uses a single
//! working qubit through mid-circuit measurement and reset.

use circuit::QuantumCircuit;

/// The oracle families supported by the generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Oracle {
    /// `f(x) = bit` for every input.
    Constant(bool),
    /// `f(x) = s·x ⊕ offset` with the given mask `s` (must not be all-zero
    /// to be balanced).
    BalancedParity {
        /// The parity mask `s`.
        mask: Vec<bool>,
        /// The constant offset added to the parity.
        offset: bool,
    },
}

impl Oracle {
    /// Returns `true` for constant oracles.
    pub fn is_constant(&self) -> bool {
        matches!(self, Oracle::Constant(_))
    }

    /// Number of input bits the oracle expects (`None` for constant oracles,
    /// which work for any width).
    pub fn input_bits(&self) -> Option<usize> {
        match self {
            Oracle::Constant(_) => None,
            Oracle::BalancedParity { mask, .. } => Some(mask.len()),
        }
    }
}

/// Applies the phase oracle to a circuit: inputs are `inputs`, the ancilla
/// (prepared in |−⟩ by the caller via X · H) is `ancilla`.
fn apply_oracle(qc: &mut QuantumCircuit, oracle: &Oracle, inputs: &[usize], ancilla: usize) {
    match oracle {
        Oracle::Constant(bit) => {
            if *bit {
                qc.x(ancilla);
            }
        }
        Oracle::BalancedParity { mask, offset } => {
            for (&q, &bit) in inputs.iter().zip(mask.iter()) {
                if bit {
                    qc.cx(q, ancilla);
                }
            }
            if *offset {
                qc.x(ancilla);
            }
        }
    }
}

/// Builds the static Deutsch–Jozsa circuit on `m` input qubits.
///
/// Register layout: qubits `0..m` are the inputs, qubit `m` is the ancilla.
/// When `measured` is `true`, input qubit `i` is measured into classical
/// bit `i`. A constant oracle yields the all-zeros outcome with certainty; a
/// balanced parity oracle yields its mask.
///
/// # Panics
///
/// Panics when a balanced oracle's mask length differs from `m`.
///
/// # Examples
///
/// ```
/// use algorithms::deutsch_jozsa::{dj_static, Oracle};
/// let qc = dj_static(3, &Oracle::Constant(false), true);
/// assert_eq!(qc.num_qubits(), 4);
/// assert_eq!(qc.measurement_count(), 3);
/// ```
pub fn dj_static(m: usize, oracle: &Oracle, measured: bool) -> QuantumCircuit {
    if let Some(expected) = oracle.input_bits() {
        assert_eq!(expected, m, "oracle mask length does not match input width");
    }
    let ancilla = m;
    let mut qc = QuantumCircuit::with_name(m + 1, m, format!("dj_static_{}", m + 1));
    qc.x(ancilla);
    qc.h(ancilla);
    for q in 0..m {
        qc.h(q);
    }
    let inputs: Vec<usize> = (0..m).collect();
    apply_oracle(&mut qc, oracle, &inputs, ancilla);
    for q in 0..m {
        qc.h(q);
    }
    if measured {
        for q in 0..m {
            qc.measure(q, q);
        }
    }
    qc
}

/// Builds the dynamic (2-qubit) Deutsch–Jozsa circuit on `m` logical input
/// bits.
///
/// Register layout: qubit 0 is the re-used working qubit, qubit 1 the
/// ancilla; classical bit `i` receives the measurement of logical input `i`.
///
/// # Panics
///
/// Panics when a balanced oracle's mask length differs from `m`.
///
/// # Examples
///
/// ```
/// use algorithms::deutsch_jozsa::{dj_dynamic, Oracle};
/// let qc = dj_dynamic(3, &Oracle::BalancedParity { mask: vec![true, false, true], offset: false });
/// assert_eq!(qc.num_qubits(), 2);
/// assert_eq!(qc.reset_count(), 2);
/// ```
pub fn dj_dynamic(m: usize, oracle: &Oracle) -> QuantumCircuit {
    if let Some(expected) = oracle.input_bits() {
        assert_eq!(expected, m, "oracle mask length does not match input width");
    }
    let working = 0;
    let ancilla = 1;
    let mut qc = QuantumCircuit::with_name(2, m, format!("dj_dynamic_{}", m + 1));
    qc.x(ancilla);
    qc.h(ancilla);
    for i in 0..m {
        if i > 0 {
            qc.reset(working);
        }
        qc.h(working);
        // The slice of the oracle touching logical input i.
        match oracle {
            Oracle::Constant(bit) => {
                // Apply the constant part only once (with the first input).
                if i == 0 && *bit {
                    qc.x(ancilla);
                }
            }
            Oracle::BalancedParity { mask, offset } => {
                if mask[i] {
                    qc.cx(working, ancilla);
                }
                if i == 0 && *offset {
                    qc.x(ancilla);
                }
            }
        }
        qc.h(working);
        qc.measure(working, i);
    }
    qc
}

/// Deterministically generates a pseudo-random balanced parity oracle on
/// `m` bits (the mask is never all-zero).
pub fn random_balanced_oracle(m: usize, seed: u64) -> Oracle {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mask: Vec<bool> = (0..m).map(|_| rng.r#gen::<bool>()).collect();
    if mask.iter().all(|&b| !b) {
        mask[rng.gen_range(0..m)] = true;
    }
    Oracle::BalancedParity {
        mask,
        offset: rng.r#gen::<bool>(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_constant_oracle_structure() {
        let qc = dj_static(4, &Oracle::Constant(false), true);
        assert_eq!(qc.num_qubits(), 5);
        assert_eq!(qc.measurement_count(), 4);
        // X, H on ancilla + 4 H + (nothing) + 4 H
        assert_eq!(qc.counts().unitary, 2 + 4 + 4);
    }

    #[test]
    fn static_balanced_oracle_contains_cx_per_mask_bit() {
        let oracle = Oracle::BalancedParity {
            mask: vec![true, true, false, true],
            offset: true,
        };
        let qc = dj_static(4, &oracle, false);
        // X, H ancilla + 4 H + 3 CX + 1 X + 4 H
        assert_eq!(qc.gate_count(), 2 + 4 + 3 + 1 + 4);
        assert!(qc.is_unitary());
    }

    #[test]
    fn dynamic_realization_uses_two_qubits_and_resets() {
        let oracle = random_balanced_oracle(5, 3);
        let qc = dj_dynamic(5, &oracle);
        assert_eq!(qc.num_qubits(), 2);
        assert_eq!(qc.num_bits(), 5);
        assert_eq!(qc.measurement_count(), 5);
        assert_eq!(qc.reset_count(), 4);
    }

    #[test]
    fn constant_dynamic_realization_has_no_oracle_gates_beyond_setup() {
        let qc = dj_dynamic(3, &Oracle::Constant(true));
        // X, H ancilla setup + one extra X + per bit (H, H, measure) + resets.
        assert_eq!(qc.gate_count(), 2 + 1 + 3 * 3 + 2);
    }

    #[test]
    fn mismatched_mask_width_panics() {
        let oracle = Oracle::BalancedParity {
            mask: vec![true, false],
            offset: false,
        };
        let result = std::panic::catch_unwind(|| dj_static(3, &oracle, false));
        assert!(result.is_err());
    }

    #[test]
    fn random_oracle_is_deterministic_and_balanced() {
        let a = random_balanced_oracle(8, 11);
        let b = random_balanced_oracle(8, 11);
        assert_eq!(a, b);
        assert!(!a.is_constant());
        if let Oracle::BalancedParity { mask, .. } = &a {
            assert!(mask.iter().any(|&b| b));
        }
        assert_eq!(a.input_bits(), Some(8));
        assert_eq!(Oracle::Constant(true).input_bits(), None);
    }
}
