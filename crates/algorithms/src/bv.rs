//! Bernstein–Vazirani circuits (static and dynamic realizations).
//!
//! The Bernstein–Vazirani algorithm recovers a hidden bit string `s` from a
//! single query to the oracle `|x⟩|y⟩ → |x⟩|y ⊕ s·x⟩`. The *static*
//! realization uses one input qubit per bit of `s` plus an ancilla; the
//! *dynamic* realization re-uses a single working qubit via mid-circuit
//! measurement and reset, exactly as proposed for IBM's dynamic-circuit
//! demonstrations (reference [43] of the paper).
//!
//! Both realizations implement the oracle with controlled-Z gates against an
//! ancilla prepared in |1⟩, so that the static circuit and the
//! unitary-reconstructed dynamic circuit are gate-for-gate equivalent.

use circuit::QuantumCircuit;

/// Builds the static Bernstein–Vazirani circuit for `hidden`.
///
/// Register layout: qubits `0..m` are the input qubits (`m = hidden.len()`),
/// qubit `m` is the ancilla prepared in |1⟩. When `measured` is `true`, every
/// input qubit `i` is measured into classical bit `i`.
///
/// # Examples
///
/// ```
/// use algorithms::bv::bv_static;
/// let qc = bv_static(&[true, false, true], true);
/// assert_eq!(qc.num_qubits(), 4);
/// assert_eq!(qc.measurement_count(), 3);
/// ```
pub fn bv_static(hidden: &[bool], measured: bool) -> QuantumCircuit {
    let m = hidden.len();
    let ancilla = m;
    let mut qc = QuantumCircuit::with_name(m + 1, m, format!("bv_static_{}", m + 1));
    qc.x(ancilla);
    for q in 0..m {
        qc.h(q);
    }
    for (q, &bit) in hidden.iter().enumerate() {
        if bit {
            qc.cz(q, ancilla);
        }
    }
    for q in 0..m {
        qc.h(q);
    }
    if measured {
        for q in 0..m {
            qc.measure(q, q);
        }
    }
    qc
}

/// Builds the dynamic (2-qubit) Bernstein–Vazirani circuit for `hidden`.
///
/// Register layout: qubit 0 is the re-used working qubit, qubit 1 the ancilla
/// prepared in |1⟩. Bit `i` of the hidden string is recovered in classical
/// bit `i`.
///
/// # Examples
///
/// ```
/// use algorithms::bv::bv_dynamic;
/// let qc = bv_dynamic(&[true, false, true]);
/// assert_eq!(qc.num_qubits(), 2);
/// assert_eq!(qc.reset_count(), 2);
/// ```
pub fn bv_dynamic(hidden: &[bool]) -> QuantumCircuit {
    let m = hidden.len();
    let working = 0;
    let ancilla = 1;
    let mut qc = QuantumCircuit::with_name(2, m, format!("bv_dynamic_{}", m + 1));
    qc.x(ancilla);
    for (i, &bit) in hidden.iter().enumerate() {
        if i > 0 {
            qc.reset(working);
        }
        qc.h(working);
        if bit {
            qc.cz(working, ancilla);
        }
        qc.h(working);
        qc.measure(working, i);
    }
    qc
}

/// Deterministically generates a pseudo-random hidden string of length `len`.
///
/// The same `seed` always yields the same string, which keeps benchmark
/// instances reproducible across runs.
pub fn random_hidden_string(len: usize, seed: u64) -> Vec<bool> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.r#gen::<bool>()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::{OpKind, StandardGate};

    #[test]
    fn static_structure() {
        let hidden = [true, true, false, true];
        let qc = bv_static(&hidden, false);
        assert_eq!(qc.num_qubits(), 5);
        assert!(qc.is_unitary());
        // 1 X + 4 H + 3 CZ + 4 H
        assert_eq!(qc.gate_count(), 1 + 4 + 3 + 4);
    }

    #[test]
    fn static_gate_count_formula() {
        for len in [4usize, 9, 16] {
            let hidden = random_hidden_string(len, 7);
            let ones = hidden.iter().filter(|&&b| b).count();
            let qc = bv_static(&hidden, false);
            assert_eq!(qc.gate_count(), 2 * len + 1 + ones);
        }
    }

    #[test]
    fn dynamic_structure() {
        let hidden = [true, false, true];
        let qc = bv_dynamic(&hidden);
        assert_eq!(qc.num_qubits(), 2);
        assert_eq!(qc.num_bits(), 3);
        assert!(qc.is_dynamic());
        assert_eq!(qc.measurement_count(), 3);
        assert_eq!(qc.reset_count(), 2);
        // 1 X + per bit (H, [cz], H, measure) + 2 resets
        assert_eq!(qc.gate_count(), 1 + 3 * 3 + 2 + 2);
    }

    #[test]
    fn dynamic_gate_count_matches_paper_formula() {
        // |G| = 1 + 3m + |s| + (m - 1) = 4m + |s|: X prep, per-bit H/H/measure,
        // oracle CZs and the resets between iterations.
        for len in [8usize, 20, 120] {
            let hidden = random_hidden_string(len, 21);
            let ones = hidden.iter().filter(|&&b| b).count();
            let qc = bv_dynamic(&hidden);
            assert_eq!(qc.gate_count(), 4 * len + ones);
        }
    }

    #[test]
    fn random_hidden_string_is_deterministic() {
        let a = random_hidden_string(64, 42);
        let b = random_hidden_string(64, 42);
        let c = random_hidden_string(64, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 64);
    }

    #[test]
    fn measured_variant_measures_every_input() {
        let hidden = random_hidden_string(6, 1);
        let qc = bv_static(&hidden, true);
        assert_eq!(qc.measurement_count(), 6);
        let measured_bits: Vec<usize> = qc
            .ops()
            .iter()
            .filter_map(|op| match op.kind {
                OpKind::Measure { bit, .. } => Some(bit),
                _ => None,
            })
            .collect();
        assert_eq!(measured_bits, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn oracle_uses_cz_gates() {
        let qc = bv_static(&[true], false);
        assert!(qc.ops().iter().any(|op| matches!(
            op.kind,
            OpKind::Unitary {
                gate: StandardGate::Z,
                ..
            }
        )));
    }
}
