//! Quantum teleportation — the classic dynamic-circuit protocol.

use circuit::{QuantumCircuit, StandardGate};

/// Builds the teleportation circuit for an input state `U(θ, φ, λ)|0⟩` on
/// qubit 0, teleported onto qubit 2.
///
/// Register layout: qubit 0 holds the state to teleport, qubits 1 and 2 form
/// the Bell pair. Classical bits 0 and 1 receive the Bell-measurement
/// outcomes; classical bit 2 receives the final (verification) measurement of
/// the teleported qubit when `measure_target` is set.
pub fn teleport(theta: f64, phi: f64, lambda: f64, measure_target: bool) -> QuantumCircuit {
    let mut qc = QuantumCircuit::with_name(3, 3, "teleport");
    // Prepare the payload state on qubit 0.
    qc.gate(StandardGate::U(theta, phi, lambda), 0);
    // Bell pair between qubits 1 and 2.
    qc.h(1);
    qc.cx(1, 2);
    // Bell measurement of qubits 0 and 1.
    qc.cx(0, 1);
    qc.h(0);
    qc.measure(0, 0);
    qc.measure(1, 1);
    // Classically-controlled corrections on the receiving qubit.
    qc.x_if(2, 1);
    qc.gate_if(StandardGate::Z, 2, 0, true);
    if measure_target {
        qc.measure(2, 2);
    }
    qc
}

/// Builds the reference circuit the teleportation should emulate for a fixed
/// |000⟩ input: the same payload preparation applied directly to qubit 2,
/// with the verification measurement into classical bit 2.
pub fn teleport_reference(theta: f64, phi: f64, lambda: f64) -> QuantumCircuit {
    let mut qc = QuantumCircuit::with_name(3, 3, "teleport_reference");
    qc.gate(StandardGate::U(theta, phi, lambda), 2);
    qc.measure(2, 2);
    qc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uses_all_dynamic_primitives() {
        let qc = teleport(0.3, 0.1, -0.2, true);
        let counts = qc.counts();
        assert_eq!(counts.measurements, 3);
        assert_eq!(counts.classically_controlled, 2);
        assert!(qc.is_dynamic());
    }

    #[test]
    fn reference_is_trivially_small() {
        let qc = teleport_reference(0.3, 0.1, -0.2);
        assert_eq!(qc.gate_count(), 2);
    }

    #[test]
    fn no_resets_needed() {
        assert_eq!(teleport(1.0, 2.0, 3.0, false).reset_count(), 0);
    }
}
