//! Incremental (pass-by-pass) verification of a compilation chain.
//!
//! A compilation pipeline produces a *chain* of circuits — original,
//! after-decomposition, after-basis-rewrite, after-routing, after-optimize —
//! whose adjacent snapshots are nearly identical. Verifying the chain
//! pass-by-pass instead of endpoint-to-endpoint keeps every miter close to
//! the identity (the regime where DD memoization pays off most), lets
//! canonical nodes and gate DDs carry over between steps on one warm
//! [`SharedStore`], and turns a refutation into a *blame*: the first step
//! whose adjacent pair differs names the guilty pass, instead of the
//! endpoint check's "the ends differ, somewhere".
//!
//! The chain protocol (see [`run_chain`]):
//!
//! 1. The service checks a store out of the pool **once** for the whole
//!    chain and calls [`SharedStore::begin_chain`], so warm-hit telemetry
//!    can split chain carry-over from batch shelf reuse.
//! 2. Each adjacent pair runs as an ordinary portfolio race (its own
//!    [`SharedStore::begin_race`] boundary), so structure built by step
//!    *i* counts as warm for step *i + 1*. No between-step prune runs —
//!    carry-over is the point.
//! 3. On the first `NotEquivalent` step the chain stops and reports that
//!    step's pass as [`ChainReport::guilty_pass`]; inconclusive steps are
//!    recorded and the chain continues (it can still blame a later pass,
//!    but can no longer certify the endpoints).
//! 4. The store is pruned once (unless the next queued request reuses the
//!    width) and shelved back.

use crate::batch::PairReport;
use crate::engine::verify_portfolio_recorded;
use crate::service::Source;
use crate::telemetry::TelemetryStore;
use crate::PortfolioConfig;
use circuit::QuantumCircuit;
use dd::SharedStore;
use qcec::Equivalence;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One circuit of a manifest chain entry.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ChainStepSpec {
    /// Name of the compilation pass that produced this circuit (used in
    /// guilty-pass blame); defaults to `"original"` for the first circuit
    /// and `"step<i>"` otherwise.
    pub pass: Option<String>,
    /// Path to the circuit, relative to the manifest.
    pub path: String,
}

/// One compilation chain of a batch workload: the pipeline's circuits in
/// order, verified pass-by-pass (adjacent pairs) on one warm store.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ChainSpec {
    /// Display name; defaults to the first circuit's file stem.
    pub name: Option<String>,
    /// Register width hint (device qubits). Lets the service skip the
    /// between-request store prune when the next queued request reuses the
    /// width; purely an optimisation, never affects verdicts.
    pub qubits: Option<usize>,
    /// The pipeline's circuits, in compilation order (at least two).
    pub steps: Vec<ChainStepSpec>,
}

/// One chain-verification request: a pipeline's circuits in order, plus
/// optional per-step resource bounds layered over the service's portfolio
/// defaults.
#[derive(Debug, Clone)]
pub struct ChainRequest {
    /// Display name; derived from the first source (or the request id)
    /// when absent.
    pub name: Option<String>,
    /// The pipeline's circuits, in compilation order (at least two).
    pub steps: Vec<ChainStep>,
    /// Per-*step* wall-clock deadline, overriding
    /// [`PortfolioConfig::deadline`]. Each adjacent pair is one race.
    pub deadline: Option<Duration>,
    /// Per-step decision-diagram node budget, overriding
    /// [`PortfolioConfig::node_limit`].
    pub node_limit: Option<usize>,
    /// Register width hint for the store-prune skip (see
    /// [`ChainSpec::qubits`]).
    pub width_hint: Option<usize>,
}

/// One circuit of a [`ChainRequest`].
#[derive(Debug, Clone)]
pub struct ChainStep {
    /// Pass name used in blame; defaulted like [`ChainStepSpec::pass`].
    pub pass: Option<String>,
    /// Where the circuit comes from.
    pub source: Source,
}

impl ChainRequest {
    /// A request for a manifest chain entry with no per-request overrides.
    pub fn from_spec(spec: &ChainSpec) -> ChainRequest {
        ChainRequest {
            name: spec.name.clone(),
            steps: spec
                .steps
                .iter()
                .map(|step| ChainStep {
                    pass: step.pass.clone(),
                    source: Source::Path(PathBuf::from(&step.path)),
                })
                .collect(),
            deadline: None,
            node_limit: None,
            width_hint: spec.qubits,
        }
    }
}

/// Verification report of one chain step (one adjacent pair).
#[derive(Debug, Clone, serde::Serialize)]
pub struct ChainStepReport {
    /// The compilation pass under test: the one that produced this step's
    /// right circuit from its left.
    pub pass: String,
    /// The step's full pair report (same shape as a batch pair). Its
    /// `shared_store.chain_hits` counts carry-over from earlier steps of
    /// this chain; `warm_hits − chain_hits` is pre-chain shelf reuse.
    pub report: PairReport,
}

/// Verification report of one compilation chain.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ChainReport {
    /// Chain name (from the manifest or derived from the first file stem).
    pub name: String,
    /// Combined verdict: `NotEquivalent` as soon as any step refutes,
    /// `NoInformation` when a step was inconclusive (or the chain failed to
    /// load), otherwise the *weakest* per-step equivalence — a chain of
    /// global-phase equivalences composes to a global-phase equivalence,
    /// and one simulative step caps the whole chain at
    /// `ProbablyEquivalent`.
    pub verdict: Equivalence,
    /// Convenience flag: does the verdict count as equivalent?
    pub considered_equivalent: bool,
    /// The first pass whose adjacent pair was refuted — the pass that broke
    /// the pipeline. `None` while every verified step held.
    pub guilty_pass: Option<String>,
    /// Adjacent pairs in the chain (circuits − 1).
    pub steps_total: usize,
    /// Adjacent pairs actually verified (a refutation stops the chain).
    pub steps_verified: usize,
    /// Warm canonical-store hits summed over all steps.
    pub warm_hits: u64,
    /// Subset of [`warm_hits`](Self::warm_hits) served by structure an
    /// earlier step of *this chain* interned — the carry-over incremental
    /// verification exists for. Zero for the first step by construction.
    pub chain_hits: u64,
    /// The remainder (`warm_hits − chain_hits`): reuse of structure the
    /// store held before the chain began (batch shelf reuse).
    pub shelf_hits: u64,
    /// Wall time of the whole chain (seconds in JSON).
    pub total_time: Duration,
    /// Per-step reports, in pipeline order (stops after a refuted step).
    pub steps: Vec<ChainStepReport>,
    /// Load/parse failure, when the chain never ran.
    pub error: Option<String>,
}

/// A chain report for a workload that never ran (load/parse failure or a
/// malformed chain).
pub(crate) fn failed_chain(name: String, steps_total: usize, error: String) -> ChainReport {
    ChainReport {
        name,
        verdict: Equivalence::NoInformation,
        considered_equivalent: false,
        guilty_pass: None,
        steps_total,
        steps_verified: 0,
        warm_hits: 0,
        chain_hits: 0,
        shelf_hits: 0,
        total_time: Duration::ZERO,
        steps: Vec::new(),
        error: Some(error),
    }
}

/// A parsed chain, ready to execute: one label and display string per
/// circuit (labels blame passes, displays go into the per-step reports).
pub(crate) struct ParsedChain {
    pub name: String,
    pub labels: Vec<String>,
    pub displays: Vec<String>,
    pub circuits: Vec<QuantumCircuit>,
}

/// The weaker of two "considered equivalent" verdicts (exact beats
/// up-to-phase beats probabilistic).
fn weakest(a: Equivalence, b: Equivalence) -> Equivalence {
    fn rank(v: Equivalence) -> u8 {
        match v {
            Equivalence::Equivalent => 0,
            Equivalence::EquivalentUpToGlobalPhase => 1,
            Equivalence::ProbablyEquivalent => 2,
            // Excluded by the caller; rank them weakest for safety.
            Equivalence::NotEquivalent | Equivalence::NoInformation => 3,
        }
    }
    if rank(b) > rank(a) {
        b
    } else {
        a
    }
}

/// Verifies a parsed chain pass-by-pass on one (optional) warm store.
///
/// `warm` says whether the store came out of the pool warm; step *i > 0*
/// reports a warm store regardless, because it inherits step *i − 1*'s
/// structure. The caller owns the store checkout and the final prune; this
/// function only brackets the steps with
/// [`begin_chain`](SharedStore::begin_chain) /
/// [`end_chain`](SharedStore::end_chain).
pub(crate) fn run_chain(
    parsed: &ParsedChain,
    portfolio: &PortfolioConfig,
    store: Option<&Arc<SharedStore>>,
    warm: bool,
    telemetry: Option<&Mutex<TelemetryStore>>,
) -> ChainReport {
    let start = Instant::now();
    let steps_total = parsed.circuits.len().saturating_sub(1);
    if let Some(store) = store {
        store.begin_chain();
    }
    let mut steps = Vec::with_capacity(steps_total);
    let mut guilty_pass = None;
    let mut error = None;
    for index in 0..steps_total {
        if portfolio
            .cancel
            .as_ref()
            .is_some_and(dd::CancelToken::is_cancelled)
        {
            error = Some(format!("cancelled before step {}", index + 1));
            break;
        }
        let pass = parsed.labels[index + 1].clone();
        let result = verify_portfolio_recorded(
            &parsed.circuits[index],
            &parsed.circuits[index + 1],
            portfolio,
            store,
            telemetry,
        );
        obs::metrics::incr(obs::metrics::CHAIN_STEPS);
        let report = PairReport::from_result(
            format!("{}:{pass}", parsed.name),
            parsed.displays[index].clone(),
            parsed.displays[index + 1].clone(),
            store.is_some() && (warm || index > 0),
            0.0,
            result,
        );
        obs::trace::event(
            "chain.step",
            &[
                ("pass", pass.clone().into()),
                ("verdict", report.verdict.to_string().into()),
                (
                    "chain_hits",
                    report
                        .shared_store
                        .as_ref()
                        .map_or(0u64, |s| s.chain_hits)
                        .into(),
                ),
            ],
        );
        let refuted = report.verdict == Equivalence::NotEquivalent;
        steps.push(ChainStepReport {
            pass: pass.clone(),
            report,
        });
        if refuted {
            // The adjacent pair differs, so this pass broke the pipeline;
            // later steps cannot exonerate it.
            guilty_pass = Some(pass);
            break;
        }
    }
    if let Some(store) = store {
        store.end_chain();
    }

    let verdict = if guilty_pass.is_some() {
        Equivalence::NotEquivalent
    } else if error.is_some()
        || steps.len() < steps_total
        || steps
            .iter()
            .any(|s| !s.report.verdict.considered_equivalent())
    {
        Equivalence::NoInformation
    } else {
        steps
            .iter()
            .map(|s| s.report.verdict)
            .fold(Equivalence::Equivalent, weakest)
    };
    let warm_hits: u64 = steps
        .iter()
        .filter_map(|s| s.report.shared_store.as_ref())
        .map(|s| s.warm_hits)
        .sum();
    let chain_hits: u64 = steps
        .iter()
        .filter_map(|s| s.report.shared_store.as_ref())
        .map(|s| s.chain_hits)
        .sum();
    ChainReport {
        name: parsed.name.clone(),
        verdict,
        considered_equivalent: verdict.considered_equivalent(),
        guilty_pass,
        steps_total,
        steps_verified: steps.len(),
        warm_hits,
        chain_hits,
        shelf_hits: warm_hits.saturating_sub(chain_hits),
        total_time: start.elapsed(),
        steps,
        error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weakest_orders_equivalence_strength() {
        use Equivalence::*;
        assert_eq!(
            weakest(Equivalent, EquivalentUpToGlobalPhase),
            EquivalentUpToGlobalPhase
        );
        assert_eq!(weakest(ProbablyEquivalent, Equivalent), ProbablyEquivalent);
        assert_eq!(weakest(Equivalent, Equivalent), Equivalent);
        assert_eq!(
            weakest(EquivalentUpToGlobalPhase, ProbablyEquivalent),
            ProbablyEquivalent
        );
    }
}
