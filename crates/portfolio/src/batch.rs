//! Batch verification driver: fan a workload of circuit pairs over a worker
//! pool of portfolio races and emit a machine-readable JSON report.
//!
//! A workload is described by a [`Manifest`] — either written by hand /
//! another tool as JSON:
//!
//! ```json
//! {
//!   "pairs": [
//!     { "name": "qpe_3", "left": "qpe_3.left.qasm", "right": "qpe_3.right.qasm" }
//!   ],
//!   "chains": [
//!     { "name": "qft_12", "qubits": 12, "steps": [
//!       { "pass": "original", "path": "qft_12.step0.qasm" },
//!       { "pass": "route",    "path": "qft_12.step1.qasm" },
//!       { "pass": "optimize", "path": "qft_12.step2.qasm" }
//!     ] }
//!   ]
//! }
//! ```
//!
//! or discovered from a directory of OpenQASM files with
//! [`manifest_from_dir`], which pairs files by shared stem: `X.left.qasm` +
//! `X.right.qasm` (also accepted: `X_left/X_right`, `X_a/X_b`). The
//! optional `chains` array (a *pipeline manifest*) lists compilation chains
//! verified pass-by-pass on one warm store — see [`crate::chain`].
//!
//! [`run_batch`] is the library entry point behind the `verify` binary; it
//! is what the ROADMAP calls the workload entry point for heavy traffic —
//! every pair is one independent portfolio race, so throughput scales with
//! the worker pool.

use crate::chain::{ChainReport, ChainRequest, ChainSpec};
use crate::engine::{
    EscalationReason, PortfolioConfig, PortfolioResult, SchemeReport, SharedStoreReport,
};
use crate::scheme::Scheme;
use crate::service::{Request, ServiceConfig, VerificationService};
use crate::telemetry::TelemetryStore;
use dd::SharedStore;
use qcec::Equivalence;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// One circuit pair of a batch workload.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PairSpec {
    /// Display name; defaults to the left file's stem.
    pub name: Option<String>,
    /// Path to the left (reference) circuit, relative to the manifest.
    pub left: String,
    /// Path to the right (candidate) circuit, relative to the manifest.
    pub right: String,
    /// Register width hint (max qubits of the two circuits). Lets the
    /// service skip the between-request store prune when the next queued
    /// request reuses the width; purely an optimisation, never affects
    /// verdicts. Corpus generators fill it in; hand-written manifests can
    /// omit it.
    pub qubits: Option<usize>,
}

/// A batch workload: a list of circuit pairs, plus (optionally) a list of
/// compilation chains verified pass-by-pass (see [`crate::chain`]).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Manifest {
    /// The circuit pairs to verify.
    pub pairs: Vec<PairSpec>,
    /// Compilation chains to verify incrementally. `Option` so manifests
    /// written before chains existed still load (a missing key
    /// deserializes as `Null`, which only `Option` accepts).
    pub chains: Option<Vec<ChainSpec>>,
}

impl Manifest {
    /// The manifest's chains (empty slice when the key is absent).
    pub fn chain_specs(&self) -> &[ChainSpec] {
        self.chains.as_deref().unwrap_or_default()
    }
}

/// Error raised while loading a workload.
#[derive(Debug)]
pub enum BatchError {
    /// The manifest file or a QASM directory could not be read.
    Io(std::io::Error),
    /// The manifest was not valid JSON of the expected shape.
    Manifest(serde::Error),
    /// A directory scan found a stem with other than exactly two files.
    UnpairedFiles {
        /// The offending stem.
        stem: String,
        /// Files sharing the stem.
        files: Vec<String>,
    },
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::Io(e) => write!(f, "i/o error: {e}"),
            BatchError::Manifest(e) => write!(f, "invalid manifest: {e}"),
            BatchError::UnpairedFiles { stem, files } => write!(
                f,
                "stem `{stem}` does not form a pair (found {})",
                files.join(", ")
            ),
        }
    }
}

impl std::error::Error for BatchError {}

impl From<std::io::Error> for BatchError {
    fn from(e: std::io::Error) -> Self {
        BatchError::Io(e)
    }
}

/// Loads a JSON manifest from disk. Relative pair paths are resolved against
/// the manifest's directory.
///
/// # Errors
///
/// [`BatchError::Io`] / [`BatchError::Manifest`] on unreadable or malformed
/// input.
pub fn load_manifest(path: &Path) -> Result<Manifest, BatchError> {
    let text = std::fs::read_to_string(path)?;
    let mut manifest: Manifest = serde_json::from_str(&text).map_err(BatchError::Manifest)?;
    if let Some(dir) = path.parent() {
        for pair in &mut manifest.pairs {
            pair.left = resolve(dir, &pair.left);
            pair.right = resolve(dir, &pair.right);
        }
        for chain in manifest.chains.iter_mut().flatten() {
            for step in &mut chain.steps {
                step.path = resolve(dir, &step.path);
            }
        }
    }
    Ok(manifest)
}

fn resolve(dir: &Path, file: &str) -> String {
    let path = Path::new(file);
    if path.is_absolute() {
        file.to_string()
    } else {
        dir.join(path).to_string_lossy().into_owned()
    }
}

/// Builds a manifest by pairing the `.qasm` files of a directory.
///
/// Files pair up when they share a stem after stripping a `left`/`right` or
/// `a`/`b` suffix (separated by `.` or `_`): `qpe.left.qasm` with
/// `qpe.right.qasm`, `bv_a.qasm` with `bv_b.qasm`. Pairs are sorted by stem
/// so reports are deterministic.
///
/// # Errors
///
/// [`BatchError::Io`] when the directory cannot be read,
/// [`BatchError::UnpairedFiles`] when a stem has other than two files.
pub fn manifest_from_dir(dir: &Path) -> Result<Manifest, BatchError> {
    let mut groups: std::collections::BTreeMap<String, Vec<PathBuf>> = Default::default();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("qasm") {
            continue;
        }
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default();
        let base = strip_side_suffix(stem);
        groups
            .entry(base.to_string())
            .or_default()
            .push(path.clone());
    }
    let mut pairs = Vec::new();
    for (stem, mut files) in groups {
        if files.len() != 2 {
            return Err(BatchError::UnpairedFiles {
                stem,
                files: files
                    .iter()
                    .map(|p| p.to_string_lossy().into_owned())
                    .collect(),
            });
        }
        files.sort(); // `a` < `b`, `left` < `right` — alphabetical works
        pairs.push(PairSpec {
            name: Some(stem),
            left: files[0].to_string_lossy().into_owned(),
            right: files[1].to_string_lossy().into_owned(),
            qubits: None,
        });
    }
    Ok(Manifest {
        pairs,
        chains: None,
    })
}

pub(crate) fn strip_side_suffix(stem: &str) -> &str {
    for suffix in [".left", ".right", "_left", "_right", ".a", ".b", "_a", "_b"] {
        if let Some(base) = stem.strip_suffix(suffix) {
            if !base.is_empty() {
                return base;
            }
        }
    }
    stem
}

/// Options of a [`run_batch`] invocation.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker threads racing pairs concurrently (each pair additionally
    /// spawns its portfolio's scheme threads). Defaults to the available
    /// parallelism divided by the typical scheme count.
    pub workers: usize,
    /// Portfolio configuration applied to every pair.
    pub portfolio: PortfolioConfig,
    /// Keep one shared store per register width alive across pairs
    /// ([`StorePool`]; default `true`): the gate-diagram L2 cache and the
    /// canonical nodes under it survive from pair to pair, turning batch
    /// workloads into cross-*pair* sharing. A barrier collection runs
    /// between pairs to bound the carry-over. Requires
    /// [`PortfolioConfig::shared_package`]; ignored (cold stores) when that
    /// is off.
    pub warm_stores: bool,
    /// Most register widths the warm-store pool retains shelves for
    /// (default [`DEFAULT_STORE_SHELVES`]): very heterogeneous batches
    /// would otherwise pin every width's node arenas for the whole run.
    /// Least-recently-used widths are evicted first. `verify
    /// --store-shelves N` sets this.
    pub store_shelves: usize,
    /// Optional persistent telemetry file (`verify --stats-file`): loaded
    /// before the batch (a missing file starts empty), fed to the
    /// scheduler of every pair, folded with the batch's new reports and
    /// saved back afterwards. An unreadable or malformed file is reported
    /// on stderr and the batch runs cold — and the damaged file is left
    /// untouched (no save), so recorded history is never clobbered.
    pub stats: Option<PathBuf>,
}

impl Default for BatchOptions {
    fn default() -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        BatchOptions {
            // Each pair races ~4 schemes; keep pair-level × scheme-level
            // threads near the hardware width.
            workers: (parallelism / 4).max(1),
            portfolio: PortfolioConfig::default(),
            warm_stores: true,
            store_shelves: DEFAULT_STORE_SHELVES,
            stats: None,
        }
    }
}

/// Default cap on how many register widths [`StorePool`] keeps shelves for.
pub const DEFAULT_STORE_SHELVES: usize = 4;

/// A pool of warm [`SharedStore`]s keyed by register width, with an LRU cap
/// on the number of retained widths.
///
/// Checkout is exclusive: a store handed to a pair is unavailable until it
/// is checked back in, so concurrent batch workers of the same width get
/// separate stores (each worker still reuses its stores across the pairs it
/// processes) and per-race telemetry deltas stay well-defined. The batch
/// driver runs a collection before checkin, so only GC roots — the shared
/// gate-diagram cache and the canonical structure under it — carry over.
///
/// Each shelved store pins its width's node arenas and gate cache for the
/// rest of the batch, so the pool bounds the number of *widths* it retains
/// (default [`DEFAULT_STORE_SHELVES`]): when a checkin would exceed the cap,
/// the least-recently-used width's shelf is dropped. Stores currently
/// checked out are never evicted — they simply face the same cap when they
/// come back.
#[derive(Debug)]
pub struct StorePool {
    inner: Mutex<PoolInner>,
    warm_checkouts: AtomicUsize,
    gc_skips: AtomicUsize,
    max_widths: usize,
}

#[derive(Debug, Default)]
struct PoolInner {
    shelves: HashMap<usize, Vec<Arc<SharedStore>>>,
    /// Widths in use order, least recently used first.
    recency: Vec<usize>,
}

impl PoolInner {
    fn touch(&mut self, width: usize) {
        self.recency.retain(|&w| w != width);
        self.recency.push(width);
    }

    fn evict_down_to(&mut self, max_widths: usize) {
        // Only widths with shelved stores count against the cap (and only
        // they can be evicted): a width that is merely checked out holds no
        // idle memory here.
        while self
            .shelves
            .values()
            .filter(|shelf| !shelf.is_empty())
            .count()
            > max_widths
        {
            let Some(victim) = self
                .recency
                .iter()
                .copied()
                .find(|w| self.shelves.get(w).is_some_and(|shelf| !shelf.is_empty()))
            else {
                break;
            };
            self.shelves.remove(&victim);
            self.recency.retain(|&w| w != victim);
        }
    }
}

impl Default for StorePool {
    fn default() -> Self {
        StorePool::with_shelves(DEFAULT_STORE_SHELVES)
    }
}

impl StorePool {
    /// Creates an empty pool retaining at most [`DEFAULT_STORE_SHELVES`]
    /// register widths.
    pub fn new() -> Self {
        StorePool::default()
    }

    /// Creates an empty pool retaining at most `max_widths` register widths
    /// (clamped to at least 1).
    pub fn with_shelves(max_widths: usize) -> Self {
        StorePool {
            inner: Mutex::new(PoolInner::default()),
            warm_checkouts: AtomicUsize::new(0),
            gc_skips: AtomicUsize::new(0),
            max_widths: max_widths.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Takes a store for `width` qubits out of the pool (creating a fresh
    /// one when none is shelved). Returns the store and whether it is warm
    /// (has served an earlier pair).
    pub fn checkout(&self, width: usize) -> (Arc<SharedStore>, bool) {
        let shelved = {
            let mut inner = self.lock();
            inner.touch(width);
            inner.shelves.get_mut(&width).and_then(Vec::pop)
        };
        match shelved {
            Some(store) => {
                self.warm_checkouts.fetch_add(1, Ordering::Relaxed);
                (store, true)
            }
            None => (SharedStore::new(), false),
        }
    }

    /// Returns a store to the pool for the next same-width pair, evicting
    /// the least-recently-used width beyond the pool's shelf cap.
    pub fn checkin(&self, width: usize, store: Arc<SharedStore>) {
        let mut inner = self.lock();
        inner.shelves.entry(width).or_default().push(store);
        inner.touch(width);
        inner.evict_down_to(self.max_widths);
    }

    /// How many checkouts were served by a warm store.
    pub fn warm_checkouts(&self) -> usize {
        self.warm_checkouts.load(Ordering::Relaxed)
    }

    /// Records that a between-request prune was skipped because the next
    /// queued request reuses the same register width (e.g. chain steps of
    /// one pipeline, or a corpus sweep of one width).
    pub fn note_gc_skip(&self) {
        self.gc_skips.fetch_add(1, Ordering::Relaxed);
    }

    /// How many between-request prunes were skipped (see
    /// [`note_gc_skip`](Self::note_gc_skip)).
    pub fn gc_skips(&self) -> usize {
        self.gc_skips.load(Ordering::Relaxed)
    }

    /// Number of register widths with at least one shelved store.
    pub fn shelved_widths(&self) -> usize {
        self.lock()
            .shelves
            .values()
            .filter(|shelf| !shelf.is_empty())
            .count()
    }

    /// Workspaces still attached to *shelved* stores, summed across shelves.
    ///
    /// A healthy pool always reports `0`: every race detaches its
    /// workspaces before the store is checked back in, so a non-zero count
    /// means a scheme leaked a workspace (and with it an epoch pin and a
    /// seat in the GC barrier quorum) into the pool. The
    /// cancellation-on-disconnect tests assert on this.
    pub fn attached_workspaces(&self) -> usize {
        self.lock()
            .shelves
            .values()
            .flatten()
            .map(|store| store.attached_workspaces())
            .sum()
    }
}

/// Hot-path metrics digest of one pair, reported as the `metrics` block of
/// the batch JSON.
///
/// Everything here is derived from always-on counters (no `--trace-file`
/// required). Rates are `None` when the pair reported no lookups at all;
/// the time fields sum *across* scheme threads, so they can exceed the
/// pair's wall-clock time.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct PairMetrics {
    /// Whether this pair's schemes raced on a shared decision-diagram
    /// store — the scheduler's per-pair decision, not the config default.
    pub shared: bool,
    /// Stable reason tag for the sharing decision (`"race-default"`,
    /// `"config-private"`, `"explicit-schemes"`, `"cold-telemetry"`,
    /// `"predicted-shared"`, `"predicted-private"`).
    pub shared_reason: String,
    /// Best compute-table hit rate any scheme of this pair reported.
    pub cache_hit_rate: Option<f64>,
    /// Shared-store canonical hits served by a competitor's structure,
    /// as a fraction of all canonical hits (`None` for private races).
    pub cross_thread_hit_rate: Option<f64>,
    /// Time spent requesting, parking for and waiting out GC barriers,
    /// summed across this pair's scheme threads (seconds).
    pub barrier_wait_seconds: f64,
    /// Barrier requests that timed out and deferred the collection.
    pub barrier_deferrals: usize,
    /// Store lock acquisitions that blocked behind another scheme.
    pub shard_lock_waits: u64,
    /// Time spent blocked on store locks, summed across threads (seconds).
    pub shard_contention_seconds: f64,
    /// Workspace mirror flushes forced by collections during this pair.
    pub mirror_invalidations: u64,
    /// Canonical hits served by structure carried over from an earlier
    /// pair on a warm store.
    pub warm_hits: u64,
    /// Time the batch driver spent collecting the warm store before
    /// returning it to the pool (seconds; `0` without warm stores).
    pub pool_gc_seconds: f64,
}

impl PairMetrics {
    pub(crate) fn from_result(result: &PortfolioResult, pool_gc_seconds: f64) -> PairMetrics {
        let store = result.shared_store.as_ref();
        PairMetrics {
            shared: result.shared,
            shared_reason: result.shared_reason.to_string(),
            cache_hit_rate: result
                .schemes
                .iter()
                .filter_map(|s| s.cache_hit_rate)
                .fold(None, |best: Option<f64>, rate| {
                    Some(best.map_or(rate, |b| b.max(rate)))
                }),
            cross_thread_hit_rate: store.map(|s| s.cross_thread_hit_rate),
            barrier_wait_seconds: store.map_or(0.0, |s| s.barrier_wait_seconds),
            barrier_deferrals: store.map_or(0, |s| s.barrier_deferrals),
            shard_lock_waits: store.map_or(0, |s| s.shard_lock_waits),
            shard_contention_seconds: store.map_or(0.0, |s| s.shard_contention_seconds),
            mirror_invalidations: store.map_or(0, |s| s.mirror_invalidations),
            warm_hits: store.map_or(0, |s| s.warm_hits),
            pool_gc_seconds,
        }
    }
}

/// Verification report of one pair.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PairReport {
    /// Pair name (from the manifest or derived from the file stem).
    pub name: String,
    /// Left circuit path.
    pub left: String,
    /// Right circuit path.
    pub right: String,
    /// Combined portfolio verdict.
    pub verdict: Equivalence,
    /// Convenience flag: does the verdict count as equivalent?
    pub considered_equivalent: bool,
    /// Scheme that produced the verdict.
    pub winner: Option<Scheme>,
    /// Wall time until the verdict (seconds in JSON).
    pub time_to_verdict: Duration,
    /// Wall time until all schemes stopped (seconds in JSON).
    pub total_time: Duration,
    /// Peak decision-diagram node count across all schemes of this pair.
    pub peak_nodes: Option<usize>,
    /// Decision-diagram garbage-collection runs summed over all schemes.
    pub gc_runs: usize,
    /// Best compute-table hit rate any scheme of this pair reported.
    pub cache_hit_rate: Option<f64>,
    /// Whether this pair ran on a warm store from the batch pool (carrying
    /// canonical structure over from an earlier same-width pair).
    pub warm_store: bool,
    /// Whether recorded telemetry steered this pair's launch plan (see
    /// [`PortfolioResult::predicted`](crate::PortfolioResult::predicted)).
    pub predicted: bool,
    /// Why a predicted plan had to launch its escalation wave
    /// (`"stall"` / `"inconclusive-drain"`), if it did.
    pub escalation: Option<EscalationReason>,
    /// Hot-path metrics digest (cache/sharing hit rates, barrier wait and
    /// lock contention time, warm reuse) — see [`PairMetrics`].
    pub metrics: PairMetrics,
    /// Shared decision-diagram store telemetry of this pair's race (peak
    /// nodes, cross-thread hit rate, warm hits, carry-over node count,
    /// store-level GC and barrier-GC runs); `None` when the pair raced with
    /// private packages or took the sequential fast path without a warm
    /// store.
    pub shared_store: Option<SharedStoreReport>,
    /// Per-scheme telemetry.
    pub schemes: Vec<SchemeReport>,
    /// Load/parse failure, when the pair never ran.
    pub error: Option<String>,
}

impl PairReport {
    /// Builds the report of one completed race. Shared by the pair and
    /// chain execution paths of the service.
    pub(crate) fn from_result(
        name: String,
        left: String,
        right: String,
        warm_store: bool,
        pool_gc_seconds: f64,
        result: PortfolioResult,
    ) -> PairReport {
        let metrics = PairMetrics::from_result(&result, pool_gc_seconds);
        PairReport {
            name,
            left,
            right,
            verdict: result.verdict,
            considered_equivalent: result.verdict.considered_equivalent(),
            winner: result.winner,
            time_to_verdict: result.time_to_verdict,
            total_time: result.total_time,
            peak_nodes: result.schemes.iter().filter_map(|s| s.peak_nodes).max(),
            gc_runs: result.schemes.iter().filter_map(|s| s.gc_runs).sum(),
            cache_hit_rate: result
                .schemes
                .iter()
                .filter_map(|s| s.cache_hit_rate)
                .fold(None, |best: Option<f64>, rate| {
                    Some(best.map_or(rate, |b| b.max(rate)))
                }),
            warm_store,
            predicted: result.predicted,
            escalation: result.escalation,
            metrics,
            shared_store: result.shared_store,
            schemes: result.schemes,
            error: None,
        }
    }
}

/// Report of a whole batch run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct BatchReport {
    /// Tool identifier, for provenance.
    pub generated_by: String,
    /// Number of pairs in the workload.
    pub pairs_total: usize,
    /// Pairs whose verdict counts as equivalent.
    pub pairs_equivalent: usize,
    /// Pairs that failed to load or produced no information.
    pub pairs_failed: usize,
    /// Pairs whose launch plan was steered by recorded telemetry.
    pub pairs_predicted: usize,
    /// Scheme launches summed over the whole batch — the headline savings
    /// metric of the adaptive scheduler (a race launches every applicable
    /// scheme; a successful prediction launches `k`).
    pub schemes_launched_total: usize,
    /// Decision-diagram garbage-collection runs summed over the whole batch.
    pub gc_runs_total: usize,
    /// Mid-race safe-point barrier collections summed over the whole batch.
    pub gc_barrier_runs_total: usize,
    /// Warm canonical-store hits (reuse of structure carried over from an
    /// earlier pair, or from an earlier chain step) summed over the whole
    /// batch; `0` without [`BatchOptions::warm_stores`].
    pub warm_hits_total: u64,
    /// Subset of [`warm_hits_total`](Self::warm_hits_total) that is chain
    /// carry-over: hits on structure an earlier step of the *same chain*
    /// interned. The headline sharing signal of incremental verification.
    pub chain_hits_total: u64,
    /// Adjacent-pair verifications (plain pairs + verified chain steps)
    /// completed per wall-clock second — the headline throughput metric.
    /// Caveat: throughput at the *achieved* verdict mix, not at fixed
    /// verdict quality; a batch of failed parses completes very fast. Read
    /// it next to `pairs_failed` and `chains_refuted`.
    pub pairs_per_sec: f64,
    /// Chains in the workload.
    pub chains_total: usize,
    /// Chains whose combined verdict counts as equivalent.
    pub chains_equivalent: usize,
    /// Chains refuted, each naming a guilty pass in its report.
    pub chains_refuted: usize,
    /// Adjacent-pair verifications performed inside chains (a refuted
    /// chain stops early, so this can be less than the steps requested).
    pub chain_steps_verified: usize,
    /// Wall time of the whole batch (seconds in JSON).
    pub total_time: Duration,
    /// Per-pair reports, in manifest order.
    pub pairs: Vec<PairReport>,
    /// Per-chain reports, in manifest order.
    pub chains: Vec<ChainReport>,
}

pub(crate) fn failed_pair(spec: &PairSpec, name: String, error: String) -> PairReport {
    PairReport {
        name,
        left: spec.left.clone(),
        right: spec.right.clone(),
        verdict: Equivalence::NoInformation,
        considered_equivalent: false,
        winner: None,
        time_to_verdict: Duration::ZERO,
        total_time: Duration::ZERO,
        peak_nodes: None,
        gc_runs: 0,
        cache_hit_rate: None,
        warm_store: false,
        predicted: false,
        escalation: None,
        metrics: PairMetrics::default(),
        shared_store: None,
        schemes: Vec::new(),
        error: Some(error),
    }
}

/// Fans the manifest's pairs over a pool of `options.workers` threads, each
/// running full portfolio races, and collects a [`BatchReport`].
///
/// With [`BatchOptions::stats`] set, the persistent telemetry store is
/// loaded first (a missing file starts empty; an unreadable or malformed
/// one is reported on stderr and treated as empty), fed to every pair's
/// scheduler, and saved back — with the batch's new telemetry folded in —
/// when the batch finishes.
pub fn run_batch(manifest: &Manifest, options: &BatchOptions) -> BatchReport {
    match &options.stats {
        None => run_batch_recorded(manifest, options, None),
        Some(path) => {
            // A load failure (unreadable or malformed — a *missing* file is
            // simply a cold start) runs the batch cold but must NOT save
            // afterwards: overwriting the existing file with only this
            // batch's stats would silently destroy the accumulated history.
            let (store, load_failed) = match TelemetryStore::load(path) {
                Ok(store) => (store, false),
                Err(error) => {
                    eprintln!(
                        "warning: cannot load stats file {}: {error}; running cold",
                        path.display()
                    );
                    (TelemetryStore::new(), true)
                }
            };
            let telemetry = Mutex::new(store);
            let report = run_batch_recorded(manifest, options, Some(&telemetry));
            let store = telemetry
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner);
            if load_failed {
                eprintln!(
                    "warning: not saving stats to {} — the existing file failed to load and \
                     saving would overwrite it; repair or remove it first",
                    path.display()
                );
            } else if let Err(error) = store.save(path) {
                eprintln!(
                    "warning: cannot save stats file {}: {error}",
                    path.display()
                );
            }
            report
        }
    }
}

/// [`run_batch`] against a caller-owned telemetry store: every pair's
/// scheduler plans against it and folds its reports back in. This is the
/// building block behind [`BatchOptions::stats`]; use it directly to keep
/// telemetry in memory across several batches (e.g. a long-running
/// service).
pub fn run_batch_recorded(
    manifest: &Manifest,
    options: &BatchOptions,
    telemetry: Option<&Mutex<TelemetryStore>>,
) -> BatchReport {
    let start = Instant::now();
    // The batch driver is a one-shot front-end over the service core: spin
    // up a service sized for the manifest, submit every pair, wait for the
    // outcomes in manifest order, drain. The caller's telemetry store is
    // moved into the service for the run (the engine folds every race into
    // it there) and moved back out of `drain()` afterwards.
    let seed = telemetry.map_or_else(TelemetryStore::new, |store| {
        std::mem::take(&mut *store.lock().unwrap_or_else(PoisonError::into_inner))
    });
    let chain_specs = manifest.chain_specs();
    let workload = manifest.pairs.len() + chain_specs.len();
    let service = VerificationService::start_seeded(
        ServiceConfig {
            portfolio: options.portfolio.clone(),
            workers: options.workers.clamp(1, workload.max(1)),
            // A batch never queues more than its own manifest; size the
            // queue so admission control cannot reject.
            max_queue: workload,
            warm_stores: options.warm_stores,
            store_shelves: options.store_shelves,
            stats: None,
        },
        seed,
    );
    let handles: Vec<_> = manifest
        .pairs
        .iter()
        .map(|spec| {
            service
                .submit(Request::from_pair(spec))
                .expect("batch service queue is sized for the whole manifest")
        })
        .collect();
    let chain_handles: Vec<_> = chain_specs
        .iter()
        .map(|spec| {
            service
                .submit_chain(ChainRequest::from_spec(spec))
                .expect("batch service queue is sized for the whole manifest")
        })
        .collect();
    let pairs: Vec<PairReport> = handles
        .into_iter()
        .map(|handle| handle.wait().report)
        .collect();
    let chains: Vec<ChainReport> = chain_handles
        .into_iter()
        .map(|handle| handle.wait().report)
        .collect();
    let folded = service.drain();
    if let Some(store) = telemetry {
        *store.lock().unwrap_or_else(PoisonError::into_inner) = folded;
    }
    let total_time = start.elapsed();
    let chain_steps_verified: usize = chains.iter().map(|c| c.steps_verified).sum();
    let verifications = pairs.len() + chain_steps_verified;
    BatchReport {
        generated_by: format!("nonunitary-qcec verify {}", env!("CARGO_PKG_VERSION")),
        pairs_total: pairs.len(),
        pairs_equivalent: pairs.iter().filter(|p| p.considered_equivalent).count(),
        pairs_failed: pairs
            .iter()
            .filter(|p| p.error.is_some() || p.verdict == Equivalence::NoInformation)
            .count(),
        pairs_predicted: pairs.iter().filter(|p| p.predicted).count(),
        schemes_launched_total: pairs
            .iter()
            .map(|p| p.schemes.len())
            .chain(
                chains
                    .iter()
                    .flat_map(|c| c.steps.iter().map(|s| s.report.schemes.len())),
            )
            .sum(),
        gc_runs_total: pairs
            .iter()
            .map(|p| p.gc_runs)
            .chain(
                chains
                    .iter()
                    .flat_map(|c| c.steps.iter().map(|s| s.report.gc_runs)),
            )
            .sum(),
        gc_barrier_runs_total: pairs
            .iter()
            .filter_map(|p| p.shared_store.as_ref())
            .chain(
                chains
                    .iter()
                    .flat_map(|c| c.steps.iter())
                    .filter_map(|s| s.report.shared_store.as_ref()),
            )
            .map(|s| s.gc_barrier_runs)
            .sum(),
        warm_hits_total: pairs
            .iter()
            .filter_map(|p| p.shared_store.as_ref())
            .map(|s| s.warm_hits)
            .sum::<u64>()
            + chains.iter().map(|c| c.warm_hits).sum::<u64>(),
        chain_hits_total: chains.iter().map(|c| c.chain_hits).sum(),
        pairs_per_sec: if total_time.as_secs_f64() > 0.0 {
            verifications as f64 / total_time.as_secs_f64()
        } else {
            0.0
        },
        chains_total: chains.len(),
        chains_equivalent: chains.iter().filter(|c| c.considered_equivalent).count(),
        chains_refuted: chains.iter().filter(|c| c.guilty_pass.is_some()).count(),
        chain_steps_verified,
        total_time,
        pairs,
        chains,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_pool_evicts_least_recently_used_widths() {
        let pool = StorePool::with_shelves(2);
        for width in [4usize, 6, 8] {
            let (store, warm) = pool.checkout(width);
            assert!(!warm, "width {width} was never shelved");
            pool.checkin(width, store);
        }
        // Widths 6 and 8 survive; 4 (least recently used) was evicted.
        assert_eq!(pool.shelved_widths(), 2);
        assert!(pool.checkout(6).1, "width 6 should still be shelved");
        assert!(pool.checkout(8).1, "width 8 should still be shelved");
        assert!(!pool.checkout(4).1, "width 4 should have been evicted");
    }

    #[test]
    fn store_pool_checkout_touches_recency() {
        let pool = StorePool::with_shelves(2);
        for width in [4usize, 6] {
            let (store, _) = pool.checkout(width);
            pool.checkin(width, store);
        }
        // Touch width 4 so 6 becomes the eviction victim.
        let (store, warm) = pool.checkout(4);
        assert!(warm);
        pool.checkin(4, store);
        let (store, _) = pool.checkout(8);
        pool.checkin(8, store);
        assert!(pool.checkout(4).1, "width 4 was recently used");
        assert!(!pool.checkout(6).1, "width 6 was the LRU victim");
    }

    #[test]
    fn checked_out_stores_survive_eviction_pressure() {
        let pool = StorePool::with_shelves(1);
        let (held, _) = pool.checkout(4);
        for width in [6usize, 8] {
            let (store, _) = pool.checkout(width);
            pool.checkin(width, store);
        }
        // The held store was never evictable; returning it applies the cap.
        pool.checkin(4, held);
        assert_eq!(pool.shelved_widths(), 1);
        assert!(pool.checkout(4).1, "the just-returned store is newest");
    }
}
