//! Wire protocol of the `verifyd` daemon: newline-delimited JSON-RPC.
//!
//! One request per line, one response per line, over stdio or a Unix
//! socket. The format is JSON-RPC 2.0 in spirit (`id` / `method` /
//! `params` requests, `result` / `error` responses, the standard
//! `-327xx` error codes) without the `jsonrpc` version tag — the
//! transport is private to the daemon and its clients, not a public
//! JSON-RPC endpoint.
//!
//! This module owns the *hostile-input* half of the daemon: framing with
//! an explicit size bound ([`read_frame`]) and request parsing that maps
//! every malformed input to a structured [`RequestError`] — never a
//! panic, never a silently dropped line. The proptest suite feeds
//! adversarial byte streams through both.
//!
//! # Requests
//!
//! ```json
//! {"id": 1, "method": "verify-pair", "params": {"left": "a.qasm", "right": "b.qasm"}}
//! ```
//!
//! * `method` (required): `verify-pair`, `verify-batch`, `stats`,
//!   `drain` or `shutdown` (the daemon rejects others with
//!   [`code::METHOD_NOT_FOUND`]).
//! * `id` (optional): number, string or null. Echoed verbatim in the
//!   response; requests on one connection are answered in *completion*
//!   order, so concurrent clients correlate by `id`.
//! * `params` (optional): object; method-specific.
//!
//! # Responses
//!
//! ```json
//! {"id": 1, "result": {...}}
//! {"id": 1, "error": {"code": -32020, "message": "service saturated: ..."}}
//! ```
//!
//! A request whose `id` could not be recovered (unparseable line) is
//! answered with `"id": null`.

use std::io::{BufRead, ErrorKind, Read};

/// Default cap on one request line, in bytes (1 MiB). Inline circuit text
/// rides inside request lines, so the cap is generous; anything larger is
/// answered with [`code::OVERSIZED_FRAME`] and the line is discarded.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Error codes carried in `error.code`. The `-327xx` values match
/// JSON-RPC 2.0; the `-320xx` values are specific to this daemon.
pub mod code {
    /// The line was not valid JSON (or not valid UTF-8).
    pub const PARSE_ERROR: i64 = -32700;
    /// The line was valid JSON but not a valid request object.
    pub const INVALID_REQUEST: i64 = -32600;
    /// The request named a method the daemon does not serve.
    pub const METHOD_NOT_FOUND: i64 = -32601;
    /// The params were missing, of the wrong type, or inconsistent.
    pub const INVALID_PARAMS: i64 = -32602;
    /// The daemon failed internally while serving the request.
    pub const INTERNAL: i64 = -32603;
    /// The request line exceeded the frame size cap and was discarded.
    pub const OVERSIZED_FRAME: i64 = -32010;
    /// Admission control rejected the request: all workers busy and the
    /// wait queue full. Back off and retry.
    pub const SATURATED: i64 = -32020;
    /// The daemon is draining and admits no new work.
    pub const DRAINING: i64 = -32021;
    /// The (single, process-global) trace sink is leased to another
    /// connection.
    pub const TRACE_BUSY: i64 = -32022;
}

/// One framing step: a complete line, an oversized discard, or end of
/// stream.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete line (without the trailing `\n`; a trailing `\r` is
    /// trimmed too). May be empty — callers skip blank lines.
    Line(Vec<u8>),
    /// The line exceeded the cap. Its bytes up to and including the next
    /// `\n` were consumed and discarded, so the stream is resynchronized:
    /// the next [`read_frame`] call starts at a fresh line.
    Oversized {
        /// Bytes discarded (excluding the terminating newline, which may
        /// be absent when the stream ended mid-line).
        discarded: usize,
    },
    /// End of stream. A final unterminated line is still delivered as
    /// [`Frame::Line`] first.
    Eof,
}

/// Reads one newline-delimited frame, enforcing `max_len`.
///
/// Unlike [`BufRead::read_line`], an over-long line cannot balloon
/// memory: once `max_len` bytes accumulate without a newline, the rest of
/// the line is consumed in fixed-size chunks and thrown away, and
/// [`Frame::Oversized`] reports the discard. The caller can then answer
/// with a structured error and keep serving the connection.
///
/// # Errors
///
/// Propagates I/O errors from the underlying reader ([`ErrorKind::Interrupted`]
/// is retried internally).
pub fn read_frame<R: BufRead>(reader: &mut R, max_len: usize) -> std::io::Result<Frame> {
    let mut line = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok(buffer) => buffer,
            Err(error) if error.kind() == ErrorKind::Interrupted => continue,
            Err(error) => return Err(error),
        };
        if available.is_empty() {
            // EOF: deliver what we have; an empty remainder is the real end.
            if line.is_empty() {
                return Ok(Frame::Eof);
            }
            trim_cr(&mut line);
            return Ok(Frame::Line(line));
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(newline) => {
                if line.len() + newline > max_len {
                    let discarded = line.len() + newline;
                    reader.consume(newline + 1);
                    return Ok(Frame::Oversized { discarded });
                }
                line.extend_from_slice(&available[..newline]);
                reader.consume(newline + 1);
                trim_cr(&mut line);
                return Ok(Frame::Line(line));
            }
            None => {
                let chunk = available.len();
                if line.len() + chunk > max_len {
                    // Too long already: stop buffering, drain to newline.
                    let mut discarded = line.len() + chunk;
                    reader.consume(chunk);
                    line.clear();
                    line.shrink_to_fit();
                    loop {
                        let available = match reader.fill_buf() {
                            Ok(buffer) => buffer,
                            Err(error) if error.kind() == ErrorKind::Interrupted => continue,
                            Err(error) => return Err(error),
                        };
                        if available.is_empty() {
                            return Ok(Frame::Oversized { discarded });
                        }
                        match available.iter().position(|&b| b == b'\n') {
                            Some(newline) => {
                                discarded += newline;
                                reader.consume(newline + 1);
                                return Ok(Frame::Oversized { discarded });
                            }
                            None => {
                                discarded += available.len();
                                let n = available.len();
                                reader.consume(n);
                            }
                        }
                    }
                }
                line.extend_from_slice(available);
                reader.consume(chunk);
            }
        }
    }
}

fn trim_cr(line: &mut Vec<u8>) {
    if line.last() == Some(&b'\r') {
        line.pop();
    }
}

/// Convenience for non-`BufRead` sources: wraps the reader in a
/// [`std::io::BufReader`] sized for the frame cap. Prefer keeping one
/// `BufReader` per connection and calling [`read_frame`] directly.
pub fn frame_reader<R: Read>(reader: R) -> std::io::BufReader<R> {
    std::io::BufReader::new(reader)
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcRequest {
    /// Request id to echo in the response (`None` when absent). Restricted
    /// to number / string / null — other JSON types are rejected as
    /// [`code::INVALID_REQUEST`].
    pub id: Option<serde::Value>,
    /// Method name.
    pub method: String,
    /// Method parameters; `None` when absent. Always an object when
    /// present.
    pub params: Option<serde::Value>,
}

/// A structured parse/validation failure: everything needed to build the
/// error response, including whatever request id could be salvaged.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// Error code (see [`code`]).
    pub code: i64,
    /// Human-readable message.
    pub message: String,
    /// The request id, when it could be recovered from the broken request
    /// (echoed so the client can still correlate the failure).
    pub id: Option<serde::Value>,
}

impl RequestError {
    fn new(code: i64, message: impl Into<String>, id: Option<serde::Value>) -> RequestError {
        RequestError {
            code,
            message: message.into(),
            id,
        }
    }
}

/// Checks that a JSON value is a legal request id (number, string or
/// null).
fn valid_id(value: &serde::Value) -> bool {
    matches!(
        value,
        serde::Value::Number(_) | serde::Value::String(_) | serde::Value::Null
    )
}

/// Parses and validates one request line.
///
/// Total: every possible byte string maps to `Ok` or a structured
/// [`RequestError`] — no panics, no silent drops (the proptest suite
/// pins this over adversarial inputs).
///
/// # Errors
///
/// [`code::PARSE_ERROR`] for non-UTF-8 or non-JSON bytes;
/// [`code::INVALID_REQUEST`] for JSON that is not an object, lacks a
/// string `method`, or carries an `id` of an illegal type;
/// [`code::INVALID_PARAMS`] for a non-object `params`.
pub fn parse_request(line: &[u8]) -> Result<RpcRequest, RequestError> {
    let text = std::str::from_utf8(line)
        .map_err(|e| RequestError::new(code::PARSE_ERROR, format!("invalid UTF-8: {e}"), None))?;
    let value: serde::Value = serde_json::from_str(text)
        .map_err(|e| RequestError::new(code::PARSE_ERROR, format!("invalid JSON: {e}"), None))?;
    let serde::Value::Object(_) = &value else {
        return Err(RequestError::new(
            code::INVALID_REQUEST,
            format!("request must be a JSON object, got {}", value.kind()),
            None,
        ));
    };
    // Salvage the id first so later errors can echo it — but only when it
    // is of a legal type (echoing an attacker-controlled object back
    // verbatim is how response parsers get confused).
    let id = match value.get("id") {
        None => None,
        Some(id) if valid_id(id) => Some(id.clone()),
        Some(id) => {
            return Err(RequestError::new(
                code::INVALID_REQUEST,
                format!("id must be a number, string or null, got {}", id.kind()),
                None,
            ));
        }
    };
    let method = match value.get("method") {
        Some(serde::Value::String(method)) => method.clone(),
        Some(other) => {
            return Err(RequestError::new(
                code::INVALID_REQUEST,
                format!("method must be a string, got {}", other.kind()),
                id,
            ));
        }
        None => {
            return Err(RequestError::new(
                code::INVALID_REQUEST,
                "request has no method",
                id,
            ));
        }
    };
    let params = match value.get("params") {
        None | Some(serde::Value::Null) => None,
        Some(params @ serde::Value::Object(_)) => Some(params.clone()),
        Some(other) => {
            return Err(RequestError::new(
                code::INVALID_PARAMS,
                format!("params must be an object, got {}", other.kind()),
                id,
            ));
        }
    };
    Ok(RpcRequest { id, method, params })
}

fn id_value(id: Option<&serde::Value>) -> serde::Value {
    id.cloned().unwrap_or(serde::Value::Null)
}

/// Renders a success response line (newline included).
pub fn response_ok(id: Option<&serde::Value>, result: serde::Value) -> String {
    render_line(serde::Value::Object(vec![
        ("id".to_string(), id_value(id)),
        ("result".to_string(), result),
    ]))
}

/// Renders an error response line (newline included).
pub fn response_error(id: Option<&serde::Value>, code: i64, message: &str) -> String {
    render_line(serde::Value::Object(vec![
        ("id".to_string(), id_value(id)),
        (
            "error".to_string(),
            serde::Value::Object(vec![
                ("code".to_string(), serde::Value::Number(code as f64)),
                (
                    "message".to_string(),
                    serde::Value::String(message.to_string()),
                ),
            ]),
        ),
    ]))
}

/// Renders a [`RequestError`] as its response line.
pub fn response_request_error(error: &RequestError) -> String {
    response_error(error.id.as_ref(), error.code, &error.message)
}

/// The error code for an admission rejection.
pub fn reject_code(reason: &crate::service::RejectReason) -> i64 {
    match reason {
        crate::service::RejectReason::Saturated { .. } => code::SATURATED,
        crate::service::RejectReason::Draining => code::DRAINING,
    }
}

fn render_line(value: serde::Value) -> String {
    let mut text = serde_json::to_string(&value).unwrap_or_else(|_| {
        // Only non-finite numbers can fail to render; responses built by
        // this module never contain one, but a method result assembled
        // from telemetry conceivably could. Degrade to an error response
        // (which contains only strings and integer codes) over panicking
        // the connection thread.
        serde_json::to_string(&serde::Value::Object(vec![
            ("id".to_string(), serde::Value::Null),
            (
                "error".to_string(),
                serde::Value::Object(vec![
                    (
                        "code".to_string(),
                        serde::Value::Number(code::INTERNAL as f64),
                    ),
                    (
                        "message".to_string(),
                        serde::Value::String("response contained a non-finite number".to_string()),
                    ),
                ]),
            ),
        ]))
        .expect("static error response renders")
    });
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<RpcRequest, RequestError> {
        parse_request(text.as_bytes())
    }

    #[test]
    fn parses_a_full_request() {
        let request = parse(r#"{"id": 7, "method": "stats", "params": {"x": 1}}"#).unwrap();
        assert_eq!(request.id, Some(serde::Value::Number(7.0)));
        assert_eq!(request.method, "stats");
        assert!(request.params.is_some());
    }

    #[test]
    fn id_and_params_are_optional() {
        let request = parse(r#"{"method": "drain"}"#).unwrap();
        assert_eq!(request.id, None);
        assert_eq!(request.params, None);
    }

    #[test]
    fn malformed_inputs_map_to_structured_errors() {
        assert_eq!(parse("").unwrap_err().code, code::PARSE_ERROR);
        assert_eq!(parse("{").unwrap_err().code, code::PARSE_ERROR);
        assert_eq!(parse("[1,2]").unwrap_err().code, code::INVALID_REQUEST);
        assert_eq!(parse("42").unwrap_err().code, code::INVALID_REQUEST);
        assert_eq!(
            parse(r#"{"id": 1}"#).unwrap_err().code,
            code::INVALID_REQUEST
        );
        assert_eq!(
            parse(r#"{"id": 1, "method": 5}"#).unwrap_err().code,
            code::INVALID_REQUEST
        );
        assert_eq!(
            parse(r#"{"id": {}, "method": "stats"}"#).unwrap_err().code,
            code::INVALID_REQUEST
        );
        assert_eq!(
            parse(r#"{"id": 1, "method": "stats", "params": []}"#)
                .unwrap_err()
                .code,
            code::INVALID_PARAMS
        );
        assert_eq!(
            parse_request(&[0xff, 0xfe, b'{']).unwrap_err().code,
            code::PARSE_ERROR
        );
    }

    #[test]
    fn errors_echo_a_salvaged_id() {
        let error = parse(r#"{"id": "abc", "method": 5}"#).unwrap_err();
        assert_eq!(error.id, Some(serde::Value::String("abc".to_string())));
        let line = response_request_error(&error);
        assert!(line.starts_with(r#"{"id":"abc","error":"#), "{line}");
        assert!(line.ends_with('\n'));
    }

    #[test]
    fn read_frame_splits_lines_and_trims_cr() {
        let mut reader = BufReader::new(&b"alpha\r\nbeta\ngamma"[..]);
        assert_eq!(
            read_frame(&mut reader, 64).unwrap(),
            Frame::Line(b"alpha".to_vec())
        );
        assert_eq!(
            read_frame(&mut reader, 64).unwrap(),
            Frame::Line(b"beta".to_vec())
        );
        // Final unterminated line is still delivered, then EOF.
        assert_eq!(
            read_frame(&mut reader, 64).unwrap(),
            Frame::Line(b"gamma".to_vec())
        );
        assert_eq!(read_frame(&mut reader, 64).unwrap(), Frame::Eof);
    }

    #[test]
    fn read_frame_discards_oversized_lines_and_resyncs() {
        let mut input = vec![b'x'; 100];
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        // Tiny buffer forces the chunked drain path too.
        let mut reader = BufReader::with_capacity(8, &input[..]);
        match read_frame(&mut reader, 16).unwrap() {
            Frame::Oversized { discarded } => assert_eq!(discarded, 100),
            other => panic!("expected Oversized, got {other:?}"),
        }
        assert_eq!(
            read_frame(&mut reader, 16).unwrap(),
            Frame::Line(b"ok".to_vec())
        );
        assert_eq!(read_frame(&mut reader, 16).unwrap(), Frame::Eof);
    }

    #[test]
    fn read_frame_reports_oversized_at_eof_without_newline() {
        let input = [b'y'; 50];
        let mut reader = BufReader::with_capacity(8, &input[..]);
        match read_frame(&mut reader, 10).unwrap() {
            Frame::Oversized { discarded } => assert_eq!(discarded, 50),
            other => panic!("expected Oversized, got {other:?}"),
        }
        assert_eq!(read_frame(&mut reader, 10).unwrap(), Frame::Eof);
    }

    #[test]
    fn response_lines_are_single_lines() {
        let ok = response_ok(
            Some(&serde::Value::Number(3.0)),
            serde::Value::Object(vec![("verdict".to_string(), serde::Value::Bool(true))]),
        );
        assert_eq!(ok.matches('\n').count(), 1);
        assert!(ok.ends_with('\n'));
        let err = response_error(None, code::SATURATED, "busy");
        assert_eq!(err.matches('\n').count(), 1);
        assert!(err.starts_with(r#"{"id":null,"error""#));
    }
}
