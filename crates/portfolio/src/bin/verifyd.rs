//! verifyd — resident verification daemon over the portfolio service core.
//!
//! Speaks the newline-delimited JSON-RPC protocol of [`portfolio::wire`]
//! over stdio (the default; one client) or a Unix socket (`--socket PATH`;
//! concurrent clients, one thread per connection). All clients share one
//! [`portfolio::service::VerificationService`]: the warm store pool, the
//! folded telemetry and the admission queue are daemon-global, so a second
//! client's QFT-12 request hits the canonical structure the first client
//! paid to build.
//!
//! ```text
//! verifyd [--socket PATH] [--workers N] [--max-queue N]
//!         [--deadline SECS] [--node-limit N] [--policy race|predicted]
//!         [--stats-file FILE] [--store-shelves N] [--cold-stores]
//!         [--private-packages] [--trace-file FILE] [--max-frame-bytes N]
//! ```
//!
//! Methods: `verify-pair`, `verify-chain`, `verify-batch`, `stats`,
//! `drain`, `shutdown` (wire details in [`portfolio::wire`]). Responses are
//! written in *completion* order — correlate by `id`. Every verify response
//! carries the `obs::metrics` delta folded around its race. A client that
//! disconnects with requests outstanding cancels them: each request's
//! token unwinds its in-flight race and the store goes back to the pool.
//!
//! `verify-chain` takes a compilation pipeline — `steps` is an ordered
//! array of `{pass?, path|text}` snapshots — and verifies it pass-by-pass
//! on one warm store ([`portfolio::chain`]); the response carries per-step
//! reports and, on refutation, the `guilty_pass`.
//!
//! `drain` stops admission, finishes the backlog (all connections), saves
//! the stats file, answers with the final service stats and exits 0.
//! `shutdown` is `drain` with the backlog cancelled first.

use portfolio::chain::{ChainRequest, ChainStep};
use portfolio::service::{
    ChainOutcome, Request, RequestOutcome, ServiceConfig, Source, VerificationService,
};
use portfolio::wire::{self, code, Frame, RpcRequest};
use portfolio::SchedulePolicy;
use serde::Value;
use std::collections::HashMap;
use std::io::{BufReader, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

struct Args {
    socket: Option<PathBuf>,
    workers: Option<usize>,
    max_queue: Option<usize>,
    deadline: Option<f64>,
    node_limit: Option<usize>,
    policy: Option<String>,
    stats_file: Option<PathBuf>,
    store_shelves: Option<usize>,
    warm_stores: bool,
    private_packages: bool,
    trace_file: Option<PathBuf>,
    max_frame: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        socket: None,
        workers: None,
        max_queue: None,
        deadline: None,
        node_limit: None,
        policy: None,
        stats_file: None,
        store_shelves: None,
        warm_stores: true,
        private_packages: false,
        trace_file: None,
        max_frame: wire::MAX_FRAME_BYTES,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--socket" => args.socket = Some(PathBuf::from(value("--socket")?)),
            "--workers" => {
                args.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|_| "--workers must be a positive integer".to_string())?,
                );
            }
            "--max-queue" => {
                args.max_queue = Some(
                    value("--max-queue")?
                        .parse()
                        .map_err(|_| "--max-queue must be a non-negative integer".to_string())?,
                );
            }
            "--deadline" => {
                let seconds: f64 = value("--deadline")?
                    .parse()
                    .map_err(|_| "invalid --deadline")?;
                if !seconds.is_finite() || seconds <= 0.0 {
                    return Err("--deadline must be a positive number of seconds".to_string());
                }
                args.deadline = Some(seconds);
            }
            "--node-limit" => {
                args.node_limit = Some(
                    value("--node-limit")?
                        .parse()
                        .map_err(|_| "--node-limit must be a positive integer".to_string())?,
                );
            }
            "--policy" => {
                let policy = value("--policy")?;
                if policy != "race" && policy != "predicted" {
                    return Err(format!(
                        "--policy must be `race` or `predicted`, got `{policy}`"
                    ));
                }
                args.policy = Some(policy);
            }
            "--stats-file" => args.stats_file = Some(PathBuf::from(value("--stats-file")?)),
            "--store-shelves" => {
                args.store_shelves = Some(
                    value("--store-shelves")?
                        .parse()
                        .map_err(|_| "--store-shelves must be a positive integer".to_string())?,
                );
            }
            "--cold-stores" => args.warm_stores = false,
            "--private-packages" => args.private_packages = true,
            "--trace-file" => args.trace_file = Some(PathBuf::from(value("--trace-file")?)),
            "--max-frame-bytes" => {
                args.max_frame = value("--max-frame-bytes")?
                    .parse()
                    .map_err(|_| "--max-frame-bytes must be a positive integer".to_string())?;
                if args.max_frame == 0 {
                    return Err("--max-frame-bytes must be positive".to_string());
                }
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}`; usage: verifyd [--socket PATH] [--workers N] \
                     [--max-queue N] [--deadline SECS] [--node-limit N] \
                     [--policy race|predicted] [--stats-file FILE] [--store-shelves N] \
                     [--cold-stores] [--private-packages] [--trace-file FILE] \
                     [--max-frame-bytes N]"
                ));
            }
        }
    }
    Ok(args)
}

/// Daemon-global state shared by every connection thread.
struct Daemon {
    service: VerificationService,
    /// Verify requests whose waiter thread has not written its response
    /// yet; drain waits for this to hit zero so the drain response is the
    /// last line a well-behaved client sees.
    pending: Mutex<usize>,
    pending_done: Condvar,
    /// Set once a drain/shutdown response is being produced; later drain
    /// requests short-circuit instead of double-draining.
    stopping: AtomicBool,
    socket_path: Option<PathBuf>,
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

fn write_line(writer: &SharedWriter, line: &str) {
    let mut guard = lock(writer);
    // A dead peer is normal (disconnect with responses in flight).
    let _ = guard.write_all(line.as_bytes());
    let _ = guard.flush();
}

// ---------------------------------------------------------------------------
// Param parsing
// ---------------------------------------------------------------------------

fn field<'v>(params: Option<&'v Value>, name: &str) -> Option<&'v Value> {
    params
        .and_then(|p| p.get(name))
        .filter(|v| !matches!(v, Value::Null))
}

fn string_field(params: Option<&Value>, name: &str) -> Result<Option<String>, String> {
    match field(params, name) {
        None => Ok(None),
        Some(value) => value
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("{name} must be a string, got {}", value.kind())),
    }
}

fn seconds_field(params: Option<&Value>, name: &str) -> Result<Option<Duration>, String> {
    match field(params, name) {
        None => Ok(None),
        Some(value) => {
            let seconds = value
                .as_f64()
                .ok_or_else(|| format!("{name} must be a number, got {}", value.kind()))?;
            if !seconds.is_finite() || seconds <= 0.0 {
                return Err(format!(
                    "{name} must be a positive, finite number of seconds"
                ));
            }
            Ok(Some(Duration::from_secs_f64(seconds)))
        }
    }
}

fn count_field(params: Option<&Value>, name: &str) -> Result<Option<usize>, String> {
    match field(params, name) {
        None => Ok(None),
        Some(value) => {
            let n = value
                .as_f64()
                .ok_or_else(|| format!("{name} must be a number, got {}", value.kind()))?;
            if !n.is_finite() || n < 0.0 || n.fract() != 0.0 {
                return Err(format!("{name} must be a non-negative integer"));
            }
            Ok(Some(n as usize))
        }
    }
}

fn source_field(params: Option<&Value>, side: &str) -> Result<Source, String> {
    let path = string_field(params, side)?;
    let text = string_field(params, &format!("{side}_text"))?;
    match (path, text) {
        (Some(path), None) => Ok(Source::Path(PathBuf::from(path))),
        (None, Some(text)) => Ok(Source::Inline(text)),
        (Some(_), Some(_)) => Err(format!("give {side} or {side}_text, not both")),
        (None, None) => Err(format!("missing {side} (or {side}_text)")),
    }
}

/// Builds one [`Request`] from a params object (used both for
/// `verify-pair` and for each element of `verify-batch`'s `pairs`).
fn parse_request_params(params: Option<&Value>) -> Result<Request, String> {
    Ok(Request {
        name: string_field(params, "name")?,
        left: source_field(params, "left")?,
        right: source_field(params, "right")?,
        deadline: seconds_field(params, "deadline_seconds")?,
        node_limit: count_field(params, "node_limit")?,
        width_hint: count_field(params, "qubits")?,
    })
}

/// Builds one [`ChainRequest`] from `verify-chain` params: `steps` is an
/// ordered array of `{pass?, path|text}` snapshots, at least two.
fn parse_chain_params(params: Option<&Value>) -> Result<ChainRequest, String> {
    let steps_value = field(params, "steps")
        .ok_or("missing steps")?
        .as_array()
        .ok_or("steps must be an array")?;
    if steps_value.len() < 2 {
        return Err(format!(
            "steps must list at least 2 circuits, got {}",
            steps_value.len()
        ));
    }
    let steps = steps_value
        .iter()
        .enumerate()
        .map(|(index, step)| {
            if !matches!(step, Value::Object(_)) {
                return Err(format!("steps[{index}] must be an object"));
            }
            let at = |e: String| format!("steps[{index}]: {e}");
            let pass = string_field(Some(step), "pass").map_err(at)?;
            let path = string_field(Some(step), "path").map_err(at)?;
            let text = string_field(Some(step), "text").map_err(at)?;
            let source = match (path, text) {
                (Some(path), None) => Source::Path(PathBuf::from(path)),
                (None, Some(text)) => Source::Inline(text),
                (Some(_), Some(_)) => {
                    return Err(format!("steps[{index}]: give path or text, not both"))
                }
                (None, None) => return Err(format!("steps[{index}]: missing path (or text)")),
            };
            Ok(ChainStep { pass, source })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(ChainRequest {
        name: string_field(params, "name")?,
        steps,
        deadline: seconds_field(params, "deadline_seconds")?,
        node_limit: count_field(params, "node_limit")?,
        width_hint: count_field(params, "qubits")?,
    })
}

// ---------------------------------------------------------------------------
// Response rendering
// ---------------------------------------------------------------------------

fn outcome_value(outcome: &RequestOutcome) -> Value {
    Value::Object(vec![
        ("request".to_string(), Value::Number(outcome.id as f64)),
        (
            "verdict".to_string(),
            Value::String(outcome.report.verdict.to_string()),
        ),
        (
            "considered_equivalent".to_string(),
            Value::Bool(outcome.report.considered_equivalent),
        ),
        ("cancelled".to_string(), Value::Bool(outcome.cancelled)),
        (
            "queue_wait_seconds".to_string(),
            Value::Number(outcome.queue_wait.as_secs_f64()),
        ),
        (
            "service_time_seconds".to_string(),
            Value::Number(outcome.service_time.as_secs_f64()),
        ),
        ("report".to_string(), serde_json::to_value(&outcome.report)),
        ("metrics".to_string(), outcome.metrics.clone()),
    ])
}

fn chain_outcome_value(outcome: &ChainOutcome) -> Value {
    Value::Object(vec![
        ("request".to_string(), Value::Number(outcome.id as f64)),
        (
            "verdict".to_string(),
            Value::String(outcome.report.verdict.to_string()),
        ),
        (
            "considered_equivalent".to_string(),
            Value::Bool(outcome.report.considered_equivalent),
        ),
        (
            "guilty_pass".to_string(),
            outcome
                .report
                .guilty_pass
                .as_ref()
                .map_or(Value::Null, |pass| Value::String(pass.clone())),
        ),
        (
            "steps_verified".to_string(),
            Value::Number(outcome.report.steps_verified as f64),
        ),
        ("cancelled".to_string(), Value::Bool(outcome.cancelled)),
        (
            "queue_wait_seconds".to_string(),
            Value::Number(outcome.queue_wait.as_secs_f64()),
        ),
        (
            "service_time_seconds".to_string(),
            Value::Number(outcome.service_time.as_secs_f64()),
        ),
        ("report".to_string(), serde_json::to_value(&outcome.report)),
        ("metrics".to_string(), outcome.metrics.clone()),
    ])
}

fn stats_value(daemon: &Daemon) -> Value {
    serde_json::to_value(&daemon.service.stats())
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Tracks this connection's outstanding request tokens so a disconnect can
/// cancel them.
type Outstanding = Arc<Mutex<HashMap<u64, dd::CancelToken>>>;

fn submit_and_respond(
    daemon: &Arc<Daemon>,
    writer: &SharedWriter,
    outstanding: &Outstanding,
    rpc_id: Option<Value>,
    requests: Vec<Request>,
    batch: bool,
) {
    let mut handles = Vec::with_capacity(requests.len());
    for request in requests {
        match daemon.service.submit(request) {
            Ok(handle) => handles.push(handle),
            Err(reason) => {
                // Cancel whatever part of the batch was already admitted
                // (dropping the handles does it) and report the rejection.
                let code = wire::reject_code(&reason);
                write_line(
                    writer,
                    &wire::response_error(rpc_id.as_ref(), code, &reason.to_string()),
                );
                return;
            }
        }
    }
    for handle in &handles {
        lock(outstanding).insert(handle.id(), handle.cancel_token().clone());
    }
    *lock(&daemon.pending) += 1;
    let daemon = Arc::clone(daemon);
    let writer = Arc::clone(writer);
    let outstanding = Arc::clone(outstanding);
    // One waiter thread per request line: responses go out in completion
    // order, the reader thread never blocks on a race.
    std::thread::spawn(move || {
        let outcomes: Vec<RequestOutcome> = handles
            .into_iter()
            .map(|handle| {
                let id = handle.id();
                let outcome = handle.wait();
                lock(&outstanding).remove(&id);
                outcome
            })
            .collect();
        let result = if batch {
            Value::Object(vec![
                (
                    "pairs".to_string(),
                    Value::Array(outcomes.iter().map(outcome_value).collect()),
                ),
                (
                    "equivalent".to_string(),
                    Value::Number(
                        outcomes
                            .iter()
                            .filter(|o| o.report.considered_equivalent)
                            .count() as f64,
                    ),
                ),
            ])
        } else {
            outcome_value(&outcomes[0])
        };
        write_line(&writer, &wire::response_ok(rpc_id.as_ref(), result));
        let mut pending = lock(&daemon.pending);
        *pending -= 1;
        if *pending == 0 {
            daemon.pending_done.notify_all();
        }
    });
}

/// [`submit_and_respond`] for one chain: same waiter-thread shape, one
/// chain outcome per response.
fn submit_chain_and_respond(
    daemon: &Arc<Daemon>,
    writer: &SharedWriter,
    outstanding: &Outstanding,
    rpc_id: Option<Value>,
    request: ChainRequest,
) {
    let handle = match daemon.service.submit_chain(request) {
        Ok(handle) => handle,
        Err(reason) => {
            let code = wire::reject_code(&reason);
            write_line(
                writer,
                &wire::response_error(rpc_id.as_ref(), code, &reason.to_string()),
            );
            return;
        }
    };
    lock(outstanding).insert(handle.id(), handle.cancel_token().clone());
    *lock(&daemon.pending) += 1;
    let daemon = Arc::clone(daemon);
    let writer = Arc::clone(writer);
    let outstanding = Arc::clone(outstanding);
    std::thread::spawn(move || {
        let id = handle.id();
        let outcome = handle.wait();
        lock(&outstanding).remove(&id);
        write_line(
            &writer,
            &wire::response_ok(rpc_id.as_ref(), chain_outcome_value(&outcome)),
        );
        let mut pending = lock(&daemon.pending);
        *pending -= 1;
        if *pending == 0 {
            daemon.pending_done.notify_all();
        }
    });
}

/// Finishes the daemon: drains (or cancels + drains) the service, waits
/// for in-flight responses to be written, answers the request, exits 0.
fn stop(
    daemon: &Arc<Daemon>,
    writer: &SharedWriter,
    rpc_id: Option<&Value>,
    cancel_first: bool,
) -> ! {
    if daemon.stopping.swap(true, Ordering::SeqCst) {
        // A concurrent drain is already in progress; acknowledge and let it
        // finish the process.
        write_line(
            writer,
            &wire::response_error(rpc_id, code::DRAINING, "drain already in progress"),
        );
        loop {
            std::thread::park();
        }
    }
    if cancel_first {
        daemon.service.shutdown();
    } else {
        daemon.service.drain();
    }
    // Let every waiter thread write its (possibly cancelled) response
    // before the final drain response goes out.
    {
        let mut pending = lock(&daemon.pending);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while *pending > 0 {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                break;
            }
            let (next, _) = daemon
                .pending_done
                .wait_timeout(pending, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            pending = next;
        }
    }
    write_line(
        writer,
        &wire::response_ok(
            rpc_id,
            Value::Object(vec![
                ("stopped".to_string(), Value::Bool(true)),
                ("stats".to_string(), stats_value(daemon)),
            ]),
        ),
    );
    obs::trace::flush();
    if let Some(path) = &daemon.socket_path {
        let _ = std::fs::remove_file(path);
    }
    std::process::exit(0);
}

fn dispatch(
    daemon: &Arc<Daemon>,
    writer: &SharedWriter,
    outstanding: &Outstanding,
    request: RpcRequest,
) {
    let RpcRequest { id, method, params } = request;
    match method.as_str() {
        "verify-pair" => match parse_request_params(params.as_ref()) {
            Ok(req) => submit_and_respond(daemon, writer, outstanding, id, vec![req], false),
            Err(message) => {
                write_line(
                    writer,
                    &wire::response_error(id.as_ref(), code::INVALID_PARAMS, &message),
                );
            }
        },
        "verify-chain" => match parse_chain_params(params.as_ref()) {
            Ok(req) => submit_chain_and_respond(daemon, writer, outstanding, id, req),
            Err(message) => {
                write_line(
                    writer,
                    &wire::response_error(id.as_ref(), code::INVALID_PARAMS, &message),
                );
            }
        },
        "verify-batch" => {
            let parsed = (|| -> Result<Vec<Request>, String> {
                let pairs = field(params.as_ref(), "pairs")
                    .ok_or("missing pairs")?
                    .as_array()
                    .ok_or("pairs must be an array")?;
                if pairs.is_empty() {
                    return Err("pairs must not be empty".to_string());
                }
                let deadline = seconds_field(params.as_ref(), "deadline_seconds")?;
                let node_limit = count_field(params.as_ref(), "node_limit")?;
                pairs
                    .iter()
                    .enumerate()
                    .map(|(index, pair)| {
                        if !matches!(pair, Value::Object(_)) {
                            return Err(format!("pairs[{index}] must be an object"));
                        }
                        let mut request = parse_request_params(Some(pair))
                            .map_err(|e| format!("pairs[{index}]: {e}"))?;
                        // Batch-level bounds apply where the pair sets none.
                        request.deadline = request.deadline.or(deadline);
                        request.node_limit = request.node_limit.or(node_limit);
                        Ok(request)
                    })
                    .collect()
            })();
            match parsed {
                Ok(requests) => submit_and_respond(daemon, writer, outstanding, id, requests, true),
                Err(message) => {
                    write_line(
                        writer,
                        &wire::response_error(id.as_ref(), code::INVALID_PARAMS, &message),
                    );
                }
            }
        }
        "stats" => {
            write_line(writer, &wire::response_ok(id.as_ref(), stats_value(daemon)));
        }
        "drain" => stop(daemon, writer, id.as_ref(), false),
        "shutdown" => stop(daemon, writer, id.as_ref(), true),
        other => {
            write_line(
                writer,
                &wire::response_error(
                    id.as_ref(),
                    code::METHOD_NOT_FOUND,
                    &format!("unknown method `{other}`"),
                ),
            );
        }
    }
}

fn serve_connection<R: Read>(
    daemon: &Arc<Daemon>,
    reader: R,
    writer: SharedWriter,
    max_frame: usize,
) {
    let mut reader = BufReader::new(reader);
    let outstanding: Outstanding = Arc::new(Mutex::new(HashMap::new()));
    loop {
        match wire::read_frame(&mut reader, max_frame) {
            Ok(Frame::Eof) | Err(_) => break,
            Ok(Frame::Oversized { discarded }) => {
                write_line(
                    &writer,
                    &wire::response_error(
                        None,
                        code::OVERSIZED_FRAME,
                        &format!("request line exceeded {max_frame} bytes ({discarded} discarded)"),
                    ),
                );
            }
            Ok(Frame::Line(line)) => {
                if line.iter().all(u8::is_ascii_whitespace) {
                    continue;
                }
                match wire::parse_request(&line) {
                    Ok(request) => dispatch(daemon, &writer, &outstanding, request),
                    Err(error) => write_line(&writer, &wire::response_request_error(&error)),
                }
            }
        }
    }
    // Disconnect: whatever this client still has in flight dies with it.
    for (_, token) in lock(&outstanding).drain() {
        token.cancel();
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };

    let defaults = ServiceConfig::default();
    let mut config = ServiceConfig {
        workers: args.workers.map_or(defaults.workers, |w| w.max(1)),
        ..defaults
    };
    if let Some(max_queue) = args.max_queue {
        config.max_queue = max_queue;
    }
    config.portfolio.deadline = args.deadline.map(Duration::from_secs_f64);
    config.portfolio.node_limit = args.node_limit;
    config.portfolio.shared_package = !args.private_packages;
    config.warm_stores = args.warm_stores;
    if let Some(shelves) = args.store_shelves {
        config.store_shelves = shelves;
    }
    // Like `verify`: a stats file implies the predicted policy unless an
    // explicit --policy overrides; prediction over an empty store degrades
    // to racing inside the scheduler.
    config.portfolio.policy = match (args.policy.as_deref(), &args.stats_file) {
        (Some("race"), _) => SchedulePolicy::Race,
        (Some("predicted"), _) | (None, Some(_)) => SchedulePolicy::predicted(),
        (None, None) => SchedulePolicy::Race,
        (Some(other), _) => unreachable!("validated by parse_args: {other}"),
    };
    config.stats = args.stats_file;

    if let Some(path) = &args.trace_file {
        if let Err(error) = obs::trace::install_file(path) {
            eprintln!("error: cannot open trace file {}: {error}", path.display());
            std::process::exit(2);
        }
    }

    let daemon = Arc::new(Daemon {
        service: VerificationService::start(config),
        pending: Mutex::new(0),
        pending_done: Condvar::new(),
        stopping: AtomicBool::new(false),
        socket_path: args.socket.clone(),
    });

    match &args.socket {
        None => {
            let writer: SharedWriter = Arc::new(Mutex::new(Box::new(std::io::stdout())));
            serve_connection(
                &daemon,
                std::io::stdin(),
                Arc::clone(&writer),
                args.max_frame,
            );
            // stdin closed: the single client left. Finish the backlog it
            // did not cancel, save stats, exit.
            daemon.stopping.store(true, Ordering::SeqCst);
            daemon.service.drain();
            obs::trace::flush();
            std::process::exit(0);
        }
        Some(path) => {
            // A stale socket file from a dead daemon blocks bind; a *live*
            // daemon's socket should not be stolen silently.
            if path.exists() {
                if std::os::unix::net::UnixStream::connect(path).is_ok() {
                    eprintln!("error: {} is in use by a running daemon", path.display());
                    std::process::exit(2);
                }
                let _ = std::fs::remove_file(path);
            }
            let listener = match std::os::unix::net::UnixListener::bind(path) {
                Ok(listener) => listener,
                Err(error) => {
                    eprintln!("error: cannot bind {}: {error}", path.display());
                    std::process::exit(2);
                }
            };
            for connection in listener.incoming() {
                let Ok(stream) = connection else { continue };
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                let daemon = Arc::clone(&daemon);
                let max_frame = args.max_frame;
                std::thread::spawn(move || {
                    let writer: SharedWriter = Arc::new(Mutex::new(Box::new(write_half)));
                    serve_connection(&daemon, stream, writer, max_frame);
                });
            }
        }
    }
}
