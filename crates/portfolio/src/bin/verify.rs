//! Batch portfolio-verification driver.
//!
//! ```text
//! verify --manifest pairs.json [options]
//! verify --dir path/to/qasm/   [options]
//! verify --chain a.qasm,b.qasm,c.qasm [options]
//!
//! `--chain` verifies one compilation pipeline pass-by-pass (adjacent
//! snapshots, in order, comma-separated) on one warm store; repeat the
//! flag for several pipelines. A refutation names the guilty pass
//! (`chain:step2` style). Manifests mix freely: a `chains` array next to
//! `pairs` does the same thing (see `portfolio::batch`).
//!
//! options:
//!   --out FILE        write the JSON report to FILE (default: stdout)
//!   --workers N       pair-level worker threads (default: cores / 4)
//!   --node-limit N    per-scheme decision-diagram node budget
//!   --leaf-limit N    extraction leaf budget for the fixed-input scheme
//!   --deadline SECS   wall-clock deadline per pair (fractional seconds ok)
//!   --stats-file FILE persistent scheme telemetry: loaded before the batch,
//!                     folded with this batch's telemetry, saved back after.
//!                     Switches the scheduler to the predicted policy (top-2
//!                     launch, escalate on stall) unless --policy race is
//!                     given; with an empty/missing file the scheduler
//!                     degrades to racing everything.
//!   --policy P        race | predicted — force the launch policy
//!                     (predicted without --stats-file plans from an empty
//!                     store, i.e. races)
//!   --store-shelves N most register widths the warm-store pool retains
//!                     (LRU-evicted beyond that; default 4)
//!   --private-packages race schemes on private DD packages, never a shared
//!                     store (for sharing/contention comparisons). Without
//!                     it the *scheduler* decides per pair: the race policy
//!                     always shares, the predicted policy shares only when
//!                     the bucket's recorded sharing telemetry says it pays
//!                     (the decision+reason land in each pair's metrics
//!                     block and the race.plan trace event)
//!   --dense-cutoff N  decision-diagram level at or below which the mat·vec
//!                     apply and vector-add recursions drop to the dense SoA
//!                     kernels — matrix·matrix recursions always stay
//!                     node-at-a-time (0 disables the dense path; default 3,
//!                     clamped to 6)
//!   --warm-stores     keep one shared store per register width alive
//!                     across pairs (default; a barrier GC between pairs
//!                     bounds the carry-over)
//!   --cold-stores     create a fresh store per pair instead
//!   --trace-file FILE write a structured JSONL trace of the run: pair and
//!                     race spans, scheme launches, verdicts, cancellations,
//!                     escalations, warm-store and GC-barrier activity, all
//!                     tagged with pair/scheme/span correlation IDs. Off by
//!                     default and free when off.
//!   --metrics         print the folded hot-path metric counters (cache hit
//!                     rates, GC and contention totals) to stderr after the
//!                     batch (implied by --trace-file)
//!   --compact         emit compact instead of pretty-printed JSON
//! ```
//!
//! The exit code is 0 when every pair verified as equivalent, 1 when any
//! pair was non-equivalent or failed, and 2 on usage errors.

use portfolio::batch::{load_manifest, manifest_from_dir, run_batch, BatchOptions, Manifest};
use portfolio::chain::{ChainSpec, ChainStepSpec};
use portfolio::SchedulePolicy;
use std::path::PathBuf;

struct Args {
    manifest: Option<PathBuf>,
    dir: Option<PathBuf>,
    chains: Vec<String>,
    out: Option<PathBuf>,
    workers: Option<usize>,
    node_limit: Option<usize>,
    leaf_limit: Option<usize>,
    deadline: Option<f64>,
    stats_file: Option<PathBuf>,
    policy: Option<String>,
    store_shelves: Option<usize>,
    private_packages: bool,
    warm_stores: bool,
    dense_cutoff: Option<u32>,
    trace_file: Option<PathBuf>,
    metrics: bool,
    compact: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        manifest: None,
        dir: None,
        chains: Vec::new(),
        out: None,
        workers: None,
        node_limit: None,
        leaf_limit: None,
        deadline: None,
        stats_file: None,
        policy: None,
        store_shelves: None,
        private_packages: false,
        warm_stores: true,
        dense_cutoff: None,
        trace_file: None,
        metrics: false,
        compact: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--manifest" => args.manifest = Some(PathBuf::from(value("--manifest")?)),
            "--dir" => args.dir = Some(PathBuf::from(value("--dir")?)),
            "--chain" => args.chains.push(value("--chain")?),
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--workers" => {
                args.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|_| "invalid --workers")?,
                )
            }
            "--node-limit" => {
                args.node_limit = Some(
                    value("--node-limit")?
                        .parse()
                        .map_err(|_| "invalid --node-limit")?,
                )
            }
            "--leaf-limit" => {
                args.leaf_limit = Some(
                    value("--leaf-limit")?
                        .parse()
                        .map_err(|_| "invalid --leaf-limit")?,
                )
            }
            "--deadline" => {
                let seconds: f64 = value("--deadline")?
                    .parse()
                    .map_err(|_| "invalid --deadline")?;
                if !seconds.is_finite() || seconds <= 0.0 {
                    return Err("--deadline must be a positive number of seconds".to_string());
                }
                args.deadline = Some(seconds);
            }
            "--stats-file" => args.stats_file = Some(PathBuf::from(value("--stats-file")?)),
            "--policy" => {
                let policy = value("--policy")?;
                if policy != "race" && policy != "predicted" {
                    return Err(format!(
                        "--policy must be `race` or `predicted`, got `{policy}`"
                    ));
                }
                args.policy = Some(policy);
            }
            "--store-shelves" => {
                let shelves: usize = value("--store-shelves")?
                    .parse()
                    .map_err(|_| "invalid --store-shelves")?;
                if shelves == 0 {
                    return Err("--store-shelves must be at least 1".to_string());
                }
                args.store_shelves = Some(shelves);
            }
            "--private-packages" => args.private_packages = true,
            "--dense-cutoff" => {
                let cutoff: u32 = value("--dense-cutoff")?
                    .parse()
                    .map_err(|_| "--dense-cutoff must be a non-negative integer".to_string())?;
                args.dense_cutoff = Some(cutoff);
            }
            "--warm-stores" => args.warm_stores = true,
            "--cold-stores" => args.warm_stores = false,
            "--trace-file" => args.trace_file = Some(PathBuf::from(value("--trace-file")?)),
            "--metrics" => args.metrics = true,
            "--compact" => args.compact = true,
            "--help" | "-h" => {
                println!(
                    "usage: verify (--manifest FILE | --dir DIR | --chain A,B,C...) \
                     [--out FILE] [--workers N] \
                     [--node-limit N] [--leaf-limit N] [--deadline SECS] \
                     [--stats-file FILE] [--policy race|predicted] [--store-shelves N] \
                     [--private-packages] [--dense-cutoff N] \
                     [--warm-stores | --cold-stores] \
                     [--trace-file FILE] [--metrics] [--compact]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let sources = usize::from(args.manifest.is_some())
        + usize::from(args.dir.is_some())
        + usize::from(!args.chains.is_empty());
    if sources != 1 {
        return Err("exactly one of --manifest, --dir or --chain is required".to_string());
    }
    Ok(args)
}

/// Builds a chains-only manifest from repeated `--chain A,B,C` flags.
fn manifest_from_chains(chains: &[String]) -> Result<Manifest, String> {
    let specs = chains
        .iter()
        .map(|list| {
            let steps: Vec<ChainStepSpec> = list
                .split(',')
                .filter(|path| !path.is_empty())
                .map(|path| ChainStepSpec {
                    pass: None,
                    path: path.to_string(),
                })
                .collect();
            if steps.len() < 2 {
                return Err(format!(
                    "--chain needs at least 2 comma-separated circuits, got `{list}`"
                ));
            }
            Ok(ChainSpec {
                name: None,
                qubits: None,
                steps,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(Manifest {
        pairs: Vec::new(),
        chains: Some(specs),
    })
}

/// Prints the run's folded hot-path counters to stderr: one line per
/// counter that moved (zeros are skipped), then the histograms as
/// count / mean / p99 summaries.
fn print_metrics(before: &obs::metrics::Snapshot) {
    let delta = obs::metrics::fold().delta_since(before);
    eprintln!("hot-path metrics:");
    for (def, value) in delta.non_zero() {
        match def.unit {
            obs::metrics::Unit::Nanos => {
                eprintln!("  {:<32} {:.4}s", def.name, value as f64 / 1e9)
            }
            obs::metrics::Unit::Count => eprintln!("  {:<32} {value}", def.name),
        }
    }
    for (def, hist) in delta.non_zero_hists() {
        eprintln!(
            "  {:<32} n={} mean={:.6}s p99<={:.6}s",
            def.name,
            hist.count,
            hist.mean_ns() as f64 / 1e9,
            hist.quantile_ns(0.99) as f64 / 1e9
        );
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };

    let manifest: Manifest = match (&args.manifest, &args.dir) {
        (Some(path), None) => load_manifest(path).map_err(|e| e.to_string()),
        (None, Some(dir)) => manifest_from_dir(dir).map_err(|e| e.to_string()),
        (None, None) => manifest_from_chains(&args.chains),
        _ => unreachable!("validated by parse_args"),
    }
    .unwrap_or_else(|error| {
        eprintln!("error: {error}");
        std::process::exit(2);
    });

    let mut options = BatchOptions::default();
    if let Some(workers) = args.workers {
        options.workers = workers.max(1);
    }
    options.portfolio.node_limit = args.node_limit;
    options.portfolio.leaf_limit = args.leaf_limit;
    options.portfolio.deadline = args.deadline.map(std::time::Duration::from_secs_f64);
    options.portfolio.shared_package = !args.private_packages;
    if let Some(cutoff) = args.dense_cutoff {
        options.portfolio.configuration.memory.dense_cutoff = cutoff;
        options.portfolio.extraction.memory.dense_cutoff = cutoff;
    }
    options.warm_stores = args.warm_stores;
    // A stats file implies the predicted policy (that is its point); an
    // explicit --policy always wins. Prediction with a cold store degrades
    // to racing inside the scheduler, so the combination is always safe.
    options.portfolio.policy = match (args.policy.as_deref(), &args.stats_file) {
        (Some("race"), _) => SchedulePolicy::Race,
        (Some("predicted"), _) | (None, Some(_)) => SchedulePolicy::predicted(),
        (None, None) => SchedulePolicy::Race,
        (Some(other), _) => unreachable!("validated by parse_args: {other}"),
    };
    options.stats = args.stats_file;
    if let Some(shelves) = args.store_shelves {
        options.store_shelves = shelves;
    }

    if let Some(path) = &args.trace_file {
        if let Err(error) = obs::trace::install_file(path) {
            eprintln!("error: cannot open trace file {}: {error}", path.display());
            std::process::exit(2);
        }
    }
    let metrics_before = obs::metrics::fold();

    let report = run_batch(&manifest, &options);

    if args.trace_file.is_some() {
        obs::trace::flush();
        obs::trace::uninstall();
    }
    for pair in &report.pairs {
        let status = match &pair.error {
            Some(error) => format!("ERROR ({error})"),
            None => format!(
                "{} via {} in {:.4}s{}",
                pair.verdict,
                pair.winner.map(|s| s.name()).unwrap_or("-"),
                pair.time_to_verdict.as_secs_f64(),
                match (pair.predicted, pair.escalation) {
                    (true, Some(reason)) => format!(" [predicted, escalated: {reason}]"),
                    (true, None) => " [predicted]".to_string(),
                    _ => String::new(),
                }
            ),
        };
        eprintln!("{:<24} {status}", pair.name);
    }
    for chain in &report.chains {
        let status = match (&chain.error, &chain.guilty_pass) {
            (Some(error), _) => format!("ERROR ({error})"),
            (None, Some(pass)) => format!(
                "NotEquivalent — pass `{pass}` broke the pipeline ({}/{} steps verified)",
                chain.steps_verified, chain.steps_total
            ),
            (None, None) => format!(
                "{} over {} steps in {:.4}s ({} chain carry-over hits, {} shelf hits)",
                chain.verdict,
                chain.steps_verified,
                chain.total_time.as_secs_f64(),
                chain.chain_hits,
                chain.shelf_hits,
            ),
        };
        eprintln!("{:<24} {status}", chain.name);
    }
    eprintln!(
        "{} pairs, {} equivalent, {} failed; {} chains, {} equivalent, {} refuted; \
         {:.2} pairs/sec, {:.4}s total",
        report.pairs_total,
        report.pairs_equivalent,
        report.pairs_failed,
        report.chains_total,
        report.chains_equivalent,
        report.chains_refuted,
        report.pairs_per_sec,
        report.total_time.as_secs_f64()
    );
    if args.metrics || args.trace_file.is_some() {
        print_metrics(&metrics_before);
    }

    let json = if args.compact {
        serde_json::to_string(&report)
    } else {
        serde_json::to_string_pretty(&report)
    }
    .unwrap_or_else(|error| {
        eprintln!("error: cannot serialize report: {error}");
        std::process::exit(2);
    });

    match &args.out {
        Some(path) => {
            if let Err(error) = std::fs::write(path, json + "\n") {
                eprintln!("error: cannot write {}: {error}", path.display());
                std::process::exit(2);
            }
        }
        None => println!("{json}"),
    }

    let all_equivalent = report.pairs_failed == 0
        && report.pairs_equivalent == report.pairs_total
        && report.chains_equivalent == report.chains_total;
    std::process::exit(i32::from(!all_equivalent));
}
