//! Persistent per-(scheme, feature-bucket) verification telemetry.
//!
//! Every portfolio run already produces rich per-scheme telemetry
//! ([`SchemeReport`]); this module is where it accumulates. Reports fold
//! into running [`SchemeStats`] keyed by the scheme's name and a coarse
//! [`FeatureBucket`] of the circuit pair, inside a [`TelemetryStore`] that
//! serializes to JSON and is loaded/merged/saved across batch runs
//! (`verify --stats-file`). The [scheduler](crate::scheduler) reads the
//! store back to predict the winning scheme for the next pair of the same
//! bucket instead of racing everything.
//!
//! Buckets are deliberately coarse — dynamic/static, a log₂ qubit-width
//! band, and whether the two circuits draw on different gate sets — so a
//! single batch pass over a workload family is enough to warm every bucket
//! the family touches.

use crate::engine::SchemeReport;
use crate::scheme::Scheme;
use circuit::{OpKind, QuantumCircuit};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Features of a circuit pair the scheduler scores schemes against.
///
/// Extraction is cheap (one pass over each circuit's operations) and
/// deterministic; the features deliberately ignore anything the verdict
/// could depend on — they describe the *shape* of the instance, not its
/// equivalence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PairFeatures {
    /// Register width: the larger qubit count of the two circuits.
    pub qubits: usize,
    /// Gate count (barriers excluded): the larger of the two circuits.
    pub gates: usize,
    /// Non-unitary primitives (measurements, resets, classically-controlled
    /// gates) summed over both circuits.
    pub non_unitary: usize,
    /// Size of the symmetric difference between the two circuits' gate
    /// sets (by mnemonic): `0` when both circuits draw on the same gates, a
    /// positive count when one side uses gates the other never does — the
    /// typical signature of a compiled-vs-reference or static-vs-dynamic
    /// pair.
    pub gate_set_diff: usize,
    /// Absolute difference of the two circuits' gate counts. Together with
    /// [`gate_set_diff`](Self::gate_set_diff) this is the near-identity
    /// signal: adjacent compilation-chain snapshots differ by one pass's
    /// worth of rewriting, so their miter stays close to the identity.
    pub gate_count_diff: usize,
    /// Whether either circuit contains dynamic primitives.
    pub dynamic: bool,
}

impl PairFeatures {
    /// Extracts the features of a circuit pair.
    pub fn extract(left: &QuantumCircuit, right: &QuantumCircuit) -> Self {
        let gate_set = |circuit: &QuantumCircuit| -> BTreeSet<&'static str> {
            circuit
                .ops()
                .iter()
                .filter_map(|op| match &op.kind {
                    OpKind::Unitary { gate, .. } => Some(gate.name()),
                    _ => None,
                })
                .collect()
        };
        let left_counts = left.counts();
        let right_counts = right.counts();
        let left_set = gate_set(left);
        let right_set = gate_set(right);
        PairFeatures {
            qubits: left.num_qubits().max(right.num_qubits()),
            gates: left_counts.total_gates().max(right_counts.total_gates()),
            non_unitary: left_counts.dynamic() + right_counts.dynamic(),
            gate_set_diff: left_set.symmetric_difference(&right_set).count(),
            gate_count_diff: left_counts
                .total_gates()
                .abs_diff(right_counts.total_gates()),
            dynamic: left.is_dynamic() || right.is_dynamic(),
        }
    }

    /// Whether the pair looks like two snapshots of the same circuit — same
    /// gate set (`gate_set_diff == 0`) and gate counts within an eighth of
    /// each other — so the miter stays close to the identity. This is the
    /// signature of adjacent compilation-chain steps and of a structured
    /// (peephole-optimized vs original) pair, and it is where terminal
    /// dense expansion historically loses: the diagrams never grow dense
    /// blocks worth vectorizing.
    pub fn near_identity(&self) -> bool {
        self.gate_set_diff == 0 && self.gate_count_diff.saturating_mul(8) <= self.gates
    }

    /// The coarse bucket these features fall into.
    pub fn bucket(&self) -> FeatureBucket {
        FeatureBucket {
            // log₂ width band: 0 for 0–1 qubits, 3 for 5–8, 4 for 9–16, …
            width_band: self
                .qubits
                .max(1)
                .next_power_of_two()
                .trailing_zeros()
                .min(u8::MAX as u32) as u8,
            dynamic: self.dynamic,
            mixed_gate_set: self.gate_set_diff > 0,
            near_identity: self.near_identity(),
        }
    }
}

/// Coarse feature bucket used as one half of a telemetry key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FeatureBucket {
    /// `ceil(log2(qubits))`: pairs within a factor-two width band share a
    /// bucket.
    pub width_band: u8,
    /// Whether the pair contains dynamic primitives (dynamic pairs race a
    /// different scheme set entirely).
    pub dynamic: bool,
    /// Whether the two circuits draw on different gate sets.
    pub mixed_gate_set: bool,
    /// Whether the pair is [near-identity](PairFeatures::near_identity) —
    /// structured miters bucket apart because both the scheme ranking and
    /// the dense-kernel economics differ there. Stats recorded before this
    /// dimension existed live under the old (suffix-less) keys and simply
    /// go cold: predicted plans over a cold bucket degrade to race plans.
    pub near_identity: bool,
}

impl std::fmt::Display for FeatureBucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}-w{}{}{}",
            if self.dynamic { "dynamic" } else { "static" },
            self.width_band,
            if self.mixed_gate_set { "-mixed" } else { "" },
            if self.near_identity { "-near" } else { "" },
        )
    }
}

/// Running statistics of one scheme within one feature bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SchemeStats {
    /// Times the scheme was launched.
    pub launches: u64,
    /// Times it produced the race's winning (first conclusive) verdict.
    pub wins: u64,
    /// Times it finished with a conclusive verdict (winning or not).
    pub conclusive: u64,
    /// Times it was cancelled because a competitor won first.
    pub cancelled: u64,
    /// Times it failed (budget exhausted, unsupported circuit, panic).
    pub errors: u64,
    /// Wall-clock seconds summed over every launch.
    pub total_secs: f64,
    /// Wall-clock seconds summed over the winning launches only.
    pub win_secs: f64,
    /// Wall-clock seconds summed over the *cancelled* launches only. Kept
    /// separately so scoring can ignore them: a cancelled scheme unwinds in
    /// microseconds, and folding that into a mean would make perennial
    /// losers look fast.
    pub cancelled_secs: f64,
    /// Largest peak decision-diagram size any launch reported.
    pub peak_nodes_max: u64,
    /// Peak sizes summed over the launches that reported one.
    pub peak_nodes_sum: u64,
    /// Number of launches that reported a peak size.
    pub peak_samples: u64,
}

impl SchemeStats {
    /// Folds one scheme report into the stats. `won` marks the race winner.
    pub fn record(&mut self, report: &SchemeReport, won: bool) {
        self.launches += 1;
        self.wins += u64::from(won);
        self.conclusive += u64::from(report.conclusive);
        self.cancelled += u64::from(report.cancelled);
        self.errors += u64::from(report.error.is_some());
        let secs = report.duration.as_secs_f64();
        self.total_secs += secs;
        if won {
            self.win_secs += secs;
        }
        if report.cancelled {
            self.cancelled_secs += secs;
        }
        if let Some(peak) = report.peak_nodes {
            let peak = peak as u64;
            self.peak_nodes_max = self.peak_nodes_max.max(peak);
            self.peak_nodes_sum += peak;
            self.peak_samples += 1;
        }
    }

    /// Merges another stats record into this one (used when combining a
    /// fresh batch run with a stats file from earlier runs).
    pub fn merge(&mut self, other: &SchemeStats) {
        self.launches += other.launches;
        self.wins += other.wins;
        self.conclusive += other.conclusive;
        self.cancelled += other.cancelled;
        self.errors += other.errors;
        self.total_secs += other.total_secs;
        self.win_secs += other.win_secs;
        self.cancelled_secs += other.cancelled_secs;
        self.peak_nodes_max = self.peak_nodes_max.max(other.peak_nodes_max);
        self.peak_nodes_sum += other.peak_nodes_sum;
        self.peak_samples += other.peak_samples;
    }

    /// Mean wall-clock seconds of a winning launch, falling back to the
    /// mean over the launches that actually ran to an end (cancelled
    /// launches are excluded — a loser unwinding in microseconds says
    /// nothing about how fast the scheme would *finish*), and `1.0` with no
    /// usable data at all.
    pub fn mean_secs(&self) -> f64 {
        if self.wins > 0 {
            return self.win_secs / self.wins as f64;
        }
        let completed = self.launches.saturating_sub(self.cancelled);
        if completed > 0 {
            (self.total_secs - self.cancelled_secs).max(0.0) / completed as f64
        } else {
            1.0
        }
    }

    /// Predicted-winner score: a Laplace-smoothed win rate divided by the
    /// mean time to win. Higher is better; deterministic for given stats.
    pub fn score(&self) -> f64 {
        let win_rate = (self.wins as f64 + 0.5) / (self.launches as f64 + 1.0);
        win_rate / (self.mean_secs() + 1e-3)
    }
}

/// Running statistics of how well *shared-store racing* paid off within one
/// feature bucket, accumulated across races (see
/// [`TelemetryStore::record_sharing`]).
///
/// The bucket already captures what drives the sharing economics: the width
/// band (wider miters build more reusable structure) and the scheme mix
/// (dynamic pairs race a different scheme set entirely). The stats add the
/// two measured signals — the race's cross-thread hit rate and the time its
/// schemes spent blocked on store locks — which the scheduler reads back to
/// decide whether the *next* pair of the bucket should race on a shared
/// store at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SharingStats {
    /// Shared-store races recorded into this bucket.
    pub races: u64,
    /// Sum of per-race `cross_thread_hit_rate` values (each in `[0, 1]`).
    pub hit_rate_sum: f64,
    /// Sum of per-race `shard_contention_seconds` (cross-thread sums, so a
    /// single addend can exceed its race's wall-clock time).
    pub contention_secs_sum: f64,
    /// Sum of per-race wall-clock seconds, the denominator that makes
    /// contention comparable across machines and instance sizes.
    pub race_secs_sum: f64,
}

/// Mean cross-thread hit rate below which sharing historically has not paid:
/// the store-lock traffic buys almost no reuse. Derived from the checked-in
/// `BENCH_shared.json` spread — low-width QPE buckets sit near 0.07, the
/// high-reuse ones above 0.4 — so the threshold splits the two populations
/// with a wide margin on both sides.
pub const SHARING_HIT_RATE_THRESHOLD: f64 = 0.25;

/// Contention veto: even a good hit rate cannot pay for a store whose locks
/// eat more than this fraction of the races' wall-clock time.
pub const SHARING_CONTENTION_CEILING: f64 = 0.25;

impl SharingStats {
    /// Folds one shared race's signals into the stats.
    pub fn record(&mut self, hit_rate: f64, contention_secs: f64, race_secs: f64) {
        self.races += 1;
        self.hit_rate_sum += hit_rate;
        self.contention_secs_sum += contention_secs;
        self.race_secs_sum += race_secs;
    }

    /// Merges another record into this one.
    pub fn merge(&mut self, other: &SharingStats) {
        self.races += other.races;
        self.hit_rate_sum += other.hit_rate_sum;
        self.contention_secs_sum += other.contention_secs_sum;
        self.race_secs_sum += other.race_secs_sum;
    }

    /// Mean per-race cross-thread hit rate (`0.0` with no recorded races).
    pub fn mean_hit_rate(&self) -> f64 {
        if self.races == 0 {
            0.0
        } else {
            self.hit_rate_sum / self.races as f64
        }
    }

    /// Recorded lock-contention time as a fraction of recorded race time
    /// (`0.0` with no recorded time; can exceed `1.0` because contention
    /// sums across threads).
    pub fn contention_fraction(&self) -> f64 {
        if self.race_secs_sum <= 0.0 {
            0.0
        } else {
            self.contention_secs_sum / self.race_secs_sum
        }
    }

    /// The prediction: sharing pays when the recorded hit rate clears
    /// [`SHARING_HIT_RATE_THRESHOLD`] and lock contention stays under
    /// [`SHARING_CONTENTION_CEILING`] of race time. Deterministic for given
    /// stats.
    pub fn favors_sharing(&self) -> bool {
        self.mean_hit_rate() >= SHARING_HIT_RATE_THRESHOLD
            && self.contention_fraction() <= SHARING_CONTENTION_CEILING
    }
}

/// Error raised while loading or saving a [`TelemetryStore`].
#[derive(Debug)]
pub enum TelemetryError {
    /// The stats file could not be read or written.
    Io(std::io::Error),
    /// The stats file was not valid JSON of the expected shape.
    Parse(serde::Error),
}

impl std::fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TelemetryError::Io(e) => write!(f, "stats file i/o error: {e}"),
            TelemetryError::Parse(e) => write!(f, "invalid stats file: {e}"),
        }
    }
}

impl std::error::Error for TelemetryError {}

impl From<std::io::Error> for TelemetryError {
    fn from(e: std::io::Error) -> Self {
        TelemetryError::Io(e)
    }
}

/// Accumulated scheme telemetry across races, keyed by
/// `(scheme name, feature bucket)`.
///
/// The store is plain data — no interior mutability. The batch driver wraps
/// it in a `Mutex` so concurrent pair workers can record into one store; the
/// scheduler only ever reads.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct TelemetryStore {
    /// Races recorded into this store (over its whole on-disk lifetime).
    pub races: u64,
    /// Per-(scheme, bucket) stats. Keys are `"{scheme}@{bucket}"`, e.g.
    /// `"fixed-input@dynamic-w4"`.
    pub schemes: BTreeMap<String, SchemeStats>,
    /// Per-bucket shared-store payoff stats, keyed by the bucket's display
    /// form (e.g. `"static-w4"`). `Option` because stats files written
    /// before this field existed deserialize the missing key as `Null`,
    /// which only `Option` accepts — an old file must keep loading.
    pub sharing: Option<BTreeMap<String, SharingStats>>,
}

impl TelemetryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TelemetryStore::default()
    }

    /// Whether the store holds no recorded launches at all.
    pub fn is_empty(&self) -> bool {
        self.schemes.values().all(|stats| stats.launches == 0)
    }

    /// The store key of a scheme within a bucket.
    pub fn key(scheme: Scheme, bucket: &FeatureBucket) -> String {
        format!("{}@{bucket}", scheme.name())
    }

    /// Folds every report of one race into the store.
    pub fn record_race(
        &mut self,
        features: &PairFeatures,
        reports: &[SchemeReport],
        winner: Option<Scheme>,
    ) {
        let bucket = features.bucket();
        self.races += 1;
        for report in reports {
            self.schemes
                .entry(TelemetryStore::key(report.scheme, &bucket))
                .or_default()
                .record(report, winner == Some(report.scheme));
        }
    }

    /// The recorded stats of a scheme within a bucket, if any.
    pub fn stats(&self, scheme: Scheme, bucket: &FeatureBucket) -> Option<&SchemeStats> {
        self.schemes.get(&TelemetryStore::key(scheme, bucket))
    }

    /// Folds one shared race's sharing signals into the pair's bucket.
    pub fn record_sharing(
        &mut self,
        features: &PairFeatures,
        hit_rate: f64,
        contention_secs: f64,
        race_secs: f64,
    ) {
        self.sharing
            .get_or_insert_with(BTreeMap::new)
            .entry(features.bucket().to_string())
            .or_default()
            .record(hit_rate, contention_secs, race_secs);
    }

    /// The recorded sharing stats of a bucket, if any race was recorded.
    pub fn sharing_stats(&self, bucket: &FeatureBucket) -> Option<&SharingStats> {
        self.sharing
            .as_ref()
            .and_then(|map| map.get(&bucket.to_string()))
            .filter(|stats| stats.races > 0)
    }

    /// Merges another store into this one.
    pub fn merge(&mut self, other: &TelemetryStore) {
        self.races += other.races;
        for (key, stats) in &other.schemes {
            self.schemes.entry(key.clone()).or_default().merge(stats);
        }
        if let Some(sharing) = &other.sharing {
            let own = self.sharing.get_or_insert_with(BTreeMap::new);
            for (key, stats) in sharing {
                own.entry(key.clone()).or_default().merge(stats);
            }
        }
    }

    /// Serializes the store as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("telemetry stats are always serializable")
    }

    /// Parses a store from JSON text.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::Parse`] on malformed input.
    pub fn from_json(text: &str) -> Result<Self, TelemetryError> {
        serde_json::from_str(text).map_err(TelemetryError::Parse)
    }

    /// Loads a store from disk. A *missing* file yields an empty store — the
    /// cold-start case of `verify --stats-file` — while an unreadable or
    /// malformed file is an error (silently discarding recorded history
    /// would make the scheduler regress to racing without explanation).
    ///
    /// # Errors
    ///
    /// [`TelemetryError::Io`] / [`TelemetryError::Parse`].
    pub fn load(path: &Path) -> Result<Self, TelemetryError> {
        match std::fs::read_to_string(path) {
            Ok(text) => TelemetryStore::from_json(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(TelemetryStore::new()),
            Err(e) => Err(TelemetryError::Io(e)),
        }
    }

    /// Saves the store to disk (overwriting) — crash-safely: the JSON is
    /// written to a temporary file in the *same directory* and renamed over
    /// the target, so a process killed or OOM'd mid-save can never leave a
    /// truncated or corrupt stats file where [`load`](Self::load) would find
    /// it. The worst outcome of an ill-timed kill is a stale orphaned
    /// `.<name>.tmp-<pid>` file (overwritten by the next save from the same
    /// pid) and the *previous* complete stats surviving; this guards against
    /// partial writes, not against power loss (no fsync).
    ///
    /// # Errors
    ///
    /// [`TelemetryError::Io`] when the temporary file cannot be written or
    /// renamed into place (the temporary file is cleaned up on failure).
    pub fn save(&self, path: &Path) -> Result<(), TelemetryError> {
        let file_name = path
            .file_name()
            .ok_or_else(|| {
                TelemetryError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("stats path {} has no file name", path.display()),
                ))
            })?
            .to_string_lossy()
            .into_owned();
        let dir = match path.parent() {
            Some(parent) if !parent.as_os_str().is_empty() => parent,
            _ => Path::new("."),
        };
        let tmp = dir.join(format!(".{file_name}.tmp-{}", std::process::id()));
        std::fs::write(&tmp, self.to_json() + "\n").map_err(TelemetryError::Io)?;
        std::fs::rename(&tmp, path).map_err(|error| {
            let _ = std::fs::remove_file(&tmp);
            TelemetryError::Io(error)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_band_by_width_and_kind() {
        let features = |qubits, dynamic| PairFeatures {
            qubits,
            gates: 10,
            non_unitary: 0,
            gate_set_diff: 0,
            gate_count_diff: 10,
            dynamic,
        };
        assert_eq!(features(6, false).bucket(), features(8, false).bucket());
        assert_ne!(features(8, false).bucket(), features(9, false).bucket());
        assert_ne!(features(8, false).bucket(), features(8, true).bucket());
        assert_eq!(features(12, true).bucket().to_string(), "dynamic-w4");
    }

    #[test]
    fn near_identity_pairs_bucket_apart() {
        // Same gate set, nearly the same gate count: the chain-step shape.
        let near = PairFeatures {
            qubits: 12,
            gates: 100,
            non_unitary: 0,
            gate_set_diff: 0,
            gate_count_diff: 4,
            dynamic: false,
        };
        assert!(near.near_identity());
        assert_eq!(near.bucket().to_string(), "static-w4-near");

        // A different gate set is never near-identity, however small the
        // count difference — a basis rewrite rewrites everything.
        let rebased = PairFeatures {
            gate_set_diff: 3,
            ..near
        };
        assert!(!rebased.near_identity());
        assert_ne!(near.bucket(), rebased.bucket());

        // Heavy optimization (large count delta) also leaves the regime.
        let shrunk = PairFeatures {
            gate_count_diff: 50,
            ..near
        };
        assert!(!shrunk.near_identity());
        assert_eq!(shrunk.bucket().to_string(), "static-w4");
    }

    #[test]
    fn score_does_not_reward_fast_cancellations() {
        // A consistent 50ms winner must outrank a scheme that never finishes
        // — its launches are all cancelled after ~0.2ms, and that unwind
        // speed says nothing about how fast it could win.
        let mut winner = SchemeStats::default();
        let mut loser = SchemeStats::default();
        for _ in 0..10 {
            winner.launches += 1;
            winner.wins += 1;
            winner.win_secs += 0.05;
            winner.total_secs += 0.05;
            loser.launches += 1;
            loser.cancelled += 1;
            loser.total_secs += 0.0002;
            loser.cancelled_secs += 0.0002;
        }
        assert!(
            winner.score() > loser.score(),
            "winner {} vs cancelled loser {}",
            winner.score(),
            loser.score()
        );
    }

    #[test]
    fn score_prefers_fast_frequent_winners() {
        let mut fast = SchemeStats::default();
        let mut slow = SchemeStats::default();
        for _ in 0..10 {
            fast.launches += 1;
            fast.wins += 1;
            fast.win_secs += 0.01;
            fast.total_secs += 0.01;
            slow.launches += 1;
            slow.total_secs += 0.5;
        }
        assert!(fast.score() > slow.score());
    }

    #[test]
    fn save_is_atomic_against_partial_writes() {
        let dir = std::env::temp_dir().join(format!("telemetry-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("stats.json");

        let mut store = TelemetryStore::new();
        store.races = 7;
        store.save(&path).expect("save");
        let loaded = TelemetryStore::load(&path).expect("load after save");
        assert_eq!(loaded.races, 7);

        // Simulate a daemon killed mid-save: the in-progress temp file holds
        // a truncated prefix of the JSON. `load` must still observe only the
        // last *complete* save — the rename is what publishes a save, so a
        // partial temp file is invisible.
        let tmp = dir.join(format!(".stats.json.tmp-{}", std::process::id()));
        std::fs::write(&tmp, &store.to_json()[..10]).expect("write partial temp file");
        let survived = TelemetryStore::load(&path).expect("load alongside a partial temp file");
        assert_eq!(survived.races, 7, "partial write is never observed");

        // A completed save replaces the target atomically and leaves no
        // temp file behind, even with the stale orphan in the way.
        store.races = 11;
        store.save(&path).expect("second save");
        assert_eq!(TelemetryStore::load(&path).expect("reload").races, 11);
        assert!(!tmp.exists(), "save cleans up (reuses) its temp file name");

        // Truncated *target* files still fail loudly — crash safety means
        // that state can no longer arise from `save`, not that corruption
        // gets silently ignored.
        std::fs::write(&path, "{\"races\": 3").expect("corrupt target");
        assert!(TelemetryStore::load(&path).is_err());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_rejects_pathless_targets() {
        let store = TelemetryStore::new();
        assert!(store.save(Path::new("/")).is_err());
    }
}
