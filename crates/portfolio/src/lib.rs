//! # portfolio — scheduled portfolio verification of quantum circuits
//!
//! No single equivalence-checking scheme wins everywhere: functional
//! checking after unitary reconstruction (the paper's Section 4) is
//! unbeatable when the miter stays close to the identity, while fixed-input
//! distribution extraction (Section 5) can be exponentially faster — or
//! exponentially slower — depending on how many measurement outcomes carry
//! probability mass. The crate answers that in three layers:
//!
//! * **[`scheme`] — the registry.** Every scheme is a
//!   [`SchemeDescriptor`](scheme::SchemeDescriptor): a static name, an
//!   applicability predicate over the circuit pair, static cost features
//!   and a runner function. The engine and scheduler are generic over
//!   registry entries; adding a scheme means adding one descriptor.
//! * **[`scheduler`] — the policy.** [`scheduler::plan`] turns a circuit
//!   pair, a [`SchedulePolicy`] and recorded telemetry into a launch plan.
//!   [`SchedulePolicy::Race`] (the default, and the paper's proposal)
//!   launches every applicable scheme at once — first conclusive verdict
//!   wins, a shared [`CancelToken`](dd::CancelToken) unwinds the losers.
//!   [`SchedulePolicy::Predicted`] launches only the top-`k` schemes the
//!   telemetry predicts for the pair's feature bucket and escalates to the
//!   full portfolio on stall or an inconclusive primary wave; with no
//!   recorded stats it degrades to the exact race plan. The tiny-instance
//!   sequential fast path is a plan shape, not an engine special case.
//! * **[`telemetry`] — the memory.** Every [`SchemeReport`] folds into
//!   per-(scheme, feature-bucket) running stats
//!   ([`telemetry::TelemetryStore`]) that serialize to JSON and are
//!   loaded/merged/saved across batch runs (`verify --stats-file`,
//!   [`batch::BatchOptions::stats`]). The same stats drive per-scheme
//!   garbage-collection budget hints
//!   ([`ScheduledScheme::gc_hint`](scheduler::ScheduledScheme::gc_hint)),
//!   threaded through [`qcec::Configuration`] into the decision-diagram
//!   [`MemoryConfig`](dd::MemoryConfig).
//!
//! [`verify_portfolio`] executes a plan for one pair;
//! [`verify_portfolio_recorded`] additionally reads and feeds a telemetry
//! store. The [`service`] module wraps the engine in a long-lived
//! [`VerificationService`](service::VerificationService); the [`batch`]
//! module (whole workloads from a JSON manifest or a directory of QASM
//! pairs, machine-readable JSON report) and the `verifyd` daemon are its
//! two front-ends, and the `verify` binary is the batch CLI.
//!
//! ## Service architecture
//!
//! ```text
//!   verify (one-shot CLI)      verifyd (daemon, stdio / unix socket)
//!            │                              │  wire.rs: line-delimited
//!            ▼                              ▼  JSON-RPC, bounded frames
//!      batch::run_batch ──────────► service::VerificationService
//!                                   │  admission control (workers+queue)
//!                                   │  per-request deadline/node budgets
//!                                   │  CancelToken per request (a dropped
//!                                   │  client kills its in-flight race)
//!                                   ▼
//!                       engine::verify_portfolio_recorded
//!                       warm StorePool · folded TelemetryStore · obs
//! ```
//!
//! The service owns the state that makes a *resident* checker worth
//! running: the warm [`batch::StorePool`] (canonical structure and the
//! gate-DD cache survive across requests and clients), the continuously
//! folded [`TelemetryStore`] driving the predictive scheduler, and the
//! process-global `obs` substrate (each response carries the metrics
//! delta folded around its race). [`service::VerificationService::submit`]
//! applies admission control — beyond `workers + max_queue` admitted
//! requests it rejects with a structured reason instead of queueing
//! unboundedly — and returns a handle whose *drop* cancels the request:
//! the per-request token is chained as the parent of every scheme budget
//! ([`dd::Budget::with_parent_token`]), so a disconnected client's race
//! unwinds cooperatively and its store goes back on the shelf.
//!
//! ## Wire protocol (verifyd)
//!
//! Newline-delimited JSON-RPC over stdio or a Unix socket ([`wire`] has
//! the full grammar): requests are `{"id", "method", "params"}` objects,
//! one per line; responses echo `id` and carry `result` or a structured
//! `error` (`code`, `message`). Methods: `verify-pair`, `verify-batch`,
//! `stats`, `drain`, `shutdown`. Responses arrive in *completion* order;
//! malformed, truncated or oversized lines get error responses (never a
//! panic, never a silent drop — a proptest suite feeds the parser
//! adversarial byte streams), and framing resynchronizes on the next
//! newline.
//!
//! ## Racing on a shared store
//!
//! By default threaded plans race against one concurrent
//! [`dd::SharedStore`] ([`PortfolioConfig::shared_package`]): the racing
//! schemes attach one workspace each and reuse each other's gate diagrams,
//! complex weights and subdiagrams instead of re-interning them privately.
//! Three layers of telemetry surface the sharing:
//!
//! * [`SchemeReport::shared_nodes`] and
//!   [`SchemeReport::cross_thread_hit_rate`] per scheme;
//! * [`PortfolioResult::shared_store`] (a [`SharedStoreReport`]) per run:
//!   `carried_over_nodes`, `allocated_nodes`, `intern_hits`,
//!   `cross_thread_hits`, `warm_hits`, `cross_thread_hit_rate` (always
//!   finite), `gc_runs` / `gc_barrier_runs`, `complex_entries`;
//! * the batch JSON report repeats that block per pair
//!   (`pairs[i].shared_store` plus a `warm_store` flag) and totals
//!   `warm_hits_total` / `gc_barrier_runs_total`.
//!
//! ## Incremental verification of compilation chains
//!
//! A compiler does not produce one circuit, it produces a *pipeline* of
//! them — original, decomposed, basis-rewritten, routed, optimized — and
//! the interesting question is rarely "do the endpoints agree" but "which
//! pass broke it". The [`chain`] module verifies such a pipeline
//! *pass-by-pass*: every adjacent snapshot pair is one ordinary portfolio
//! race, all steps run on **one** store checked out of the pool **once**
//! for the whole chain ([`service::VerificationService::submit_chain`]),
//! and the first refuted step names the guilty pass
//! ([`chain::ChainReport::guilty_pass`]). Two things make this *faster*
//! than it sounds, not slower:
//!
//! * adjacent snapshots are nearly identical, so every miter stays close
//!   to the identity — the regime where DD node sharing and the compute
//!   cache pay off most;
//! * canonical nodes and gate DDs built by step *i* are warm for step
//!   *i + 1*. [`SharedStore::begin_chain`](dd::SharedStore::begin_chain)
//!   brackets the chain so the store can split those carry-over hits
//!   ([`chain::ChainReport::chain_hits`]) from pre-chain shelf reuse
//!   ([`chain::ChainReport::shelf_hits`]) — `warm_hits` alone cannot tell
//!   the two apart;
//! * the race includes the `functional(aligned)` scheme
//!   ([`qcec::Strategy::Aligned`]): a diff-guided gate schedule that walks
//!   an insertion-only pair (the shape every routing pass produces) in
//!   strict lockstep, tracking inserted SWAP triplets as wire renamings, so
//!   the routed step's miter never drifts the way a globally proportional
//!   schedule lets it. This is what makes the chain's hardest step — the
//!   routing pass — cheaper than the endpoint miter instead of costlier.
//!
//! Chains ride every front-end: manifests gain a `chains` array
//! ([`batch::Manifest::chains`], [`chain::ChainSpec`]), `verify --chain`
//! verifies one pipeline from the command line, the daemon speaks
//! `verify-chain`, and the batch report totals
//! `chains_total` / `chains_refuted` / `chain_steps_verified` plus
//! `pairs_per_sec` — plain pairs and verified chain steps per wall-clock
//! second. Verdict composition is conservative: `NotEquivalent` as soon as
//! a step refutes, otherwise the *weakest* step equivalence (one
//! simulative step caps the chain at `ProbablyEquivalent`; an
//! inconclusive step caps it at `NoInformation`) — a chain never claims
//! more than its weakest link proves. The compile crate's
//! [`StagedCompilation`](../compile/struct.StagedCompilation.html)
//! exposes per-pass snapshots for exactly this, and the bench crate's
//! `corpus` binary generates whole manifest corpora of them.
//!
//! ## Warm stores across batch pairs
//!
//! The [`batch`] driver keeps shared stores alive across pairs in a
//! per-register-width pool ([`batch::StorePool`];
//! [`batch::BatchOptions::warm_stores`], default on; the `verify` binary's
//! `--cold-stores` opts out): after each pair a collection prunes
//! everything but the gate-diagram L2 cache and the canonical structure
//! under it, which the next same-width pair reuses (reported as
//! `warm_hits`). The pool keeps at most
//! [`batch::BatchOptions::store_shelves`] register widths (least recently
//! used evicted; `--store-shelves N`), so heterogeneous batches do not pin
//! every width's arenas forever.
//!
//! ## Observability
//!
//! Every layer reports into the `obs` crate. Counters are always on (one
//! relaxed atomic add per event); structured tracing activates when a sink
//! is installed — `verify --trace-file FILE` writes JSONL where every line
//! carries `ts_us`/`thread`/`ev`/`kind` plus the ambient correlation IDs
//! (`pair`, `pair_name`, `scheme`, `span`/`parent`). The span tree per
//! pair: `pair` → `race` (fields: plan shape, verdict, winner, escalation)
//! → `scheme.run` per launch → the dd GC spans of whatever that scheme
//! allocated. Point events: `scheme.launch` (wave: inline / primary /
//! reserve / sequential), `race.verdict` (one per winner improvement),
//! `race.cancel`, `race.escalate` (with the [`EscalationReason`]),
//! `warmstore.checkout` / `warmstore.checkin`, `telemetry.fold`.
//!
//! The portfolio metric catalogue — each entry's caveat states what the
//! bare number misleads about:
//!
//! | metric | unit | misleads about |
//! |---|---|---|
//! | `portfolio.races` | count | counts sequential tiny-instance plans as races too |
//! | `portfolio.scheme_launches` | count | launched is not finished: cancelled schemes count like winners |
//! | `portfolio.cancellations` | count | cancellation is cooperative; a scheme may finish before noticing |
//! | `portfolio.escalations.stall` | count | stall is a wall-clock verdict; a loaded machine escalates pairs a quiet one would not |
//! | `portfolio.escalations.drain` | count | drain indicts the prediction; stall may only indict the deadline |
//! | `batch.pairs` | count | includes pairs that failed to parse |
//! | `batch.warm_checkouts` / `batch.cold_checkouts` | count | warm means reused, not faster; first pair per width is necessarily cold |
//! | `service.requests` | count | admitted is not completed: cancelled requests count like served ones |
//! | `service.queue_depth` / `service.inflight` | count | running *sums* sampled at admission/dispatch, not gauges — divide by `service.requests` for means; `stats` has the live gauges |
//! | `service.admission_rejects` | count | rejects are per submit attempt; one retrying client can dominate the count |
//! | `service.request_duration` | ns hist | dispatch-to-outcome only, queue wait invisible; log2 buckets make the p99 an upper bound |
//!
//! The batch JSON carries an always-on per-pair `metrics` block
//! ([`batch::PairMetrics`]: cache and cross-thread hit rates, GC-barrier
//! wait, lock contention, warm reuse) derived from the same counters — no
//! trace file needed. `verify --metrics` prints the folded counters to
//! stderr after a run; `--trace-file` implies it.
//!
//! ## Failure isolation
//!
//! A scheme that *panics* (as opposed to erroring) is caught, reported as a
//! failed [`SchemeReport`] with the panic message as its error, and the
//! run continues with the remaining schemes; shared-store locks the dead
//! scheme may have poisoned recover instead of cascading.
//!
//! ## Quick start
//!
//! ```
//! use algorithms::qpe;
//! use portfolio::{verify_portfolio, PortfolioConfig};
//!
//! let phi = 3.0 * std::f64::consts::PI / 8.0;
//! let result = verify_portfolio(
//!     &qpe::qpe_static(phi, 3, true),
//!     &qpe::iqpe_dynamic(phi, 3),
//!     &PortfolioConfig::default(),
//! );
//! assert!(result.verdict.considered_equivalent());
//! println!("winner: {:?} in {:?}", result.winner, result.time_to_verdict);
//! ```
//!
//! ## Verdict semantics
//!
//! A verdict is *conclusive* when it proves something: `Equivalent`,
//! `EquivalentUpToGlobalPhase` or `NotEquivalent`. `ProbablyEquivalent`
//! (simulative agreement on random stimuli) never beats a conclusive verdict
//! and is only returned when every scheme that finished was inconclusive.
//! Note that for *dynamic* circuit pairs the fixed-input scheme proves
//! equivalence of the measurement-outcome distributions for the all-zeros
//! input — a weaker statement than full functional equivalence. The
//! [`SchemeReport::scheme`] of the winner tells which semantics produced the
//! verdict, and two precedence rules keep runs sound:
//!
//! * a fixed-input *refutation* is also a functional refutation, so
//!   `NotEquivalent` from any scheme is always safe to report;
//! * when the fixed-input scheme claims equivalence but a functional scheme
//!   in the same run finished with a refutation, the refutation wins — the
//!   weaker claim never overrides the stronger proof.
//!
//! Predicted plans narrow *which* schemes launch, never the verdict rules:
//! an escalated run applies the same precedence across both waves, and the
//! acceptance suite pins verdict parity between predicted and race runs.

#![warn(missing_docs)]

pub mod batch;
pub mod chain;
mod engine;
pub mod scheduler;
pub mod scheme;
pub mod service;
pub mod telemetry;
pub mod wire;

pub use chain::{ChainReport, ChainRequest, ChainSpec, ChainStep, ChainStepReport, ChainStepSpec};
pub use engine::{
    applicable_schemes, run_scheme, run_scheme_in, verify_portfolio, verify_portfolio_in,
    verify_portfolio_recorded, EscalationReason, PortfolioConfig, PortfolioResult, SchemeReport,
    SharedStoreReport,
};
pub use scheduler::SchedulePolicy;
pub use scheme::Scheme;
pub use telemetry::{PairFeatures, TelemetryStore};
