//! # portfolio — parallel portfolio verification of quantum circuits
//!
//! No single equivalence-checking scheme wins everywhere: functional
//! checking after unitary reconstruction (the paper's Section 4) is
//! unbeatable when the miter stays close to the identity, while fixed-input
//! distribution extraction (Section 5) can be exponentially faster — or
//! exponentially slower — depending on how many measurement outcomes carry
//! probability mass. Exactly as the QCEC tool does, this crate therefore
//! **races every applicable scheme concurrently** and returns the first
//! conclusive verdict:
//!
//! * [`verify_portfolio`] spawns one `std::thread` worker per scheme and a
//!   shared [`CancelToken`](qcec::CancelToken). The first conclusive verdict
//!   cancels the losers, which unwind within a few hundred node allocations
//!   thanks to the budget plumbing inside [`dd`], [`sim`] and [`qcec`].
//! * **Shared-package racing** ([`PortfolioConfig::shared_package`], default
//!   on): the racing schemes attach to one concurrent
//!   [`dd::SharedStore`], so the miter construction, the simulative check
//!   and the extraction walkers reuse each other's gate diagrams, complex
//!   weights and subdiagrams instead of re-interning them privately. The
//!   tiny-instance sequential fast path is unchanged.
//! * Per-scheme telemetry ([`SchemeReport`]) records verdicts, wall times,
//!   peak diagram sizes and whether the scheme was cancelled — the raw data
//!   behind portfolio-weight tuning.
//! * The [`batch`] module fans whole workloads (a JSON manifest or a
//!   directory of QASM pairs) over a worker pool and produces a
//!   machine-readable JSON report; the `verify` binary is its CLI.
//!
//! ## Shared-store telemetry in reports
//!
//! When a race uses the shared store, three layers of telemetry surface the
//! sharing:
//!
//! * [`SchemeReport::shared_nodes`] — live nodes of the store as that scheme
//!   finished — and [`SchemeReport::cross_thread_hit_rate`] — the fraction
//!   of the scheme's canonical lookups (unique tables plus the shared gate
//!   cache) answered by structure *another* scheme built first.
//! * [`PortfolioResult::shared_store`] (a [`SharedStoreReport`]) aggregates
//!   the whole race: `shared_nodes` (live at race end), `carried_over_nodes`
//!   (warm carry-over at race start), `peak_nodes`, `allocated_nodes`,
//!   `intern_hits`, `cross_thread_hits`, `warm_hits`,
//!   `cross_thread_hit_rate` (always finite — `0.0` for a race cancelled
//!   before its first lookup), `gc_runs` / `gc_barrier_runs` (store-level
//!   collections; barrier collections stop the racing schemes at their
//!   safe points and run *mid-race*) and `complex_entries` (live interned
//!   weights).
//! * The batch JSON report repeats that block per pair
//!   (`pairs[i].shared_store`, plus a `warm_store` flag) next to the
//!   existing `peak_nodes` / `gc_runs` scheme aggregates, and totals
//!   `warm_hits_total` / `gc_barrier_runs_total`, so perf trajectories
//!   across a workload can be mined for lock-contention or sharing
//!   regressions.
//!
//! ## Warm stores across batch pairs
//!
//! The [`batch`] driver keeps one shared store per register width alive
//! across pairs ([`batch::BatchOptions::warm_stores`], default on; the
//! `verify` binary's `--cold-stores` opts out): after each pair a barrier
//! collection prunes everything but the gate-diagram L2 cache and the
//! canonical structure under it, which the next same-width pair then reuses
//! (reported as `warm_hits`). Checkout is exclusive per worker, so
//! concurrent workers never share a store mid-pair.
//!
//! ## Failure isolation
//!
//! A scheme that *panics* (as opposed to erroring) is caught, reported as a
//! failed [`SchemeReport`] with the panic message as its error, and the
//! race continues with the remaining schemes; shared-store locks the dead
//! scheme may have poisoned recover instead of cascading.
//!
//! ## Quick start
//!
//! ```
//! use algorithms::qpe;
//! use portfolio::{verify_portfolio, PortfolioConfig};
//!
//! let phi = 3.0 * std::f64::consts::PI / 8.0;
//! let result = verify_portfolio(
//!     &qpe::qpe_static(phi, 3, true),
//!     &qpe::iqpe_dynamic(phi, 3),
//!     &PortfolioConfig::default(),
//! );
//! assert!(result.verdict.considered_equivalent());
//! println!("winner: {:?} in {:?}", result.winner, result.time_to_verdict);
//! ```
//!
//! ## Verdict semantics
//!
//! A verdict is *conclusive* when it proves something: `Equivalent`,
//! `EquivalentUpToGlobalPhase` or `NotEquivalent`. `ProbablyEquivalent`
//! (simulative agreement on random stimuli) never beats a conclusive verdict
//! and is only returned when every scheme that finished was inconclusive.
//! Note that for *dynamic* circuit pairs the fixed-input scheme proves
//! equivalence of the measurement-outcome distributions for the all-zeros
//! input — a weaker statement than full functional equivalence. The
//! [`SchemeReport::scheme`] of the winner tells which semantics produced the
//! verdict, and two precedence rules keep races sound:
//!
//! * a fixed-input *refutation* is also a functional refutation, so
//!   `NotEquivalent` from any scheme is always safe to report;
//! * when the fixed-input scheme claims equivalence but a functional scheme
//!   in the same race finished with a refutation, the refutation wins — the
//!   weaker claim never overrides the stronger proof.

#![warn(missing_docs)]

pub mod batch;
mod engine;

pub use engine::{
    applicable_schemes, run_scheme, run_scheme_in, verify_portfolio, verify_portfolio_in,
    PortfolioConfig, PortfolioResult, Scheme, SchemeReport, SharedStoreReport,
};
