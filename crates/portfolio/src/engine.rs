//! The portfolio engine: a launcher over scheme-registry entries.
//!
//! The engine owns no policy. It asks the [scheduler](crate::scheduler) for
//! a [`SchedulePlan`] and executes it — sequentially on the calling thread,
//! or as a thread race with an optional held-back escalation wave — wiring
//! up budgets, cancellation, the shared decision-diagram store and per-
//! scheme telemetry along the way. Which schemes launch, in what order and
//! with what memory hints is entirely the plan's business; what a scheme
//! *does* is its [registry descriptor](crate::scheme::SchemeDescriptor)'s.

use crate::scheduler::{self, SchedulePlan, SchedulePolicy};
use crate::scheme::{applicable_descriptors, Scheme};
use crate::telemetry::TelemetryStore;
use circuit::QuantumCircuit;
use dd::{Budget, CancelToken, SharedStore, SharedStoreStats};
use qcec::{Configuration, Equivalence};
use sim::ExtractionConfig;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Configuration of a portfolio run.
#[derive(Debug, Clone)]
pub struct PortfolioConfig {
    /// Configuration shared by the underlying checks (including the
    /// decision-diagram [`MemoryConfig`](dd::MemoryConfig) their packages
    /// are sized with).
    pub configuration: Configuration,
    /// Extraction settings for the fixed-input scheme.
    pub extraction: ExtractionConfig,
    /// Schemes to launch; empty lets the scheduler select and order the
    /// [`applicable_schemes`] according to [`policy`](Self::policy).
    pub schemes: Vec<Scheme>,
    /// Launch policy: race everything (default) or launch the predicted
    /// winners first and escalate on stall. Ignored when
    /// [`schemes`](Self::schemes) is explicit.
    pub policy: SchedulePolicy,
    /// Optional per-scheme decision-diagram node budget. The budget keeps
    /// its per-scheme meaning under [`shared_package`](Self::shared_package):
    /// each scheme is metered on the nodes *it* allocated into the shared
    /// store, so reusing a competitor's node costs nothing.
    pub node_limit: Option<usize>,
    /// Optional leaf budget for the fixed-input scheme.
    pub leaf_limit: Option<usize>,
    /// Optional wall-clock deadline per race, enforced inside decision-
    /// diagram allocation (reported as a scheme error when it trips).
    pub deadline: Option<Duration>,
    /// Race all schemes against one shared decision-diagram store
    /// ([`dd::SharedStore`]) instead of private per-scheme packages, so the
    /// miter, simulative and extraction walkers reuse each other's gate
    /// diagrams and subdiagrams (default: `true`). `false` is absolute —
    /// no plan ever shares; `true` is a *ceiling*: the race policy shares
    /// on every threaded plan, while [`SchedulePolicy::Predicted`] decides
    /// per pair from recorded
    /// [`SharingStats`](crate::telemetry::SharingStats) and may race a
    /// low-payoff bucket on private packages anyway (see
    /// [`SchedulePlan::shared`](crate::scheduler::SchedulePlan::shared)).
    /// The sequential tiny-instance plan is unaffected either way.
    pub shared_package: bool,
    /// Optional *external* cancellation scope for the whole run — e.g. the
    /// verification service's per-request token, tripped when the client
    /// disconnects. It is chained as the parent of every scheme budget (see
    /// [`dd::Budget::with_parent_token`]), so it stays distinct from the
    /// race-internal winner-cancels-losers token: the engine can still tell
    /// "a competitor won" apart from "the caller walked away".
    pub cancel: Option<CancelToken>,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            configuration: Configuration::default(),
            extraction: ExtractionConfig::default(),
            schemes: Vec::new(),
            policy: SchedulePolicy::Race,
            node_limit: None,
            leaf_limit: None,
            deadline: None,
            shared_package: true,
            cancel: None,
        }
    }
}

impl PortfolioConfig {
    /// A copy of the config with the scheduler's per-scheme memory hints
    /// folded into the memory configuration of every package the scheme
    /// will create. Hints only ever *tighten*: the GC-threshold hint can
    /// only lower thresholds (a disabled automatic GC stays disabled), and
    /// the dense-cutoff hint can only lower the cutoff (a cutoff the
    /// operator already set to 0 stays 0).
    fn with_hints(&self, scheduled: &crate::scheduler::ScheduledScheme) -> PortfolioConfig {
        let mut config = self.clone();
        if let Some(hint) = scheduled.gc_hint {
            if let Some(threshold) = config.configuration.memory.gc_threshold {
                config.configuration.memory.gc_threshold = Some(threshold.min(hint));
            }
            if let Some(threshold) = config.extraction.memory.gc_threshold {
                config.extraction.memory.gc_threshold = Some(threshold.min(hint));
            }
        }
        if let Some(hint) = scheduled.dense_hint {
            config.configuration.memory.dense_cutoff =
                config.configuration.memory.dense_cutoff.min(hint);
            config.extraction.memory.dense_cutoff = config.extraction.memory.dense_cutoff.min(hint);
        }
        config
    }
}

/// Telemetry of one scheme's run inside a portfolio.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SchemeReport {
    /// Which scheme ran.
    pub scheme: Scheme,
    /// The verdict it produced, if it finished.
    pub verdict: Option<Equivalence>,
    /// Whether the verdict proves (non-)equivalence.
    pub conclusive: bool,
    /// Whether the scheme was cancelled because a competitor won.
    pub cancelled: bool,
    /// Failure description when the scheme neither finished nor was
    /// cancelled (e.g. node budget exhausted, unsupported circuit).
    pub error: Option<String>,
    /// Wall-clock time the scheme ran for (serialized as seconds).
    pub duration: Duration,
    /// Peak decision-diagram size observed (miter size for functional
    /// schemes, extraction leaves for the fixed-input scheme).
    pub peak_nodes: Option<usize>,
    /// Fraction of decision-diagram compute-table lookups served from the
    /// lossy caches, when the scheme ran far enough to report it.
    pub cache_hit_rate: Option<f64>,
    /// Decision-diagram garbage-collection runs during the scheme.
    pub gc_runs: Option<usize>,
    /// Live nodes of the shared store as this scheme finished (`None` when
    /// racing with private packages).
    pub shared_nodes: Option<usize>,
    /// Fraction of this scheme's canonical-store hits served by structure
    /// another racing scheme built first. `None` with private packages;
    /// always `Some` (down to `0.0` for a scheme cancelled before its first
    /// canonical lookup — never NaN/null) when racing on a shared store.
    pub cross_thread_hit_rate: Option<f64>,
}

/// Why a predicted run launched its reserve wave (see
/// [`SchedulePolicy::Predicted`]). Serialized as `"stall"` /
/// `"inconclusive-drain"` in batch JSON and trace events.
///
/// The two reasons point at different scheduler mistakes: a [`Stall`]
/// means the predicted winners were *too slow* (the stall deadline may be
/// tuned, or the prediction was wrong about speed); an
/// [`InconclusiveDrain`] means they were *incapable* — every primary
/// scheme finished without settling the pair, so no deadline tuning would
/// have helped.
///
/// [`Stall`]: EscalationReason::Stall
/// [`InconclusiveDrain`]: EscalationReason::InconclusiveDrain
/// [`SchedulePolicy::Predicted`]: crate::scheduler::SchedulePolicy::Predicted
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EscalationReason {
    /// No conclusive verdict arrived within the plan's stall deadline
    /// while primary schemes were still running.
    Stall,
    /// Every primary scheme finished before the deadline, all of them
    /// inconclusive, so the reserve launched immediately.
    InconclusiveDrain,
}

impl EscalationReason {
    /// Stable machine-readable name, used in batch JSON and trace events.
    pub fn as_str(self) -> &'static str {
        match self {
            EscalationReason::Stall => "stall",
            EscalationReason::InconclusiveDrain => "inconclusive-drain",
        }
    }
}

impl std::fmt::Display for EscalationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl serde::Serialize for EscalationReason {
    fn serialize(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_string())
    }
}

/// Telemetry of the shared decision-diagram store behind one portfolio race
/// (see [`dd::SharedStoreStats`]; reported into the batch JSON as the
/// per-pair `shared_store` block).
///
/// Counter fields are *per-race deltas*: a warm store kept alive by the
/// batch driver accumulates across pairs, so each race reports the
/// difference between its start and end snapshots. Gauges (`shared_nodes`,
/// `peak_nodes`, `complex_entries`) are end-of-race snapshots.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SharedStoreReport {
    /// Live nodes when the race ended.
    pub shared_nodes: usize,
    /// Nodes already live when the race started: the warm carry-over a
    /// pooled store handed this pair (`0` for a fresh store).
    pub carried_over_nodes: usize,
    /// Peak live nodes over the store's lifetime so far.
    pub peak_nodes: usize,
    /// Nodes allocated across all schemes of this race (unique-table
    /// misses).
    pub allocated_nodes: u64,
    /// Canonical lookups (unique tables + shared gate cache) answered by an
    /// existing entry.
    pub intern_hits: u64,
    /// Subset of `intern_hits` served by a *different* scheme's entry.
    pub cross_thread_hits: u64,
    /// Subset of `cross_thread_hits` served by structure predating this
    /// race — warm cross-pair reuse.
    pub warm_hits: u64,
    /// Subset of `warm_hits` served by structure an *earlier step of the
    /// same verification chain* interned (see [`crate::chain`]). The
    /// remainder (`warm_hits − chain_hits`) predates the chain — batch
    /// shelf reuse. Always `0` outside a chain.
    pub chain_hits: u64,
    /// `cross_thread_hits / intern_hits`, the headline sharing metric.
    /// `0.0` (never NaN or null) when the race was over before its first
    /// canonical lookup — the JSON report must stay machine-readable.
    pub cross_thread_hit_rate: f64,
    /// Store-level garbage collections during this race (sole-attachment
    /// and barrier).
    pub gc_runs: usize,
    /// Subset of `gc_runs` that ran as mid-race safe-point barrier
    /// collections with the other schemes parked.
    pub gc_barrier_runs: usize,
    /// Barrier requests that timed out (`BARRIER_PATIENCE`) because a
    /// racer never reached a safe point, deferring the collection.
    pub barrier_deferrals: usize,
    /// Time spent requesting, parking for and waiting out GC barriers,
    /// in seconds. Sums *across* threads, so it can exceed the race's
    /// wall-clock time.
    pub barrier_wait_seconds: f64,
    /// Shard/cache lock acquisitions that had to block behind another
    /// scheme's holder (uncontended acquisitions are not counted).
    pub shard_lock_waits: u64,
    /// Total time schemes spent blocked on store locks, in seconds.
    /// Sums across threads, like `barrier_wait_seconds`.
    pub shard_contention_seconds: f64,
    /// Workspace mirror flushes forced by collections. Pinned at `0` under
    /// epoch-snapshot reads (workspaces re-pin instead of flushing); kept in
    /// the report so a regression would show up on existing dashboards.
    pub mirror_invalidations: u64,
    /// Generation pins taken during this race: one per workspace attach
    /// plus one per collection a workspace crossed. Pins are `Arc` clones —
    /// a high count signals frequent GC, not expensive reads.
    pub epoch_pins: u64,
    /// Generations superseded by collections during this race. Retirement
    /// is not reclamation: a pinned generation lives until its last reader
    /// re-pins.
    pub retired_generations: u64,
    /// Bytes of superseded generations that *entered* deferred reclamation
    /// during this race (still pinned by a reader when retired). A running
    /// total, never decremented — it bounds transient overhead, not live
    /// memory.
    pub deferred_reclaim_bytes: u64,
    /// Live interned complex weights at race end.
    pub complex_entries: usize,
}

impl SharedStoreReport {
    /// Builds the per-race report from snapshots taken at race start and
    /// end (identical snapshots — a race that never touched the store —
    /// yield all-zero deltas).
    fn delta(start: &SharedStoreStats, end: &SharedStoreStats) -> Self {
        let intern_hits = end.intern_hits.saturating_sub(start.intern_hits);
        let cross_thread_hits = end
            .cross_thread_hits
            .saturating_sub(start.cross_thread_hits);
        SharedStoreReport {
            shared_nodes: end.live_nodes,
            carried_over_nodes: start.live_nodes,
            peak_nodes: end.peak_nodes,
            allocated_nodes: end.allocated_nodes.saturating_sub(start.allocated_nodes),
            intern_hits,
            cross_thread_hits,
            warm_hits: end.warm_hits.saturating_sub(start.warm_hits),
            chain_hits: end.chain_hits.saturating_sub(start.chain_hits),
            cross_thread_hit_rate: if intern_hits == 0 {
                0.0
            } else {
                cross_thread_hits as f64 / intern_hits as f64
            },
            gc_runs: end.gc_runs.saturating_sub(start.gc_runs),
            gc_barrier_runs: end.gc_barrier_runs.saturating_sub(start.gc_barrier_runs),
            barrier_deferrals: end
                .barrier_deferrals
                .saturating_sub(start.barrier_deferrals),
            barrier_wait_seconds: end.barrier_wait_ns.saturating_sub(start.barrier_wait_ns) as f64
                / 1e9,
            shard_lock_waits: end.shard_lock_waits.saturating_sub(start.shard_lock_waits),
            shard_contention_seconds: end
                .shard_contention_ns
                .saturating_sub(start.shard_contention_ns)
                as f64
                / 1e9,
            mirror_invalidations: end
                .mirror_invalidations
                .saturating_sub(start.mirror_invalidations),
            epoch_pins: end.epoch_pins.saturating_sub(start.epoch_pins),
            retired_generations: end
                .retired_generations
                .saturating_sub(start.retired_generations),
            deferred_reclaim_bytes: end
                .deferred_reclaim_bytes
                .saturating_sub(start.deferred_reclaim_bytes),
            complex_entries: end.complex_entries,
        }
    }
}

/// Outcome of a portfolio run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PortfolioResult {
    /// The combined verdict (see the crate docs for verdict semantics).
    pub verdict: Equivalence,
    /// Scheme that produced the verdict, if any scheme finished.
    pub winner: Option<Scheme>,
    /// Wall time from launch until the winning verdict arrived.
    pub time_to_verdict: Duration,
    /// Wall time until every worker had stopped (losers unwind after
    /// cancellation, so this stays close to `time_to_verdict`).
    pub total_time: Duration,
    /// Whether recorded telemetry steered the launch plan (`false` for
    /// race-everything runs, including predicted runs that degraded to
    /// racing because the pair's feature bucket had no stats).
    pub predicted: bool,
    /// Why a predicted run had to launch its reserve wave, if it did.
    /// `None` when the primary wave settled the pair — and always `None`
    /// for race-everything runs, which hold nothing back to escalate to.
    pub escalation: Option<EscalationReason>,
    /// Telemetry of every scheme that launched, in completion order.
    pub schemes: Vec<SchemeReport>,
    /// Whether the run raced on a shared decision-diagram store — the
    /// plan's per-pair decision (see
    /// [`SchedulePlan::shared`](crate::scheduler::SchedulePlan::shared)),
    /// not just the config default.
    pub shared: bool,
    /// The scheduler's stable reason tag for the sharing decision
    /// (`"race-default"`, `"config-private"`, `"explicit-schemes"`,
    /// `"cold-telemetry"`, `"predicted-shared"`, `"predicted-private"`).
    pub shared_reason: &'static str,
    /// Shared-store telemetry when the run used one
    /// ([`PortfolioConfig::shared_package`]); `None` for private-package
    /// races and sequential runs without a warm store.
    pub shared_store: Option<SharedStoreReport>,
}

impl PortfolioResult {
    /// Whether the run escalated to its reserve wave (for any reason).
    pub fn escalated(&self) -> bool {
        self.escalation.is_some()
    }
}

/// Selects the schemes worth racing for a circuit pair, in race-launch
/// order (the heuristic favourite first).
///
/// This is a registry query: the entries of
/// [`scheme::REGISTRY`](crate::scheme::REGISTRY) whose applicability
/// predicate accepts the pair, ordered by their
/// [`race_rank`](crate::scheme::SchemeDescriptor::race_rank). Static pairs
/// select the three miter schedules plus random-stimulus simulation; pairs
/// with dynamic primitives select the Section 4 reconstruction flow (all
/// three schedules) plus the Section 5 fixed-input extraction.
pub fn applicable_schemes(left: &QuantumCircuit, right: &QuantumCircuit) -> Vec<Scheme> {
    applicable_descriptors(left, right)
        .iter()
        .map(|descriptor| descriptor.scheme)
        .collect()
}

fn conclusive(verdict: Equivalence) -> bool {
    matches!(
        verdict,
        Equivalence::Equivalent
            | Equivalence::EquivalentUpToGlobalPhase
            | Equivalence::NotEquivalent
    )
}

/// Runs a single scheme under `budget` and reports its telemetry.
///
/// This is the worker body of [`verify_portfolio`], exposed so benchmarks
/// and tests can time individual schemes under identical conditions. The
/// scheme uses a private decision-diagram package; see [`run_scheme_in`] to
/// run it against a shared store.
pub fn run_scheme(
    scheme: Scheme,
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
    budget: &Budget,
) -> SchemeReport {
    run_scheme_in(scheme, left, right, config, budget, None)
}

/// [`run_scheme`] with an optional shared decision-diagram store: the
/// scheme's packages then attach as workspaces of `store`, interning into
/// the same canonical node space as every other scheme racing on it.
///
/// The scheme body is the registry descriptor's
/// [`runner`](crate::scheme::SchemeDescriptor::runner); this function adds
/// timing and folds the outcome into a [`SchemeReport`].
pub fn run_scheme_in(
    scheme: Scheme,
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
    budget: &Budget,
    store: Option<&Arc<SharedStore>>,
) -> SchemeReport {
    let start = Instant::now();
    let outcome = (scheme.descriptor().runner)(left, right, config, budget, store);
    SchemeReport {
        scheme,
        // `ProbablyEquivalent` (simulative agreement) is advisory, so it
        // never counts as conclusive and never cancels competitors.
        conclusive: outcome.verdict.map(conclusive).unwrap_or(false),
        verdict: outcome.verdict,
        cancelled: outcome.cancelled,
        error: outcome.error,
        duration: start.elapsed(),
        peak_nodes: outcome.peak_nodes,
        cache_hit_rate: outcome.memory.and_then(|m| m.compute_hit_rate()),
        gc_runs: outcome.memory.map(|m| m.gc_runs),
        shared_nodes: outcome
            .memory
            .and_then(|m| (m.shared_nodes > 0).then_some(m.shared_nodes)),
        // A scheme racing on a shared store always reports a finite rate:
        // a scheme cancelled before its first canonical lookup divides 0
        // hits by 0 lookups, which must surface as 0.0 — a NaN would make
        // the JSON report unserializable and a null look like a private
        // race.
        cross_thread_hit_rate: match (&outcome.memory, store) {
            (Some(m), Some(_)) => Some(m.cross_thread_hit_rate().unwrap_or(0.0)),
            (Some(m), None) => m.cross_thread_hit_rate(),
            (None, Some(_)) => Some(0.0),
            (None, None) => None,
        },
    }
}

/// [`run_scheme_in`] hardened against scheme panics: a panicking scheme is
/// reported as failed (with the panic message as its error) instead of
/// tearing down the whole race. Shared-store locks a panicking scheme may
/// have poisoned are recovered by the store itself (see `dd::store`).
fn run_scheme_caught(
    scheme: Scheme,
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
    budget: &Budget,
    store: Option<&Arc<SharedStore>>,
) -> SchemeReport {
    catch_scheme(scheme, store.is_some(), || {
        run_scheme_in(scheme, left, right, config, budget, store)
    })
}

/// Converts a panicking scheme body into a failed [`SchemeReport`].
fn catch_scheme(scheme: Scheme, shared: bool, run: impl FnOnce() -> SchemeReport) -> SchemeReport {
    let start = Instant::now();
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)).unwrap_or_else(|payload| {
        SchemeReport {
            scheme,
            verdict: None,
            conclusive: false,
            cancelled: false,
            error: Some(format!(
                "scheme panicked: {}",
                panic_message(payload.as_ref())
            )),
            duration: start.elapsed(),
            peak_nodes: None,
            cache_hit_rate: None,
            gc_runs: None,
            shared_nodes: None,
            cross_thread_hit_rate: shared.then_some(0.0),
        }
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(message) = payload.downcast_ref::<&str>() {
        message
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message
    } else {
        "non-string panic payload"
    }
}

/// Folds scheme reports into the final result: first conclusive verdict
/// wins; otherwise the strongest advisory verdict is used.
fn combine(
    start: Instant,
    reports: Vec<SchemeReport>,
    verdict: Option<Equivalence>,
    winner: Option<Scheme>,
    time_to_verdict: Option<Duration>,
) -> PortfolioResult {
    let total_time = start.elapsed();
    let (verdict, winner) = match verdict {
        Some(verdict) => (Some(verdict), winner),
        None => match reports
            .iter()
            .find(|r| r.verdict == Some(Equivalence::ProbablyEquivalent))
        {
            Some(report) => (report.verdict, Some(report.scheme)),
            None => (None, None),
        },
    };
    PortfolioResult {
        verdict: verdict.unwrap_or(Equivalence::NoInformation),
        winner,
        time_to_verdict: time_to_verdict.unwrap_or(total_time),
        total_time,
        predicted: false,
        escalation: None,
        schemes: reports,
        shared: false,
        shared_reason: "config-private",
        shared_store: None,
    }
}

/// Launches all configured (or scheduler-selected) verification schemes for
/// a circuit pair and returns the first conclusive verdict plus per-scheme
/// telemetry.
///
/// Under the default [`SchedulePolicy::Race`] every applicable scheme races
/// across `std::thread` workers against one shared decision-diagram store
/// ([`PortfolioConfig::shared_package`]): whichever scheme builds a gate
/// diagram or subdiagram first, the others get it as a cache hit. The
/// workers additionally share one [`CancelToken`], so the moment a
/// conclusive verdict arrives the losing schemes stop burning cores and
/// unwind. The wall time of the whole call therefore tracks the *fastest*
/// scheme, while the verdict quality matches the best scheme that could
/// have run alone. Two plan shapes keep the overhead over the fastest
/// single scheme small:
///
/// * tiny instances (≤ 8 qubits, ≤ 256 operations) get a *sequential* plan
///   — the schemes are tried one after another on the calling thread,
///   below the cost of a thread spawn;
/// * in a race, the heuristically fastest scheme runs inline on the calling
///   thread while only the competitors are spawned.
///
/// Under [`SchedulePolicy::Predicted`] (and recorded stats — see
/// [`verify_portfolio_recorded`]) only the top-`k` predicted winners launch,
/// with the rest of the portfolio held back as an escalation wave.
pub fn verify_portfolio(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
) -> PortfolioResult {
    verify_portfolio_in(left, right, config, None)
}

/// [`verify_portfolio`] against an optional *warm* shared store.
///
/// When `warm_store` is `Some`, the run attaches to it instead of creating
/// a fresh [`SharedStore`]: canonical nodes and the gate-diagram L2 cache
/// left behind by earlier races (the batch driver GCs between pairs, so
/// only GC roots carry over) are reused, reported as
/// [`SharedStoreReport::warm_hits`]. The store's warm-reuse epoch is marked
/// here ([`SharedStore::begin_race`]); telemetry in the result is the
/// per-race delta. A warm store is honoured even on the sequential
/// tiny-instance plan.
pub fn verify_portfolio_in(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
    warm_store: Option<&Arc<SharedStore>>,
) -> PortfolioResult {
    verify_portfolio_recorded(left, right, config, warm_store, None)
}

/// [`verify_portfolio_in`] wired to a persistent [`TelemetryStore`]: the
/// scheduler plans against the store's recorded stats (enabling
/// [`SchedulePolicy::Predicted`] to actually predict), and every scheme
/// report of the run is folded back in afterwards. This is the entry point
/// the batch driver uses for `verify --stats-file`.
pub fn verify_portfolio_recorded(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
    warm_store: Option<&Arc<SharedStore>>,
    telemetry: Option<&Mutex<TelemetryStore>>,
) -> PortfolioResult {
    let plan = {
        // Hold the lock only while planning (a handful of map lookups);
        // recover from poisoning like every other portfolio lock.
        let guard = telemetry.map(|store| store.lock().unwrap_or_else(PoisonError::into_inner));
        scheduler::plan(left, right, config, guard.as_deref())
    };
    let result = execute_plan(left, right, config, &plan, warm_store);
    if let Some(telemetry) = telemetry {
        let mut guard = telemetry.lock().unwrap_or_else(PoisonError::into_inner);
        guard.record_race(&plan.features, &result.schemes, result.winner);
        // Sharing payoff is only measurable on shared races (a private race
        // has no store to report), so those are what the per-bucket
        // `SharingStats` accumulate; the race-everything policy keeps
        // producing fresh samples even after a predicted-private streak.
        if let Some(report) = &result.shared_store {
            guard.record_sharing(
                &plan.features,
                report.cross_thread_hit_rate,
                report.shard_contention_seconds,
                result.total_time.as_secs_f64(),
            );
        }
        drop(guard);
        obs::trace::event(
            "telemetry.fold",
            &[("schemes", (result.schemes.len() as u64).into())],
        );
    }
    result
}

/// Executes a launch plan: the engine proper.
fn execute_plan(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
    plan: &SchedulePlan,
    warm_store: Option<&Arc<SharedStore>>,
) -> PortfolioResult {
    let cancel = CancelToken::new();
    obs::metrics::incr(obs::metrics::PF_RACES);
    // A plan that decided against sharing must also decline the batch
    // pool's warm store — attaching would rebuild exactly the coupling the
    // prediction chose to avoid (the pool hands one out whenever the
    // *config* allows sharing; the per-pair decision is the plan's).
    let warm_store = warm_store.filter(|_| plan.shared);
    // The race span parents every scheme/GC span of this pair; workers
    // inherit it through the explicit context handoff in `spawn_scheme`.
    let race_span = obs::trace::span(
        "race",
        &[
            ("sequential", plan.sequential.into()),
            ("predicted", plan.predicted.into()),
            ("primary", (plan.primary.len() as u64).into()),
            ("reserve", (plan.reserve.len() as u64).into()),
            ("warm_store", warm_store.is_some().into()),
        ],
    );
    obs::trace::event(
        "race.plan",
        &[
            ("shared", plan.shared.into()),
            ("reason", plan.shared_reason.into()),
        ],
    );

    // One shared absolute deadline for the whole run, fixed up front so
    // every scheme (including escalation-wave workers) counts down together.
    let deadline_at = config.deadline.map(|timeout| Instant::now() + timeout);
    let make_budget = || {
        let mut budget = Budget::unlimited().with_cancel_token(cancel.clone());
        if let Some(external) = &config.cancel {
            budget = budget.with_parent_token(external.clone());
        }
        if let Some(max_nodes) = config.node_limit {
            budget = budget.with_node_limit(max_nodes);
        }
        if let Some(max_leaves) = config.leaf_limit {
            budget = budget.with_leaf_limit(max_leaves);
        }
        if let Some(at) = deadline_at {
            budget = budget.with_deadline_at(at);
        }
        budget
    };

    // Per-launch configs with the scheduler's memory hints folded in;
    // workers borrow these across the scope below.
    let launches: Vec<(Scheme, PortfolioConfig)> = plan
        .all_schemes()
        .map(|scheduled| (scheduled.scheme, config.with_hints(scheduled)))
        .collect();

    if plan.sequential {
        let before = warm_store.map(|store| {
            store.begin_race();
            store.stats()
        });
        let start = Instant::now();
        let budget = make_budget();
        let mut reports = Vec::new();
        let mut verdict = None;
        let mut winner = None;
        let mut time_to_verdict = None;
        for (scheme, scheme_config) in &launches {
            // An external cancellation (client disconnect) ends the
            // sequential fallback chain between schemes — each scheme
            // already unwinds internally via the budget.
            if budget.is_cancelled() {
                break;
            }
            let _trace =
                obs::trace::with_context(obs::trace::current_context().with_scheme(scheme.name()));
            obs::trace::event("scheme.launch", &[("wave", "sequential".into())]);
            obs::metrics::incr(obs::metrics::PF_SCHEME_LAUNCHES);
            let report =
                run_scheme_caught(*scheme, left, right, scheme_config, &budget, warm_store);
            let conclusive = report.conclusive;
            if conclusive {
                verdict = report.verdict;
                winner = Some(report.scheme);
                time_to_verdict = Some(start.elapsed());
                obs::trace::event(
                    "race.verdict",
                    &[
                        ("winner", report.scheme.name().into()),
                        (
                            "verdict",
                            report
                                .verdict
                                .map(|v| v.to_string().into())
                                .unwrap_or_else(|| "none".into()),
                        ),
                        ("at_us", start.elapsed().into()),
                    ],
                );
            }
            reports.push(report);
            if conclusive {
                break;
            }
        }
        let mut result = combine(start, reports, verdict, winner, time_to_verdict);
        result.predicted = plan.predicted;
        result.shared = plan.shared;
        result.shared_reason = plan.shared_reason;
        if let (Some(store), Some(before)) = (warm_store, before) {
            result.shared_store = Some(SharedStoreReport::delta(&before, &store.stats()));
        }
        finish_race(race_span, &result);
        return result;
    }

    // Threaded execution: one concurrent store for the whole run — warm
    // from the pool, or fresh — so every scheme interning the same gate
    // diagram or subdiagram gets the other schemes' work as cache hits
    // instead of rebuilding it. Whether a store exists at all is the
    // *plan's* per-pair decision, not the config's global one.
    let store = match warm_store {
        Some(store) => Some(Arc::clone(store)),
        None => plan.shared.then(SharedStore::new),
    };
    let before = store.as_ref().map(|store| {
        store.begin_race();
        store.stats()
    });

    let start = Instant::now();
    let mut reports: Vec<SchemeReport> = Vec::with_capacity(launches.len());
    let mut verdict: Option<Equivalence> = None;
    let mut winner: Option<Scheme> = None;
    let mut time_to_verdict: Option<Duration> = None;
    let mut escalation: Option<EscalationReason> = None;

    // The run winner is the conclusive scheme that *finished* first —
    // reports can be handled out of finish order because the collector may
    // be busy with the inline scheme.
    fn note(
        report: SchemeReport,
        finished_at: Duration,
        verdict: &mut Option<Equivalence>,
        winner: &mut Option<Scheme>,
        time_to_verdict: &mut Option<Duration>,
        reports: &mut Vec<SchemeReport>,
    ) {
        if report.conclusive && time_to_verdict.map(|t| finished_at < t).unwrap_or(true) {
            *verdict = report.verdict;
            *winner = Some(report.scheme);
            *time_to_verdict = Some(finished_at);
            obs::trace::event(
                "race.verdict",
                &[
                    ("winner", report.scheme.name().into()),
                    (
                        "verdict",
                        report
                            .verdict
                            .map(|v| v.to_string().into())
                            .unwrap_or_else(|| "none".into()),
                    ),
                    ("at_us", finished_at.into()),
                ],
            );
        }
        reports.push(report);
    }

    let primary = plan.primary.len();
    std::thread::scope(|scope| {
        // Reports travel with the run-relative instant their scheme
        // finished, so `time_to_verdict` reflects when the verdict was
        // *produced*, not when the collector got around to processing it.
        let (sender, receiver) = mpsc::channel::<(SchemeReport, Duration)>();
        let spawn_scheme = |index: usize, wave: &'static str| {
            let budget = make_budget();
            let sender = sender.clone();
            let cancel = cancel.clone();
            let store = store.as_ref();
            let launches = &launches;
            // Captured on the coordinator, under the race span: the worker
            // installs it so its scheme span (and every dd GC span inside)
            // nests under this pair's race with the scheme tagged on.
            let worker_ctx = obs::trace::current_context();
            scope.spawn(move || {
                let (scheme, scheme_config) = &launches[index];
                let _trace = obs::trace::with_context(worker_ctx.with_scheme(scheme.name()));
                obs::trace::event("scheme.launch", &[("wave", wave.into())]);
                obs::metrics::incr(obs::metrics::PF_SCHEME_LAUNCHES);
                let scheme_span = obs::trace::span("scheme.run", &[("wave", wave.into())]);
                let report = run_scheme_caught(*scheme, left, right, scheme_config, &budget, store);
                let finished_at = start.elapsed();
                if report.conclusive {
                    // Cancel from inside the worker so losers start unwinding
                    // even before the collector thread observes the report.
                    cancel.cancel();
                    obs::trace::event("race.cancel", &[("by", scheme.name().into())]);
                }
                scheme_span.end(&[
                    ("conclusive", report.conclusive.into()),
                    ("cancelled", report.cancelled.into()),
                ]);
                // The receiver only disappears once the scope ends, but be
                // tolerant anyway: a worker must never panic on send.
                let _ = sender.send((report, finished_at));
            });
        };

        match plan.escalate_after {
            None => {
                // Race everything: spawn the competitors and run the
                // favourite (launch index 0) inline on the calling thread —
                // when it wins, the common case given the registry's race
                // ranks, the race adds no thread-spawn latency over the
                // fastest single scheme.
                for index in 1..launches.len() {
                    spawn_scheme(index, "primary");
                }
                let (scheme, scheme_config) = &launches[0];
                let inline_trace = obs::trace::with_context(
                    obs::trace::current_context().with_scheme(scheme.name()),
                );
                obs::trace::event("scheme.launch", &[("wave", "inline".into())]);
                obs::metrics::incr(obs::metrics::PF_SCHEME_LAUNCHES);
                let inline_span = obs::trace::span("scheme.run", &[("wave", "inline".into())]);
                let inline_report = run_scheme_caught(
                    *scheme,
                    left,
                    right,
                    scheme_config,
                    &make_budget(),
                    store.as_ref(),
                );
                let inline_finished_at = start.elapsed();
                if inline_report.conclusive {
                    cancel.cancel();
                    obs::trace::event("race.cancel", &[("by", scheme.name().into())]);
                }
                inline_span.end(&[
                    ("conclusive", inline_report.conclusive.into()),
                    ("cancelled", inline_report.cancelled.into()),
                ]);
                drop(inline_trace);
                note(
                    inline_report,
                    inline_finished_at,
                    &mut verdict,
                    &mut winner,
                    &mut time_to_verdict,
                    &mut reports,
                );
                // Every worker sends exactly one report (panics are caught
                // inside the worker body), so receive by count — the
                // collector keeps a sender clone alive, so disconnection
                // can never signal the end.
                for _ in 1..launches.len() {
                    let Ok((report, finished_at)) = receiver.recv() else {
                        break;
                    };
                    note(
                        report,
                        finished_at,
                        &mut verdict,
                        &mut winner,
                        &mut time_to_verdict,
                        &mut reports,
                    );
                }
            }
            Some(escalate_after) => {
                // Predicted launch: the primary wave runs on workers while
                // the collector keeps the stall clock. The reserve launches
                // when the primary wave stalls past the deadline or drains
                // without a conclusive verdict.
                for index in 0..primary {
                    spawn_scheme(index, "primary");
                }
                let escalate_at = start + escalate_after;
                let mut pending = primary;
                // A dead client must not trigger the escalation wave: the
                // primaries unwind as inconclusive when the external token
                // trips, which would otherwise read as an escalation cue.
                let externally_cancelled = || {
                    config
                        .cancel
                        .as_ref()
                        .is_some_and(CancelToken::is_cancelled)
                };
                loop {
                    if pending == 0 {
                        if verdict.is_none() && escalation.is_none() && !externally_cancelled() {
                            // The primary wave drained inconclusive before
                            // the stall deadline: the predicted schemes were
                            // incapable, not slow.
                            escalation = Some(EscalationReason::InconclusiveDrain);
                            obs::metrics::incr(obs::metrics::PF_ESCALATIONS_DRAIN);
                            obs::trace::event(
                                "race.escalate",
                                &[
                                    (
                                        "reason",
                                        EscalationReason::InconclusiveDrain.as_str().into(),
                                    ),
                                    ("reserve", ((launches.len() - primary) as u64).into()),
                                ],
                            );
                            for index in primary..launches.len() {
                                spawn_scheme(index, "reserve");
                            }
                            pending = launches.len() - primary;
                            continue;
                        }
                        break;
                    }
                    let message =
                        if escalation.is_some() || verdict.is_some() || externally_cancelled() {
                            // Nothing left to escalate (or the client walked away
                            // mid-wave — the workers are already unwinding): just
                            // drain the remaining reports.
                            receiver.recv().ok()
                        } else {
                            match receiver
                                .recv_timeout(escalate_at.saturating_duration_since(Instant::now()))
                            {
                                Ok(message) => Some(message),
                                Err(mpsc::RecvTimeoutError::Timeout) => {
                                    // Deadline hit with primaries still running:
                                    // a stall, the classic misprediction.
                                    escalation = Some(EscalationReason::Stall);
                                    obs::metrics::incr(obs::metrics::PF_ESCALATIONS_STALL);
                                    obs::trace::event(
                                        "race.escalate",
                                        &[
                                            ("reason", EscalationReason::Stall.as_str().into()),
                                            ("reserve", ((launches.len() - primary) as u64).into()),
                                        ],
                                    );
                                    for index in primary..launches.len() {
                                        spawn_scheme(index, "reserve");
                                    }
                                    pending += launches.len() - primary;
                                    continue;
                                }
                                Err(mpsc::RecvTimeoutError::Disconnected) => None,
                            }
                        };
                    let Some((report, finished_at)) = message else {
                        break;
                    };
                    pending -= 1;
                    note(
                        report,
                        finished_at,
                        &mut verdict,
                        &mut winner,
                        &mut time_to_verdict,
                        &mut reports,
                    );
                }
            }
        }
    });

    // Refutation precedence: when the fixed-input scheme won with its weaker
    // all-zeros-input equivalence claim but a functional scheme *also*
    // finished and proved the circuits differ, the refutation stands (the
    // time to the first verdict is kept as the race telemetry).
    if winner == Some(Scheme::FixedInput)
        && verdict
            .map(Equivalence::considered_equivalent)
            .unwrap_or(false)
    {
        if let Some(refutation) = reports.iter().find(|r| {
            r.scheme != Scheme::FixedInput && r.verdict == Some(Equivalence::NotEquivalent)
        }) {
            verdict = refutation.verdict;
            winner = Some(refutation.scheme);
        }
    }

    let mut result = combine(start, reports, verdict, winner, time_to_verdict);
    result.predicted = plan.predicted;
    result.shared = plan.shared;
    result.shared_reason = plan.shared_reason;
    result.escalation = escalation;
    // Every scheme's workspaces are gone by now (the scope joined all
    // workers), so the store's flushed counters are complete.
    result.shared_store = match (store, before) {
        (Some(store), Some(before)) => Some(SharedStoreReport::delta(&before, &store.stats())),
        _ => None,
    };
    finish_race(race_span, &result);
    result
}

/// Closes a race's trace span with its outcome and folds the outcome
/// counters into the metrics registry.
fn finish_race(span: obs::trace::Span, result: &PortfolioResult) {
    let cancelled = result.schemes.iter().filter(|r| r.cancelled).count() as u64;
    obs::metrics::add(obs::metrics::PF_CANCELLATIONS, cancelled);
    if result.winner.is_some() {
        obs::metrics::observe_ns(
            obs::metrics::HIST_VERDICT_NS,
            result.time_to_verdict.as_nanos() as u64,
        );
    }
    span.end(&[
        ("verdict", result.verdict.to_string().into()),
        (
            "winner",
            result.winner.map(|w| w.name()).unwrap_or("none").into(),
        ),
        ("verdict_us", result.time_to_verdict.into()),
        ("cancelled", cancelled.into()),
        (
            "escalation",
            result
                .escalation
                .map(EscalationReason::as_str)
                .unwrap_or("none")
                .into(),
        ),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panicking_scheme_is_reported_as_failed() {
        let report = catch_scheme(Scheme::Simulative, true, || {
            panic!("miter blew up on qubit 7")
        });
        assert_eq!(report.scheme, Scheme::Simulative);
        assert!(!report.conclusive);
        assert!(!report.cancelled);
        assert_eq!(report.verdict, None);
        let error = report.error.expect("panic must surface as an error");
        assert!(error.contains("panicked"), "{error}");
        assert!(error.contains("miter blew up on qubit 7"), "{error}");
        // Shared-store races must keep the rate finite even for a scheme
        // that died before its first canonical lookup.
        assert_eq!(report.cross_thread_hit_rate, Some(0.0));
        let private = catch_scheme(Scheme::Simulative, false, || panic!("boom"));
        assert_eq!(private.cross_thread_hit_rate, None);
    }

    #[test]
    fn shared_store_report_delta_is_finite_on_an_untouched_store() {
        // A race cancelled before any scheme interned anything produces
        // identical start/end snapshots: every counter is zero and the hit
        // rate must be 0.0, not NaN (the vendored JSON writer rejects
        // non-finite numbers outright).
        let stats = SharedStoreStats::default();
        let report = SharedStoreReport::delta(&stats, &stats);
        assert_eq!(report.intern_hits, 0);
        assert_eq!(report.cross_thread_hit_rate, 0.0);
        assert!(report.cross_thread_hit_rate.is_finite());
        let json = serde_json::to_string(&report).expect("report must serialize");
        assert!(
            json.contains("\"cross_thread_hit_rate\":0"),
            "rate must render as a number, not null: {json}"
        );
    }

    #[test]
    fn scheme_names_are_static_and_stable() {
        use qcec::Strategy;
        assert_eq!(
            Scheme::Functional(Strategy::Proportional).name(),
            "functional(proportional)"
        );
        assert_eq!(Scheme::Simulative.name(), "simulative");
        assert_eq!(
            Scheme::DynamicFunctional(Strategy::Reference).name(),
            "dynamic-functional(reference)"
        );
        assert_eq!(Scheme::FixedInput.name(), "fixed-input");
        assert_eq!(Scheme::FixedInput.to_string(), "fixed-input");
    }
}
