//! The scheme-racing engine.

use circuit::QuantumCircuit;
use dd::MemoryStats;
use dd::{Budget, CancelToken, LimitExceeded, SharedStore, SharedStoreStats};
use qcec::{
    check_functional_equivalence_in, check_simulative_equivalence_in, verify_dynamic_functional_in,
    verify_fixed_input_in, CheckError, Configuration, DynamicCheckError, Equivalence, Strategy,
};
use sim::{ExtractionConfig, SimError};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One verification scheme the portfolio can race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Scheme {
    /// Miter-based functional equivalence of unitary circuits with the given
    /// gate schedule (requires both circuits to be free of dynamic
    /// primitives).
    Functional(Strategy),
    /// Random-stimulus simulation of unitary circuits; refutes equivalence
    /// conclusively, confirms it only probabilistically.
    Simulative,
    /// The paper's Section 4 flow — unitary reconstruction followed by a
    /// functional check with the given gate schedule. Handles dynamic
    /// circuits (static circuits pass through the reconstruction unchanged).
    DynamicFunctional(Strategy),
    /// The paper's Section 5 flow — compare complete measurement-outcome
    /// distributions for the all-zeros input.
    FixedInput,
}

impl Scheme {
    /// Short stable name used in reports and benchmarks.
    pub fn name(self) -> String {
        match self {
            Scheme::Functional(strategy) => format!("functional({})", strategy_name(strategy)),
            Scheme::Simulative => "simulative".to_string(),
            Scheme::DynamicFunctional(strategy) => {
                format!("dynamic-functional({})", strategy_name(strategy))
            }
            Scheme::FixedInput => "fixed-input".to_string(),
        }
    }
}

fn strategy_name(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::Reference => "reference",
        Strategy::OneToOne => "one-to-one",
        Strategy::Proportional => "proportional",
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Configuration of a portfolio run.
#[derive(Debug, Clone)]
pub struct PortfolioConfig {
    /// Configuration shared by the underlying checks.
    pub configuration: Configuration,
    /// Extraction settings for the fixed-input scheme.
    pub extraction: ExtractionConfig,
    /// Schemes to race; empty selects [`applicable_schemes`] automatically.
    pub schemes: Vec<Scheme>,
    /// Optional per-scheme decision-diagram node budget. The budget keeps
    /// its per-scheme meaning under [`shared_package`](Self::shared_package):
    /// each scheme is metered on the nodes *it* allocated into the shared
    /// store, so reusing a competitor's node costs nothing.
    pub node_limit: Option<usize>,
    /// Optional leaf budget for the fixed-input scheme.
    pub leaf_limit: Option<usize>,
    /// Optional wall-clock deadline per race, enforced inside decision-
    /// diagram allocation (reported as a scheme error when it trips).
    pub deadline: Option<Duration>,
    /// Race all schemes against one shared decision-diagram store
    /// ([`dd::SharedStore`]) instead of private per-scheme packages, so the
    /// miter, simulative and extraction walkers reuse each other's gate
    /// diagrams and subdiagrams (default: `true`). The tiny-instance
    /// sequential fast path is unaffected either way.
    pub shared_package: bool,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            configuration: Configuration::default(),
            extraction: ExtractionConfig::default(),
            schemes: Vec::new(),
            node_limit: None,
            leaf_limit: None,
            deadline: None,
            shared_package: true,
        }
    }
}

/// Telemetry of one scheme's run inside a portfolio.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SchemeReport {
    /// Which scheme ran.
    pub scheme: Scheme,
    /// The verdict it produced, if it finished.
    pub verdict: Option<Equivalence>,
    /// Whether the verdict proves (non-)equivalence.
    pub conclusive: bool,
    /// Whether the scheme was cancelled because a competitor won.
    pub cancelled: bool,
    /// Failure description when the scheme neither finished nor was
    /// cancelled (e.g. node budget exhausted, unsupported circuit).
    pub error: Option<String>,
    /// Wall-clock time the scheme ran for (serialized as seconds).
    pub duration: Duration,
    /// Peak decision-diagram size observed (miter size for functional
    /// schemes, extraction leaves for the fixed-input scheme).
    pub peak_nodes: Option<usize>,
    /// Fraction of decision-diagram compute-table lookups served from the
    /// lossy caches, when the scheme ran far enough to report it.
    pub cache_hit_rate: Option<f64>,
    /// Decision-diagram garbage-collection runs during the scheme.
    pub gc_runs: Option<usize>,
    /// Live nodes of the shared store as this scheme finished (`None` when
    /// racing with private packages).
    pub shared_nodes: Option<usize>,
    /// Fraction of this scheme's canonical-store hits served by structure
    /// another racing scheme built first. `None` with private packages;
    /// always `Some` (down to `0.0` for a scheme cancelled before its first
    /// canonical lookup — never NaN/null) when racing on a shared store.
    pub cross_thread_hit_rate: Option<f64>,
}

/// Telemetry of the shared decision-diagram store behind one portfolio race
/// (see [`dd::SharedStoreStats`]; reported into the batch JSON as the
/// per-pair `shared_store` block).
///
/// Counter fields are *per-race deltas*: a warm store kept alive by the
/// batch driver accumulates across pairs, so each race reports the
/// difference between its start and end snapshots. Gauges (`shared_nodes`,
/// `peak_nodes`, `complex_entries`) are end-of-race snapshots.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SharedStoreReport {
    /// Live nodes when the race ended.
    pub shared_nodes: usize,
    /// Nodes already live when the race started: the warm carry-over a
    /// pooled store handed this pair (`0` for a fresh store).
    pub carried_over_nodes: usize,
    /// Peak live nodes over the store's lifetime so far.
    pub peak_nodes: usize,
    /// Nodes allocated across all schemes of this race (unique-table
    /// misses).
    pub allocated_nodes: u64,
    /// Canonical lookups (unique tables + shared gate cache) answered by an
    /// existing entry.
    pub intern_hits: u64,
    /// Subset of `intern_hits` served by a *different* scheme's entry.
    pub cross_thread_hits: u64,
    /// Subset of `cross_thread_hits` served by structure predating this
    /// race — warm cross-pair reuse.
    pub warm_hits: u64,
    /// `cross_thread_hits / intern_hits`, the headline sharing metric.
    /// `0.0` (never NaN or null) when the race was over before its first
    /// canonical lookup — the JSON report must stay machine-readable.
    pub cross_thread_hit_rate: f64,
    /// Store-level garbage collections during this race (sole-attachment
    /// and barrier).
    pub gc_runs: usize,
    /// Subset of `gc_runs` that ran as mid-race safe-point barrier
    /// collections with the other schemes parked.
    pub gc_barrier_runs: usize,
    /// Live interned complex weights at race end.
    pub complex_entries: usize,
}

impl SharedStoreReport {
    /// Builds the per-race report from snapshots taken at race start and
    /// end (identical snapshots — a race that never touched the store —
    /// yield all-zero deltas).
    fn delta(start: &SharedStoreStats, end: &SharedStoreStats) -> Self {
        let intern_hits = end.intern_hits.saturating_sub(start.intern_hits);
        let cross_thread_hits = end
            .cross_thread_hits
            .saturating_sub(start.cross_thread_hits);
        SharedStoreReport {
            shared_nodes: end.live_nodes,
            carried_over_nodes: start.live_nodes,
            peak_nodes: end.peak_nodes,
            allocated_nodes: end.allocated_nodes.saturating_sub(start.allocated_nodes),
            intern_hits,
            cross_thread_hits,
            warm_hits: end.warm_hits.saturating_sub(start.warm_hits),
            cross_thread_hit_rate: if intern_hits == 0 {
                0.0
            } else {
                cross_thread_hits as f64 / intern_hits as f64
            },
            gc_runs: end.gc_runs.saturating_sub(start.gc_runs),
            gc_barrier_runs: end.gc_barrier_runs.saturating_sub(start.gc_barrier_runs),
            complex_entries: end.complex_entries,
        }
    }
}

/// Outcome of a portfolio race.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PortfolioResult {
    /// The combined verdict (see the crate docs for verdict semantics).
    pub verdict: Equivalence,
    /// Scheme that produced the verdict, if any scheme finished.
    pub winner: Option<Scheme>,
    /// Wall time from launch until the winning verdict arrived.
    pub time_to_verdict: Duration,
    /// Wall time until every worker had stopped (losers unwind after
    /// cancellation, so this stays close to `time_to_verdict`).
    pub total_time: Duration,
    /// Telemetry of every scheme, in completion order.
    pub schemes: Vec<SchemeReport>,
    /// Shared-store telemetry when the race used one
    /// ([`PortfolioConfig::shared_package`]); `None` for private-package
    /// races and the sequential fast path.
    pub shared_store: Option<SharedStoreReport>,
}

/// Selects the schemes worth racing for a circuit pair.
///
/// Static pairs race the three miter schedules against random-stimulus
/// simulation; pairs with dynamic primitives race the Section 4
/// reconstruction flow (all three schedules) against the Section 5
/// fixed-input extraction.
///
/// The first scheme in the list is the heuristically fastest one (extraction
/// for dynamic pairs, the proportional schedule for static ones);
/// [`verify_portfolio`] runs it inline on the calling thread, so when the
/// favourite wins, the race costs essentially no overhead over running the
/// fastest scheme alone.
pub fn applicable_schemes(left: &QuantumCircuit, right: &QuantumCircuit) -> Vec<Scheme> {
    let strategies = [
        Strategy::Proportional,
        Strategy::OneToOne,
        Strategy::Reference,
    ];
    if left.is_dynamic() || right.is_dynamic() {
        let mut schemes = vec![Scheme::FixedInput];
        schemes.extend(strategies.iter().map(|&s| Scheme::DynamicFunctional(s)));
        schemes
    } else {
        let mut schemes: Vec<Scheme> = strategies.iter().map(|&s| Scheme::Functional(s)).collect();
        schemes.push(Scheme::Simulative);
        schemes
    }
}

fn conclusive(verdict: Equivalence) -> bool {
    matches!(
        verdict,
        Equivalence::Equivalent
            | Equivalence::EquivalentUpToGlobalPhase
            | Equivalence::NotEquivalent
    )
}

/// Runs a single scheme under `budget` and reports its telemetry.
///
/// This is the worker body of [`verify_portfolio`], exposed so benchmarks
/// and tests can time individual schemes under identical conditions. The
/// scheme uses a private decision-diagram package; see [`run_scheme_in`] to
/// run it against a shared store.
pub fn run_scheme(
    scheme: Scheme,
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
    budget: &Budget,
) -> SchemeReport {
    run_scheme_in(scheme, left, right, config, budget, None)
}

/// [`run_scheme`] with an optional shared decision-diagram store: the
/// scheme's packages then attach as workspaces of `store`, interning into
/// the same canonical node space as every other scheme racing on it.
pub fn run_scheme_in(
    scheme: Scheme,
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
    budget: &Budget,
    store: Option<&Arc<SharedStore>>,
) -> SchemeReport {
    let start = Instant::now();
    let (verdict, peak_nodes, error, cancelled, memory) = match scheme {
        Scheme::Functional(strategy) => {
            let configuration = Configuration {
                strategy,
                ..config.configuration
            };
            match check_functional_equivalence_in(left, right, &configuration, budget, store) {
                Ok(check) => (
                    Some(check.equivalence),
                    Some(check.peak_diagram_size),
                    None,
                    false,
                    Some(check.memory),
                ),
                Err(error) => classify_check_error(error),
            }
        }
        Scheme::Simulative => {
            match check_simulative_equivalence_in(left, right, &config.configuration, budget, store)
            {
                Ok(check) => (
                    Some(check.equivalence),
                    None,
                    None,
                    false,
                    Some(check.memory),
                ),
                Err(error) => classify_check_error(error),
            }
        }
        Scheme::DynamicFunctional(strategy) => {
            let configuration = Configuration {
                strategy,
                ..config.configuration
            };
            match verify_dynamic_functional_in(left, right, &configuration, budget, store) {
                Ok(report) => (
                    Some(report.equivalence),
                    Some(report.check.peak_diagram_size),
                    None,
                    false,
                    Some(report.check.memory),
                ),
                Err(error) => classify_dynamic_error(error),
            }
        }
        Scheme::FixedInput => {
            match verify_fixed_input_in(
                left,
                right,
                &config.configuration,
                &config.extraction,
                budget,
                store,
            ) {
                Ok(report) => {
                    let support =
                        report.reference_distribution.len() + report.dynamic_distribution.len();
                    (
                        Some(report.equivalence),
                        Some(support),
                        None,
                        false,
                        Some(report.memory),
                    )
                }
                Err(error) => classify_dynamic_error(error),
            }
        }
    };
    SchemeReport {
        scheme,
        verdict,
        // `ProbablyEquivalent` (simulative agreement) is advisory, so it
        // never counts as conclusive and never cancels competitors.
        conclusive: verdict.map(conclusive).unwrap_or(false),
        cancelled,
        error,
        duration: start.elapsed(),
        peak_nodes,
        cache_hit_rate: memory.and_then(|m| m.compute_hit_rate()),
        gc_runs: memory.map(|m| m.gc_runs),
        shared_nodes: memory.and_then(|m| (m.shared_nodes > 0).then_some(m.shared_nodes)),
        // A scheme racing on a shared store always reports a finite rate:
        // a scheme cancelled before its first canonical lookup divides 0
        // hits by 0 lookups, which must surface as 0.0 — a NaN would make
        // the JSON report unserializable and a null look like a private
        // race.
        cross_thread_hit_rate: match (&memory, store) {
            (Some(m), Some(_)) => Some(m.cross_thread_hit_rate().unwrap_or(0.0)),
            (Some(m), None) => m.cross_thread_hit_rate(),
            (None, Some(_)) => Some(0.0),
            (None, None) => None,
        },
    }
}

/// [`run_scheme_in`] hardened against scheme panics: a panicking scheme is
/// reported as failed (with the panic message as its error) instead of
/// tearing down the whole race. Shared-store locks a panicking scheme may
/// have poisoned are recovered by the store itself (see `dd::store`).
fn run_scheme_caught(
    scheme: Scheme,
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
    budget: &Budget,
    store: Option<&Arc<SharedStore>>,
) -> SchemeReport {
    catch_scheme(scheme, store.is_some(), || {
        run_scheme_in(scheme, left, right, config, budget, store)
    })
}

/// Converts a panicking scheme body into a failed [`SchemeReport`].
fn catch_scheme(scheme: Scheme, shared: bool, run: impl FnOnce() -> SchemeReport) -> SchemeReport {
    let start = Instant::now();
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)).unwrap_or_else(|payload| {
        SchemeReport {
            scheme,
            verdict: None,
            conclusive: false,
            cancelled: false,
            error: Some(format!(
                "scheme panicked: {}",
                panic_message(payload.as_ref())
            )),
            duration: start.elapsed(),
            peak_nodes: None,
            cache_hit_rate: None,
            gc_runs: None,
            shared_nodes: None,
            cross_thread_hit_rate: shared.then_some(0.0),
        }
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(message) = payload.downcast_ref::<&str>() {
        message
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message
    } else {
        "non-string panic payload"
    }
}

type Classified = (
    Option<Equivalence>,
    Option<usize>,
    Option<String>,
    bool,
    Option<MemoryStats>,
);

fn classify_check_error(error: CheckError) -> Classified {
    match error {
        CheckError::LimitExceeded(LimitExceeded::Cancelled) => (None, None, None, true, None),
        other => (None, None, Some(other.to_string()), false, None),
    }
}

fn classify_dynamic_error(error: DynamicCheckError) -> Classified {
    match error {
        DynamicCheckError::Check(CheckError::LimitExceeded(LimitExceeded::Cancelled))
        | DynamicCheckError::Simulation(SimError::Interrupted(LimitExceeded::Cancelled)) => {
            (None, None, None, true, None)
        }
        other => (None, None, Some(other.to_string()), false, None),
    }
}

/// Instances this small finish in microseconds under any scheme; spawning
/// threads would cost more than simply trying the schemes one after another.
fn is_tiny(left: &QuantumCircuit, right: &QuantumCircuit) -> bool {
    left.num_qubits().max(right.num_qubits()) <= 8 && left.len().max(right.len()) <= 256
}

/// Scheme order for the sequential small-instance path: the proportional
/// schedule first (QCEC's default, typically fastest on near-equivalent
/// pairs), then the fixed-input extraction, then the remaining schedules.
fn sequential_order(left: &QuantumCircuit, right: &QuantumCircuit) -> Vec<Scheme> {
    if left.is_dynamic() || right.is_dynamic() {
        vec![
            Scheme::DynamicFunctional(Strategy::Proportional),
            Scheme::FixedInput,
            Scheme::DynamicFunctional(Strategy::OneToOne),
            Scheme::DynamicFunctional(Strategy::Reference),
        ]
    } else {
        vec![
            Scheme::Functional(Strategy::Proportional),
            Scheme::Functional(Strategy::OneToOne),
            Scheme::Functional(Strategy::Reference),
            Scheme::Simulative,
        ]
    }
}

/// Folds scheme reports into the final result: first conclusive verdict
/// wins; otherwise the strongest advisory verdict is used.
fn combine(
    start: Instant,
    reports: Vec<SchemeReport>,
    verdict: Option<Equivalence>,
    winner: Option<Scheme>,
    time_to_verdict: Option<Duration>,
) -> PortfolioResult {
    let total_time = start.elapsed();
    let (verdict, winner) = match verdict {
        Some(verdict) => (Some(verdict), winner),
        None => match reports
            .iter()
            .find(|r| r.verdict == Some(Equivalence::ProbablyEquivalent))
        {
            Some(report) => (report.verdict, Some(report.scheme)),
            None => (None, None),
        },
    };
    PortfolioResult {
        verdict: verdict.unwrap_or(Equivalence::NoInformation),
        winner,
        time_to_verdict: time_to_verdict.unwrap_or(total_time),
        total_time,
        schemes: reports,
        shared_store: None,
    }
}

/// Tries the schemes one after another on the calling thread — the fast path
/// for tiny instances, where thread spawn/join would dominate the wall time.
/// A warm store (from the batch driver's pool) is still honoured: each
/// scheme attaches a workspace in turn, so cross-*pair* reuse works even for
/// instances too small to race.
fn verify_sequential(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
    schemes: Vec<Scheme>,
    budget: &Budget,
    store: Option<&Arc<SharedStore>>,
) -> PortfolioResult {
    let start = Instant::now();
    let mut reports = Vec::new();
    let mut verdict = None;
    let mut winner = None;
    let mut time_to_verdict = None;
    for scheme in schemes {
        let report = run_scheme_caught(scheme, left, right, config, budget, store);
        let conclusive = report.conclusive;
        if conclusive {
            verdict = report.verdict;
            winner = Some(report.scheme);
            time_to_verdict = Some(start.elapsed());
        }
        reports.push(report);
        if conclusive {
            break;
        }
    }
    combine(start, reports, verdict, winner, time_to_verdict)
}

/// Races all configured (or [`applicable_schemes`]) verification schemes for
/// a circuit pair across `std::thread` workers and returns the first
/// conclusive verdict plus per-scheme telemetry.
///
/// By default the workers race against one shared decision-diagram store
/// ([`PortfolioConfig::shared_package`]): whichever scheme builds a gate
/// diagram or subdiagram first, the others get it as a cache hit — the
/// miter, the simulative check and the extraction walkers intern largely
/// the same structure. Set the flag to `false` for fully private
/// per-scheme packages. The workers additionally share one
/// [`CancelToken`], so the moment a conclusive verdict arrives the losing
/// schemes stop burning cores and unwind. The wall time of the whole call
/// therefore tracks the *fastest* scheme, while the verdict quality matches
/// the best scheme that could have run alone. Two refinements keep the
/// overhead over the fastest single scheme small:
///
/// * tiny instances (≤ 8 qubits, ≤ 256 operations) skip the threads
///   entirely and try the schemes sequentially — they finish in
///   microseconds, below the cost of a thread spawn;
/// * in a race, the heuristically fastest scheme runs inline on the calling
///   thread while only the competitors are spawned.
pub fn verify_portfolio(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
) -> PortfolioResult {
    verify_portfolio_in(left, right, config, None)
}

/// [`verify_portfolio`] against an optional *warm* shared store.
///
/// When `warm_store` is `Some`, the race attaches to it instead of creating
/// a fresh [`SharedStore`]: canonical nodes and the gate-diagram L2 cache
/// left behind by earlier races (the batch driver GCs between pairs, so
/// only GC roots carry over) are reused, reported as
/// [`SharedStoreReport::warm_hits`]. The store's warm-reuse epoch is marked
/// here ([`SharedStore::begin_race`]); telemetry in the result is the
/// per-race delta. A warm store is honoured even on the tiny-instance
/// sequential fast path.
pub fn verify_portfolio_in(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
    warm_store: Option<&Arc<SharedStore>>,
) -> PortfolioResult {
    let auto = config.schemes.is_empty();
    let schemes = if auto {
        applicable_schemes(left, right)
    } else {
        config.schemes.clone()
    };
    let cancel = CancelToken::new();

    // One shared absolute deadline for the whole race, fixed up front so
    // every scheme (including late-starting workers) counts down together.
    let deadline_at = config.deadline.map(|timeout| Instant::now() + timeout);
    let make_budget = || {
        let mut budget = Budget::unlimited().with_cancel_token(cancel.clone());
        if let Some(max_nodes) = config.node_limit {
            budget = budget.with_node_limit(max_nodes);
        }
        if let Some(max_leaves) = config.leaf_limit {
            budget = budget.with_leaf_limit(max_leaves);
        }
        if let Some(at) = deadline_at {
            budget = budget.with_deadline_at(at);
        }
        budget
    };

    if auto && is_tiny(left, right) {
        let order = sequential_order(left, right);
        let before = warm_store.map(|store| {
            store.begin_race();
            store.stats()
        });
        let mut result = verify_sequential(left, right, config, order, &make_budget(), warm_store);
        if let (Some(store), Some(before)) = (warm_store, before) {
            result.shared_store = Some(SharedStoreReport::delta(&before, &store.stats()));
        }
        return result;
    }

    // Shared-package racing: one concurrent store for the whole race — warm
    // from the pool, or fresh — so every scheme interning the same gate
    // diagram or subdiagram gets the other schemes' work as cache hits
    // instead of rebuilding it.
    let store = match warm_store {
        Some(store) => Some(Arc::clone(store)),
        None => config.shared_package.then(SharedStore::new),
    };
    let before = store.as_ref().map(|store| {
        store.begin_race();
        store.stats()
    });

    let start = Instant::now();
    let mut reports: Vec<SchemeReport> = Vec::with_capacity(schemes.len());
    let mut verdict: Option<Equivalence> = None;
    let mut winner: Option<Scheme> = None;
    let mut time_to_verdict: Option<Duration> = None;

    std::thread::scope(|scope| {
        // Reports travel with the race-relative instant their scheme
        // finished, so `time_to_verdict` reflects when the verdict was
        // *produced*, not when the collector got around to processing it
        // (the collector is busy running the inline favourite).
        let (sender, receiver) = mpsc::channel::<(SchemeReport, Duration)>();
        // Race schemes[1..] on worker threads …
        for &scheme in &schemes[1..] {
            let budget = make_budget();
            let sender = sender.clone();
            let cancel = cancel.clone();
            let store = store.as_ref();
            scope.spawn(move || {
                let report = run_scheme_caught(scheme, left, right, config, &budget, store);
                let finished_at = start.elapsed();
                if report.conclusive {
                    // Cancel from inside the worker so losers start unwinding
                    // even before the collector thread observes the report.
                    cancel.cancel();
                }
                // The receiver only disappears once the scope ends, but be
                // tolerant anyway: a worker must never panic on send.
                let _ = sender.send((report, finished_at));
            });
        }
        drop(sender);

        // … and the favourite inline on the calling thread: when it wins —
        // the common case, given the ordering of `applicable_schemes` — the
        // race adds no thread-spawn latency over the fastest single scheme.
        let mut handle = |report: SchemeReport, finished_at: Duration| {
            // The race winner is the conclusive scheme that *finished*
            // first — reports can be handled out of finish order because
            // the collector is busy with the inline scheme.
            if report.conclusive && time_to_verdict.map(|t| finished_at < t).unwrap_or(true) {
                verdict = report.verdict;
                winner = Some(report.scheme);
                time_to_verdict = Some(finished_at);
            }
            reports.push(report);
        };
        let inline_report = run_scheme_caught(
            schemes[0],
            left,
            right,
            config,
            &make_budget(),
            store.as_ref(),
        );
        let inline_finished_at = start.elapsed();
        if inline_report.conclusive {
            cancel.cancel();
        }
        handle(inline_report, inline_finished_at);

        while let Ok((report, finished_at)) = receiver.recv() {
            handle(report, finished_at);
        }
    });

    // Refutation precedence: when the fixed-input scheme won with its weaker
    // all-zeros-input equivalence claim but a functional scheme *also*
    // finished and proved the circuits differ, the refutation stands (the
    // time to the first verdict is kept as the race telemetry).
    if winner == Some(Scheme::FixedInput)
        && verdict
            .map(Equivalence::considered_equivalent)
            .unwrap_or(false)
    {
        if let Some(refutation) = reports.iter().find(|r| {
            r.scheme != Scheme::FixedInput && r.verdict == Some(Equivalence::NotEquivalent)
        }) {
            verdict = refutation.verdict;
            winner = Some(refutation.scheme);
        }
    }

    let mut result = combine(start, reports, verdict, winner, time_to_verdict);
    // Every scheme's workspaces are gone by now (the scope joined all
    // workers), so the store's flushed counters are complete.
    result.shared_store = match (store, before) {
        (Some(store), Some(before)) => Some(SharedStoreReport::delta(&before, &store.stats())),
        _ => None,
    };
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panicking_scheme_is_reported_as_failed() {
        let report = catch_scheme(Scheme::Simulative, true, || {
            panic!("miter blew up on qubit 7")
        });
        assert_eq!(report.scheme, Scheme::Simulative);
        assert!(!report.conclusive);
        assert!(!report.cancelled);
        assert_eq!(report.verdict, None);
        let error = report.error.expect("panic must surface as an error");
        assert!(error.contains("panicked"), "{error}");
        assert!(error.contains("miter blew up on qubit 7"), "{error}");
        // Shared-store races must keep the rate finite even for a scheme
        // that died before its first canonical lookup.
        assert_eq!(report.cross_thread_hit_rate, Some(0.0));
        let private = catch_scheme(Scheme::Simulative, false, || panic!("boom"));
        assert_eq!(private.cross_thread_hit_rate, None);
    }

    #[test]
    fn shared_store_report_delta_is_finite_on_an_untouched_store() {
        // A race cancelled before any scheme interned anything produces
        // identical start/end snapshots: every counter is zero and the hit
        // rate must be 0.0, not NaN (the vendored JSON writer rejects
        // non-finite numbers outright).
        let stats = SharedStoreStats::default();
        let report = SharedStoreReport::delta(&stats, &stats);
        assert_eq!(report.intern_hits, 0);
        assert_eq!(report.cross_thread_hit_rate, 0.0);
        assert!(report.cross_thread_hit_rate.is_finite());
        let json = serde_json::to_string(&report).expect("report must serialize");
        assert!(
            json.contains("\"cross_thread_hit_rate\":0"),
            "rate must render as a number, not null: {json}"
        );
    }
}
