//! The scheme registry: one [`SchemeDescriptor`] per verification scheme.
//!
//! PRs 1–4 grew the engine around a hardcoded [`Scheme`] enum whose
//! behaviour was scattered over `match` arms — applicability, display
//! names, launch ordering and the scheme bodies each lived in their own
//! list. This module replaces all of that with a flat **registry**: every
//! scheme is a descriptor carrying
//!
//! * a stable [`&'static str` name](SchemeDescriptor::name) (formatted once,
//!   at compile time — reports no longer allocate a `String` per lookup),
//! * an [applicability predicate](SchemeDescriptor::applicable) over the
//!   circuit pair,
//! * static cost features ([`CostProfile`]) and the heuristic launch ranks
//!   the racing/sequential orders are derived from, and
//! * a [runner](SchemeDescriptor::runner) — a plain function pointer that
//!   executes the scheme under a budget against an optional shared store.
//!
//! The engine is a launcher over registry entries; the
//! [scheduler](crate::scheduler) decides *which* entries to launch and in
//! what order. Adding a scheme means adding one descriptor here — no engine
//! changes.

use crate::engine::PortfolioConfig;
use circuit::QuantumCircuit;
use dd::{Budget, LimitExceeded, MemoryStats, SharedStore};
use qcec::{
    check_functional_equivalence_in, check_simulative_equivalence_in, verify_dynamic_functional_in,
    verify_fixed_input_in, CheckError, Configuration, DynamicCheckError, Equivalence, Strategy,
};
use sim::SimError;
use std::sync::Arc;

/// One verification scheme the portfolio can launch.
///
/// The enum is the scheme's *identity* — it names the scheme in reports,
/// JSON and telemetry keys. Everything behavioural (applicability, cost
/// features, the runner) lives in the scheme's [`SchemeDescriptor`],
/// obtained via [`Scheme::descriptor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Scheme {
    /// Miter-based functional equivalence of unitary circuits with the given
    /// gate schedule (requires both circuits to be free of dynamic
    /// primitives).
    Functional(Strategy),
    /// Random-stimulus simulation of unitary circuits; refutes equivalence
    /// conclusively, confirms it only probabilistically.
    Simulative,
    /// The paper's Section 4 flow — unitary reconstruction followed by a
    /// functional check with the given gate schedule. Handles dynamic
    /// circuits (static circuits pass through the reconstruction unchanged).
    DynamicFunctional(Strategy),
    /// The paper's Section 5 flow — compare complete measurement-outcome
    /// distributions for the all-zeros input.
    FixedInput,
}

impl Scheme {
    /// Short stable name used in reports, benchmarks and telemetry keys.
    ///
    /// The name is a static string carried by the scheme's registry
    /// descriptor — no allocation per call.
    pub fn name(self) -> &'static str {
        self.descriptor().name
    }

    /// The registry entry describing this scheme.
    ///
    /// # Panics
    ///
    /// Never — every `Scheme` value has exactly one registry entry (asserted
    /// by the crate's tests).
    pub fn descriptor(self) -> &'static SchemeDescriptor {
        REGISTRY
            .iter()
            .find(|descriptor| descriptor.scheme == self)
            .expect("every scheme has a registry entry")
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Raw outcome of one scheme execution, before the engine wraps it into a
/// [`SchemeReport`](crate::SchemeReport) with timing attached.
#[derive(Debug)]
pub struct SchemeOutcome {
    /// The verdict, when the scheme finished.
    pub verdict: Option<Equivalence>,
    /// Peak decision-diagram size observed (miter size for functional
    /// schemes, distribution support for the fixed-input scheme).
    pub peak_nodes: Option<usize>,
    /// Failure description when the scheme neither finished nor was
    /// cancelled.
    pub error: Option<String>,
    /// Whether the scheme stopped because a competitor won.
    pub cancelled: bool,
    /// Decision-diagram memory telemetry, when the scheme ran far enough to
    /// report it.
    pub memory: Option<MemoryStats>,
}

/// The runner signature every registry entry provides: execute the scheme on
/// a circuit pair under `budget`, optionally attached to a shared
/// decision-diagram store.
pub type SchemeRunner = fn(
    &QuantumCircuit,
    &QuantumCircuit,
    &PortfolioConfig,
    &Budget,
    Option<&Arc<SharedStore>>,
) -> SchemeOutcome;

/// Static cost features of a scheme, available without any recorded
/// telemetry. The scheduler uses them to break ties and to reason about
/// what a scheme *can* conclude.
#[derive(Debug, Clone, Copy)]
pub struct CostProfile {
    /// Whether the scheme can produce a *conclusive* equivalence verdict.
    /// The simulative check cannot (it only refutes conclusively), so the
    /// scheduler extends any predicted primary wave that would otherwise
    /// consist solely of non-proving schemes — alone they could never
    /// settle an equivalent pair.
    pub proves_equivalence: bool,
    /// Relative prior cost on a typical instance (1.0 = a plain miter
    /// pass). Used only as a deterministic tie-break between schemes with
    /// identical recorded scores.
    pub relative_cost: f64,
}

/// A registry entry: everything the engine and scheduler need to know about
/// one scheme.
#[derive(Debug, Clone, Copy)]
pub struct SchemeDescriptor {
    /// The scheme's identity.
    pub scheme: Scheme,
    /// Stable display/report name (static — formatted once, here).
    pub name: &'static str,
    /// Whether the scheme applies to the given circuit pair.
    pub applicable: fn(&QuantumCircuit, &QuantumCircuit) -> bool,
    /// Position in the threaded race launch order (0 = the heuristic
    /// favourite, run inline on the calling thread).
    pub race_rank: u8,
    /// Position in the tiny-instance sequential try order.
    pub sequential_rank: u8,
    /// Static cost features.
    pub cost: CostProfile,
    /// The scheme body.
    pub runner: SchemeRunner,
}

fn static_pair(left: &QuantumCircuit, right: &QuantumCircuit) -> bool {
    !(left.is_dynamic() || right.is_dynamic())
}

fn dynamic_pair(left: &QuantumCircuit, right: &QuantumCircuit) -> bool {
    left.is_dynamic() || right.is_dynamic()
}

/// The scheme registry.
///
/// Race ranks reproduce the historical launch orders: static pairs lead
/// with the proportional miter schedule, dynamic pairs with the fixed-input
/// extraction. Sequential ranks reproduce the tiny-instance try orders
/// (proportional schedule first in both cases). Ranks only order schemes
/// *within* the applicable subset, so static and dynamic schemes may reuse
/// rank values.
pub static REGISTRY: [SchemeDescriptor; 9] = [
    SchemeDescriptor {
        scheme: Scheme::Functional(Strategy::Proportional),
        name: "functional(proportional)",
        applicable: static_pair,
        race_rank: 0,
        sequential_rank: 0,
        cost: CostProfile {
            proves_equivalence: true,
            relative_cost: 1.0,
        },
        runner: run_functional_proportional,
    },
    SchemeDescriptor {
        scheme: Scheme::Functional(Strategy::Aligned),
        name: "functional(aligned)",
        applicable: static_pair,
        race_rank: 1,
        sequential_rank: 1,
        cost: CostProfile {
            proves_equivalence: true,
            // Near-free on insertion-aligned pairs (routing steps), but on a
            // typical unrelated pair it degrades to a proportional pass plus
            // pointer bookkeeping — so its *prior* sits just above the plain
            // proportional schedule; recorded telemetry learns the
            // insertion-pair advantage per bucket.
            relative_cost: 1.1,
        },
        runner: run_functional_aligned,
    },
    SchemeDescriptor {
        scheme: Scheme::Functional(Strategy::OneToOne),
        name: "functional(one-to-one)",
        applicable: static_pair,
        race_rank: 2,
        sequential_rank: 2,
        cost: CostProfile {
            proves_equivalence: true,
            relative_cost: 1.2,
        },
        runner: run_functional_one_to_one,
    },
    SchemeDescriptor {
        scheme: Scheme::Functional(Strategy::Reference),
        name: "functional(reference)",
        applicable: static_pair,
        race_rank: 3,
        sequential_rank: 3,
        cost: CostProfile {
            proves_equivalence: true,
            relative_cost: 2.0,
        },
        runner: run_functional_reference,
    },
    SchemeDescriptor {
        scheme: Scheme::Simulative,
        name: "simulative",
        applicable: static_pair,
        race_rank: 4,
        sequential_rank: 4,
        cost: CostProfile {
            proves_equivalence: false,
            relative_cost: 0.8,
        },
        runner: run_simulative,
    },
    SchemeDescriptor {
        scheme: Scheme::FixedInput,
        name: "fixed-input",
        applicable: dynamic_pair,
        race_rank: 0,
        sequential_rank: 1,
        cost: CostProfile {
            proves_equivalence: true,
            relative_cost: 0.9,
        },
        runner: run_fixed_input,
    },
    SchemeDescriptor {
        scheme: Scheme::DynamicFunctional(Strategy::Proportional),
        name: "dynamic-functional(proportional)",
        applicable: dynamic_pair,
        race_rank: 1,
        sequential_rank: 0,
        cost: CostProfile {
            proves_equivalence: true,
            relative_cost: 1.0,
        },
        runner: run_dynamic_proportional,
    },
    SchemeDescriptor {
        scheme: Scheme::DynamicFunctional(Strategy::OneToOne),
        name: "dynamic-functional(one-to-one)",
        applicable: dynamic_pair,
        race_rank: 2,
        sequential_rank: 2,
        cost: CostProfile {
            proves_equivalence: true,
            relative_cost: 1.2,
        },
        runner: run_dynamic_one_to_one,
    },
    SchemeDescriptor {
        scheme: Scheme::DynamicFunctional(Strategy::Reference),
        name: "dynamic-functional(reference)",
        applicable: dynamic_pair,
        race_rank: 3,
        sequential_rank: 3,
        cost: CostProfile {
            proves_equivalence: true,
            relative_cost: 2.0,
        },
        runner: run_dynamic_reference,
    },
];

/// The full registry, in declaration order.
pub fn registry() -> &'static [SchemeDescriptor] {
    &REGISTRY
}

/// The registry entries applicable to a circuit pair, in race-launch order
/// (rank 0 — the heuristic favourite — first).
pub fn applicable_descriptors(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
) -> Vec<&'static SchemeDescriptor> {
    let mut schemes: Vec<&'static SchemeDescriptor> = REGISTRY
        .iter()
        .filter(|descriptor| (descriptor.applicable)(left, right))
        .collect();
    schemes.sort_by_key(|descriptor| descriptor.race_rank);
    schemes
}

// ---------------------------------------------------------------------------
// Scheme bodies
// ---------------------------------------------------------------------------

fn run_functional(
    strategy: Strategy,
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
    budget: &Budget,
    store: Option<&Arc<SharedStore>>,
) -> SchemeOutcome {
    let configuration = Configuration {
        strategy,
        ..config.configuration
    };
    match check_functional_equivalence_in(left, right, &configuration, budget, store) {
        Ok(check) => SchemeOutcome {
            verdict: Some(check.equivalence),
            peak_nodes: Some(check.peak_diagram_size),
            error: None,
            cancelled: false,
            memory: Some(check.memory),
        },
        Err(error) => classify_check_error(error),
    }
}

fn run_functional_proportional(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
    budget: &Budget,
    store: Option<&Arc<SharedStore>>,
) -> SchemeOutcome {
    run_functional(Strategy::Proportional, left, right, config, budget, store)
}

fn run_functional_aligned(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
    budget: &Budget,
    store: Option<&Arc<SharedStore>>,
) -> SchemeOutcome {
    run_functional(Strategy::Aligned, left, right, config, budget, store)
}

fn run_functional_one_to_one(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
    budget: &Budget,
    store: Option<&Arc<SharedStore>>,
) -> SchemeOutcome {
    run_functional(Strategy::OneToOne, left, right, config, budget, store)
}

fn run_functional_reference(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
    budget: &Budget,
    store: Option<&Arc<SharedStore>>,
) -> SchemeOutcome {
    run_functional(Strategy::Reference, left, right, config, budget, store)
}

fn run_simulative(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
    budget: &Budget,
    store: Option<&Arc<SharedStore>>,
) -> SchemeOutcome {
    match check_simulative_equivalence_in(left, right, &config.configuration, budget, store) {
        Ok(check) => SchemeOutcome {
            verdict: Some(check.equivalence),
            peak_nodes: None,
            error: None,
            cancelled: false,
            memory: Some(check.memory),
        },
        Err(error) => classify_check_error(error),
    }
}

fn run_dynamic_functional(
    strategy: Strategy,
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
    budget: &Budget,
    store: Option<&Arc<SharedStore>>,
) -> SchemeOutcome {
    let configuration = Configuration {
        strategy,
        ..config.configuration
    };
    match verify_dynamic_functional_in(left, right, &configuration, budget, store) {
        Ok(report) => SchemeOutcome {
            verdict: Some(report.equivalence),
            peak_nodes: Some(report.check.peak_diagram_size),
            error: None,
            cancelled: false,
            memory: Some(report.check.memory),
        },
        Err(error) => classify_dynamic_error(error),
    }
}

fn run_dynamic_proportional(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
    budget: &Budget,
    store: Option<&Arc<SharedStore>>,
) -> SchemeOutcome {
    run_dynamic_functional(Strategy::Proportional, left, right, config, budget, store)
}

fn run_dynamic_one_to_one(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
    budget: &Budget,
    store: Option<&Arc<SharedStore>>,
) -> SchemeOutcome {
    run_dynamic_functional(Strategy::OneToOne, left, right, config, budget, store)
}

fn run_dynamic_reference(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
    budget: &Budget,
    store: Option<&Arc<SharedStore>>,
) -> SchemeOutcome {
    run_dynamic_functional(Strategy::Reference, left, right, config, budget, store)
}

fn run_fixed_input(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
    budget: &Budget,
    store: Option<&Arc<SharedStore>>,
) -> SchemeOutcome {
    match verify_fixed_input_in(
        left,
        right,
        &config.configuration,
        &config.extraction,
        budget,
        store,
    ) {
        Ok(report) => {
            let support = report.reference_distribution.len() + report.dynamic_distribution.len();
            SchemeOutcome {
                verdict: Some(report.equivalence),
                peak_nodes: Some(support),
                error: None,
                cancelled: false,
                memory: Some(report.memory),
            }
        }
        Err(error) => classify_dynamic_error(error),
    }
}

fn classify_check_error(error: CheckError) -> SchemeOutcome {
    let (error, cancelled) = match error {
        CheckError::LimitExceeded(LimitExceeded::Cancelled) => (None, true),
        other => (Some(other.to_string()), false),
    };
    SchemeOutcome {
        verdict: None,
        peak_nodes: None,
        error,
        cancelled,
        memory: None,
    }
}

fn classify_dynamic_error(error: DynamicCheckError) -> SchemeOutcome {
    let (error, cancelled) = match error {
        DynamicCheckError::Check(CheckError::LimitExceeded(LimitExceeded::Cancelled))
        | DynamicCheckError::Simulation(SimError::Interrupted(LimitExceeded::Cancelled)) => {
            (None, true)
        }
        other => (Some(other.to_string()), false),
    };
    SchemeOutcome {
        verdict: None,
        peak_nodes: None,
        error,
        cancelled,
        memory: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scheme_has_exactly_one_registry_entry() {
        for descriptor in registry() {
            let hits = registry()
                .iter()
                .filter(|d| d.scheme == descriptor.scheme)
                .count();
            assert_eq!(hits, 1, "{} registered {hits} times", descriptor.name);
            // The descriptor lookup resolves to the entry itself.
            assert_eq!(descriptor.scheme.name(), descriptor.name);
        }
    }

    #[test]
    fn ranks_are_unique_within_each_applicability_class() {
        for (class, expected) in [(static_pair as fn(&_, &_) -> bool, 5), (dynamic_pair, 4)] {
            let members: Vec<_> = registry()
                .iter()
                .filter(|d| std::ptr::fn_addr_eq(d.applicable, class))
                .collect();
            assert_eq!(members.len(), expected);
            for rank_of in [
                |d: &SchemeDescriptor| d.race_rank,
                |d: &SchemeDescriptor| d.sequential_rank,
            ] {
                let mut ranks: Vec<u8> = members.iter().map(|d| rank_of(d)).collect();
                ranks.sort_unstable();
                let expected_ranks: Vec<u8> = (0..expected as u8).collect();
                assert_eq!(ranks, expected_ranks);
            }
        }
    }
}
