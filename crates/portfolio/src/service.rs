//! Long-lived verification service core.
//!
//! The batch driver ([`crate::batch`]) and the `verifyd` daemon are both
//! thin front-ends over the [`VerificationService`] defined here: a worker
//! pool plus the long-lived state that makes a *resident* checker worth
//! running — the warm [`StorePool`] (one shared decision-diagram store per
//! register width, gate-DD L2 cache and canonical structure surviving
//! across requests), a continuously-folded [`TelemetryStore`] feeding the
//! predictive scheduler, and the process-global `obs` observability
//! substrate (per-request metric deltas, leasable JSONL trace sink).
//!
//! # Lifecycle
//!
//! [`VerificationService::start`] spawns the workers;
//! [`submit`](VerificationService::submit) runs admission control and
//! returns a [`RequestHandle`] immediately (or a [`RejectReason`]);
//! [`RequestHandle::wait`] blocks for the [`RequestOutcome`]. *Dropping* a
//! handle before its outcome arrived cancels the request: the per-request
//! [`CancelToken`] is chained as the parent of every scheme budget (see
//! [`dd::Budget::with_parent_token`]), so a disconnected client's in-flight
//! race unwinds within a few hundred node allocations and its store goes
//! back to the pool. [`drain`](VerificationService::drain) stops admission,
//! finishes everything already admitted, joins the workers and hands the
//! folded telemetry back (saving it crash-safely first when
//! [`ServiceConfig::stats`] is set).
//!
//! # Admission control
//!
//! Capacity is `workers + max_queue`: `workers` requests can be in flight
//! (each holding at most one store checkout, so `workers` is also the bound
//! on simultaneously checked-out shelves) and `max_queue` more may wait.
//! Beyond that, [`submit`](VerificationService::submit) rejects with
//! [`RejectReason::Saturated`] — backpressure the caller can see and act
//! on, instead of an unbounded queue hiding the overload.

use crate::batch::{failed_pair, strip_side_suffix, PairReport, PairSpec, StorePool};
use crate::chain::{self, ChainReport, ChainRequest};
use crate::engine::verify_portfolio_recorded;
use crate::telemetry::TelemetryStore;
use crate::PortfolioConfig;
use circuit::qasm;
use dd::{CancelToken, SharedStore};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Where a request's circuit comes from.
#[derive(Debug, Clone)]
pub enum Source {
    /// Read and parse an OpenQASM file at this path.
    Path(PathBuf),
    /// Parse this string as OpenQASM text.
    Inline(String),
}

impl Source {
    /// Display string used in reports (`<inline>` for inline text).
    pub fn display(&self) -> String {
        match self {
            Source::Path(path) => path.to_string_lossy().into_owned(),
            Source::Inline(_) => "<inline>".to_string(),
        }
    }

    fn read(&self) -> Result<String, String> {
        match self {
            Source::Path(path) => std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display())),
            Source::Inline(text) => Ok(text.clone()),
        }
    }
}

/// One verification request: a circuit pair plus optional per-request
/// resource bounds layered over the service's portfolio defaults.
#[derive(Debug, Clone)]
pub struct Request {
    /// Display name; derived from the left source (or the request id) when
    /// absent.
    pub name: Option<String>,
    /// Reference circuit.
    pub left: Source,
    /// Candidate circuit.
    pub right: Source,
    /// Per-request wall-clock deadline, overriding
    /// [`PortfolioConfig::deadline`]. Mapped onto the race's
    /// [`dd::Budget`] exactly like the config default.
    pub deadline: Option<Duration>,
    /// Per-request decision-diagram node budget, overriding
    /// [`PortfolioConfig::node_limit`].
    pub node_limit: Option<usize>,
    /// Register width hint (max qubits of the pair). When the request at
    /// the *front of the queue* hints the width the finishing request just
    /// used, the between-request store prune is skipped — the next race
    /// inherits the whole working set instead of just the pruned roots.
    /// Purely an optimisation, never affects verdicts; a wrong hint only
    /// wastes one prune's worth of retained memory.
    pub width_hint: Option<usize>,
}

impl Request {
    /// A request for a pair of QASM files with no per-request overrides.
    pub fn from_pair(spec: &PairSpec) -> Request {
        Request {
            name: spec.name.clone(),
            left: Source::Path(PathBuf::from(&spec.left)),
            right: Source::Path(PathBuf::from(&spec.right)),
            deadline: None,
            node_limit: None,
            width_hint: spec.qubits,
        }
    }
}

/// What a worker executes: a single pair or a whole compilation chain.
#[derive(Debug, Clone)]
enum Work {
    Pair(Request),
    Chain(ChainRequest),
}

impl Work {
    fn width_hint(&self) -> Option<usize> {
        match self {
            Work::Pair(request) => request.width_hint,
            Work::Chain(request) => request.width_hint,
        }
    }
}

/// Why [`VerificationService::submit`] turned a request away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// Every worker (store shelf) is busy and the wait queue is full.
    Saturated {
        /// Requests currently racing.
        inflight: usize,
        /// Requests waiting for a worker.
        queued: usize,
        /// Total admission capacity (`workers + max_queue`).
        capacity: usize,
    },
    /// The service is draining (or shut down) and admits nothing new.
    Draining,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::Saturated {
                inflight,
                queued,
                capacity,
            } => write!(
                f,
                "service saturated: {inflight} in flight + {queued} queued >= capacity {capacity}"
            ),
            RejectReason::Draining => write!(f, "service is draining and admits no new requests"),
        }
    }
}

impl std::error::Error for RejectReason {}

/// Configuration of a [`VerificationService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Portfolio configuration applied to every request (per-request
    /// deadline/node-limit overrides are layered on top).
    pub portfolio: PortfolioConfig,
    /// Worker threads, i.e. the maximum number of in-flight requests. Each
    /// in-flight request holds at most one warm-store checkout.
    pub workers: usize,
    /// Admitted requests allowed to *wait* beyond the in-flight ones;
    /// submissions beyond `workers + max_queue` are rejected.
    pub max_queue: usize,
    /// Keep one shared store per register width alive across requests (see
    /// [`StorePool`]); requires [`PortfolioConfig::shared_package`].
    pub warm_stores: bool,
    /// Most register widths the warm-store pool retains (LRU beyond that).
    pub store_shelves: usize,
    /// Persistent telemetry file: loaded at start (missing file = cold
    /// start; unreadable/malformed = warn, run cold and *never* save over
    /// it), folded continuously while the service runs, saved back
    /// crash-safely on [`drain`](VerificationService::drain).
    pub stats: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let batch = crate::batch::BatchOptions::default();
        ServiceConfig {
            portfolio: batch.portfolio,
            workers: batch.workers,
            max_queue: batch.workers * 4,
            warm_stores: batch.warm_stores,
            store_shelves: batch.store_shelves,
            stats: None,
        }
    }
}

/// The result of one request, delivered through [`RequestHandle::wait`].
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// Service-assigned request id (also the pair correlation id of every
    /// trace line the request emitted).
    pub id: u64,
    /// The verification report, same shape as one batch pair.
    pub report: PairReport,
    /// Time the request spent admitted-but-waiting for a worker.
    pub queue_wait: Duration,
    /// Time the request spent executing (dispatch to outcome).
    pub service_time: Duration,
    /// Whether the request's cancel token had tripped by completion
    /// (client disconnect or explicit [`RequestHandle::cancel`]).
    pub cancelled: bool,
    /// Folded `obs::metrics` delta bracketing this request's execution:
    /// an object of non-zero counters and histogram summaries. Caveat: the
    /// registry is process-wide, so with several requests in flight their
    /// deltas overlap — per-request attribution is exact only at
    /// concurrency 1; at higher concurrency this is "what the process did
    /// while this request ran".
    pub metrics: serde::Value,
}

/// The result of one chain request, delivered through [`ChainHandle::wait`].
/// Same envelope as [`RequestOutcome`], with a [`ChainReport`] inside.
#[derive(Debug, Clone)]
pub struct ChainOutcome {
    /// Service-assigned request id (also the trace correlation id).
    pub id: u64,
    /// The chain verification report, one step per adjacent pair.
    pub report: ChainReport,
    /// Time the request spent admitted-but-waiting for a worker.
    pub queue_wait: Duration,
    /// Time the request spent executing (dispatch to outcome).
    pub service_time: Duration,
    /// Whether the request's cancel token had tripped by completion.
    pub cancelled: bool,
    /// Folded `obs::metrics` delta bracketing this chain's execution; same
    /// attribution caveat as [`RequestOutcome::metrics`].
    pub metrics: serde::Value,
}

#[derive(Debug)]
enum WorkReport {
    Pair(Box<PairReport>),
    Chain(ChainReport),
}

#[derive(Debug)]
struct Delivery {
    id: u64,
    report: WorkReport,
    queue_wait: Duration,
    service_time: Duration,
    cancelled: bool,
    metrics: serde::Value,
}

impl Delivery {
    fn into_pair(self) -> RequestOutcome {
        match self.report {
            WorkReport::Pair(report) => RequestOutcome {
                id: self.id,
                report: *report,
                queue_wait: self.queue_wait,
                service_time: self.service_time,
                cancelled: self.cancelled,
                metrics: self.metrics,
            },
            WorkReport::Chain(_) => unreachable!("pair slot delivered a chain report"),
        }
    }

    fn into_chain(self) -> ChainOutcome {
        match self.report {
            WorkReport::Chain(report) => ChainOutcome {
                id: self.id,
                report,
                queue_wait: self.queue_wait,
                service_time: self.service_time,
                cancelled: self.cancelled,
                metrics: self.metrics,
            },
            WorkReport::Pair(_) => unreachable!("chain slot delivered a pair report"),
        }
    }
}

#[derive(Debug)]
struct Slot {
    outcome: Mutex<Option<Delivery>>,
    ready: Condvar,
}

struct Job {
    id: u64,
    work: Work,
    cancel: CancelToken,
    slot: Arc<Slot>,
    admitted_at: Instant,
}

/// Handle of an admitted request.
///
/// Dropping the handle before the outcome arrived *cancels* the request —
/// the disconnect semantics a daemon needs: when a client connection dies,
/// its handles drop and every in-flight race it owned unwinds. Call
/// [`wait`](Self::wait) to consume the handle and block for the outcome, or
/// [`detach`](Self::detach) for deliberate fire-and-forget.
#[derive(Debug)]
pub struct RequestHandle {
    core: HandleCore,
}

/// Handle of an admitted chain request (see [`RequestHandle`] for the
/// drop-cancels semantics, which are identical).
#[derive(Debug)]
pub struct ChainHandle {
    core: HandleCore,
}

/// The state both handle flavours share: id, cancel token, outcome slot,
/// and the drop-cancels arming bit.
#[derive(Debug)]
struct HandleCore {
    id: u64,
    cancel: CancelToken,
    slot: Arc<Slot>,
    disarm: bool,
}

impl HandleCore {
    fn wait(&mut self) -> Delivery {
        self.disarm = true;
        let mut guard = lock(&self.slot.outcome);
        loop {
            if let Some(outcome) = guard.take() {
                return outcome;
            }
            guard = self
                .slot
                .ready
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn wait_timeout(&self, timeout: Duration) -> Option<Delivery> {
        let deadline = Instant::now() + timeout;
        let mut guard = lock(&self.slot.outcome);
        loop {
            if guard.is_some() {
                return guard.take();
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (next, _) = self
                .slot
                .ready
                .wait_timeout(guard, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            guard = next;
        }
    }
}

impl Drop for HandleCore {
    fn drop(&mut self) {
        if !self.disarm {
            // An abandoned handle means an abandoned client: kill the race.
            self.cancel.cancel();
        }
    }
}

impl RequestHandle {
    /// The service-assigned request id.
    pub fn id(&self) -> u64 {
        self.core.id
    }

    /// The request's cancellation token (cloneable; shared with the
    /// race budgets).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.core.cancel
    }

    /// Cancels the request (idempotent). A queued request completes
    /// immediately with a cancellation report; an in-flight race unwinds
    /// cooperatively and reports its schemes as errored/cancelled.
    pub fn cancel(&self) {
        self.core.cancel.cancel();
    }

    /// Blocks until the outcome is delivered and returns it.
    pub fn wait(mut self) -> RequestOutcome {
        self.core.wait().into_pair()
    }

    /// Waits up to `timeout` for the outcome without consuming the handle.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<RequestOutcome> {
        self.core.wait_timeout(timeout).map(Delivery::into_pair)
    }

    /// Detaches the handle: dropping it no longer cancels the request.
    pub fn detach(mut self) {
        self.core.disarm = true;
    }
}

impl ChainHandle {
    /// The service-assigned request id.
    pub fn id(&self) -> u64 {
        self.core.id
    }

    /// The request's cancellation token (cloneable; shared with every
    /// step's race budgets).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.core.cancel
    }

    /// Cancels the chain (idempotent). A queued chain completes immediately
    /// with a cancellation report; an in-flight chain stops before its next
    /// step and its current race unwinds cooperatively.
    pub fn cancel(&self) {
        self.core.cancel.cancel();
    }

    /// Blocks until the outcome is delivered and returns it.
    pub fn wait(mut self) -> ChainOutcome {
        self.core.wait().into_chain()
    }

    /// Waits up to `timeout` for the outcome without consuming the handle.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<ChainOutcome> {
        self.core.wait_timeout(timeout).map(Delivery::into_chain)
    }

    /// Detaches the handle: dropping it no longer cancels the chain.
    pub fn detach(mut self) {
        self.core.disarm = true;
    }
}

/// A point-in-time view of the service, for the daemon's `stats` method.
///
/// Unlike the `service.*` counters in the `obs::metrics` catalog (running
/// sums sampled at admission/dispatch), `queue_depth` and `inflight` here
/// are live gauges read under the queue lock.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ServiceStats {
    /// Worker threads (= max in-flight requests).
    pub workers: usize,
    /// Total admission capacity (`workers + max_queue`).
    pub capacity: usize,
    /// Requests admitted since start.
    pub submitted: u64,
    /// Requests completed (outcome delivered), cancellations included.
    pub completed: u64,
    /// Submissions rejected by admission control.
    pub rejected: u64,
    /// Requests currently waiting for a worker.
    pub queue_depth: usize,
    /// Requests currently executing.
    pub inflight: usize,
    /// Whether the service stopped admitting (drain/shutdown).
    pub draining: bool,
    /// Warm-store checkouts served from a shelf since start.
    pub warm_checkouts: usize,
    /// Between-request store prunes skipped because the next queued
    /// request hinted the same register width (see
    /// [`Request::width_hint`]).
    pub pool_gc_skips: usize,
    /// Register widths with a shelved warm store right now.
    pub shelved_widths: usize,
    /// Workspaces still attached to shelved stores (always 0 unless a
    /// scheme leaked one — see [`StorePool::attached_workspaces`]).
    pub attached_workspaces: usize,
    /// Races recorded into the in-memory telemetry store since start.
    pub telemetry_races: u64,
    /// Seconds since the service started.
    pub uptime_seconds: f64,
}

#[derive(Default)]
struct QueueState {
    queue: VecDeque<Job>,
    inflight: usize,
    draining: bool,
}

struct ServiceShared {
    portfolio: PortfolioConfig,
    workers: usize,
    capacity: usize,
    state: Mutex<QueueState>,
    work_ready: Condvar,
    idle: Condvar,
    pool: Option<StorePool>,
    telemetry: Mutex<TelemetryStore>,
    telemetry_base_races: u64,
    stats_path: Option<PathBuf>,
    stats_load_failed: bool,
    trace_leased: AtomicBool,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    next_id: AtomicU64,
    started: Instant,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The long-lived verification service core. See the module docs.
pub struct VerificationService {
    shared: Arc<ServiceShared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl VerificationService {
    /// Starts the service: loads the persistent telemetry (when
    /// [`ServiceConfig::stats`] is set) and spawns the worker pool.
    pub fn start(config: ServiceConfig) -> VerificationService {
        let (telemetry, load_failed) = match &config.stats {
            None => (TelemetryStore::new(), false),
            Some(path) => match TelemetryStore::load(path) {
                Ok(store) => (store, false),
                Err(error) => {
                    eprintln!(
                        "warning: cannot load stats file {}: {error}; running cold \
                         (and never saving over the damaged file)",
                        path.display()
                    );
                    (TelemetryStore::new(), true)
                }
            },
        };
        Self::start_with(config, telemetry, load_failed)
    }

    /// [`start`](Self::start) with a caller-provided in-memory telemetry
    /// store instead of loading from [`ServiceConfig::stats`]. The batch
    /// front-end uses this to thread its caller's store through a
    /// short-lived service.
    pub fn start_seeded(config: ServiceConfig, telemetry: TelemetryStore) -> VerificationService {
        Self::start_with(config, telemetry, false)
    }

    fn start_with(
        config: ServiceConfig,
        telemetry: TelemetryStore,
        stats_load_failed: bool,
    ) -> VerificationService {
        let workers = config.workers.max(1);
        let pool = (config.warm_stores && config.portfolio.shared_package)
            .then(|| StorePool::with_shelves(config.store_shelves));
        let shared = Arc::new(ServiceShared {
            portfolio: config.portfolio,
            workers,
            capacity: workers.saturating_add(config.max_queue),
            state: Mutex::new(QueueState::default()),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
            pool,
            telemetry_base_races: telemetry.races,
            telemetry: Mutex::new(telemetry),
            stats_path: config.stats,
            stats_load_failed,
            trace_leased: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            started: Instant::now(),
        });
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("verify-worker-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        VerificationService {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// Admission control + enqueue. Returns the handle immediately; the
    /// race runs on a worker. Rejections increment
    /// `service.admission_rejects` and cost the caller nothing else.
    ///
    /// # Errors
    ///
    /// [`RejectReason::Draining`] after [`drain`](Self::drain)/
    /// [`shutdown`](Self::shutdown); [`RejectReason::Saturated`] when
    /// `workers + max_queue` requests are already admitted.
    pub fn submit(&self, request: Request) -> Result<RequestHandle, RejectReason> {
        self.admit(Work::Pair(request))
            .map(|core| RequestHandle { core })
    }

    /// [`submit`](Self::submit) for a whole compilation chain: the chain
    /// occupies one worker (and one store checkout) for all its steps, so
    /// admission counts it as one request.
    ///
    /// # Errors
    ///
    /// Same as [`submit`](Self::submit).
    pub fn submit_chain(&self, request: ChainRequest) -> Result<ChainHandle, RejectReason> {
        self.admit(Work::Chain(request))
            .map(|core| ChainHandle { core })
    }

    fn admit(&self, work: Work) -> Result<HandleCore, RejectReason> {
        let shared = &self.shared;
        let mut state = lock(&shared.state);
        if state.draining {
            drop(state);
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            obs::metrics::incr(obs::metrics::SERVICE_ADMISSION_REJECTS);
            return Err(RejectReason::Draining);
        }
        let admitted = state.queue.len() + state.inflight;
        if admitted >= shared.capacity {
            let reason = RejectReason::Saturated {
                inflight: state.inflight,
                queued: state.queue.len(),
                capacity: shared.capacity,
            };
            drop(state);
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            obs::metrics::incr(obs::metrics::SERVICE_ADMISSION_REJECTS);
            return Err(reason);
        }
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        let cancel = CancelToken::new();
        let slot = Arc::new(Slot {
            outcome: Mutex::new(None),
            ready: Condvar::new(),
        });
        state.queue.push_back(Job {
            id,
            work,
            cancel: cancel.clone(),
            slot: Arc::clone(&slot),
            admitted_at: Instant::now(),
        });
        let depth = state.queue.len();
        drop(state);
        shared.submitted.fetch_add(1, Ordering::Relaxed);
        obs::metrics::incr(obs::metrics::SERVICE_REQUESTS);
        // Running sum, not a gauge — see the catalog caveat.
        obs::metrics::add(obs::metrics::SERVICE_QUEUE_DEPTH, depth as u64);
        self.shared.work_ready.notify_one();
        Ok(HandleCore {
            id,
            cancel,
            slot,
            disarm: false,
        })
    }

    /// Live service gauges and totals.
    pub fn stats(&self) -> ServiceStats {
        let shared = &self.shared;
        let (queue_depth, inflight, draining) = {
            let state = lock(&shared.state);
            (state.queue.len(), state.inflight, state.draining)
        };
        let telemetry_races = lock(&shared.telemetry)
            .races
            .saturating_sub(shared.telemetry_base_races);
        ServiceStats {
            workers: shared.workers,
            capacity: shared.capacity,
            submitted: shared.submitted.load(Ordering::Relaxed),
            completed: shared.completed.load(Ordering::Relaxed),
            rejected: shared.rejected.load(Ordering::Relaxed),
            queue_depth,
            inflight,
            draining,
            warm_checkouts: shared.pool.as_ref().map_or(0, StorePool::warm_checkouts),
            pool_gc_skips: shared.pool.as_ref().map_or(0, StorePool::gc_skips),
            shelved_widths: shared.pool.as_ref().map_or(0, StorePool::shelved_widths),
            attached_workspaces: shared
                .pool
                .as_ref()
                .map_or(0, StorePool::attached_workspaces),
            telemetry_races,
            uptime_seconds: shared.started.elapsed().as_secs_f64(),
        }
    }

    /// Blocks until no request is queued or in flight (or `timeout`
    /// passes). Returns whether the service went idle.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = lock(&self.shared.state);
        while !state.queue.is_empty() || state.inflight > 0 {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return false;
            }
            let (next, _) = self
                .shared
                .idle
                .wait_timeout(state, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
        }
        true
    }

    /// Leases the process-global `obs::trace` JSONL sink to one caller
    /// (connection): installs a file sink at `path` and returns a guard
    /// that flushes and uninstalls it on drop. The tracer has exactly one
    /// global writer, so only one lease can exist at a time — a second
    /// caller gets an error rather than silently interleaving two
    /// connections' traces into one file.
    ///
    /// # Errors
    ///
    /// [`TraceLeaseError::Busy`] while another lease is live;
    /// [`TraceLeaseError::Io`] when the file cannot be opened.
    pub fn lease_trace(&self, path: &Path) -> Result<TraceLease, TraceLeaseError> {
        if self
            .shared
            .trace_leased
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(TraceLeaseError::Busy);
        }
        if let Err(error) = obs::trace::install_file(path) {
            self.shared.trace_leased.store(false, Ordering::Release);
            return Err(TraceLeaseError::Io(error));
        }
        Ok(TraceLease {
            shared: Arc::clone(&self.shared),
        })
    }

    /// Stops admission, finishes every admitted request, joins the workers
    /// and returns the folded telemetry (after saving it crash-safely to
    /// [`ServiceConfig::stats`], unless that file had failed to load). A
    /// second call is a no-op returning an empty store.
    pub fn drain(&self) -> TelemetryStore {
        {
            let mut state = lock(&self.shared.state);
            state.draining = true;
        }
        self.shared.work_ready.notify_all();
        let handles: Vec<_> = lock(&self.workers).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        let store = std::mem::take(&mut *lock(&self.shared.telemetry));
        if let Some(path) = &self.shared.stats_path {
            if self.shared.stats_load_failed {
                eprintln!(
                    "warning: not saving stats to {} — the existing file failed to load and \
                     saving would overwrite it; repair or remove it first",
                    path.display()
                );
            } else if let Err(error) = store.save(path) {
                eprintln!(
                    "warning: cannot save stats file {}: {error}",
                    path.display()
                );
            }
        }
        store
    }

    /// [`drain`](Self::drain), but cancels everything queued or in flight
    /// first, so the service stops as fast as cooperative cancellation
    /// allows instead of finishing the backlog.
    pub fn shutdown(&self) -> TelemetryStore {
        {
            let mut state = lock(&self.shared.state);
            state.draining = true;
            for job in &state.queue {
                job.cancel.cancel();
            }
        }
        // In-flight jobs hold clones of their tokens; cancelling queued ones
        // above plus the handles' own drop-cancel covers clients that left.
        // For ones still waited on, the worker observes `draining` only for
        // admission — their tokens must trip explicitly:
        self.shared.work_ready.notify_all();
        self.drain()
    }
}

impl Drop for VerificationService {
    fn drop(&mut self) {
        // A dropped service behaves like `shutdown()`: cancel the backlog,
        // let workers finish unwinding, join them. Outcomes are still
        // delivered, so late `RequestHandle::wait` calls cannot hang.
        {
            let mut state = lock(&self.shared.state);
            state.draining = true;
            for job in &state.queue {
                job.cancel.cancel();
            }
        }
        self.shared.work_ready.notify_all();
        let handles: Vec<_> = lock(&self.workers).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Guard of the leased trace sink; flushes and uninstalls on drop.
pub struct TraceLease {
    shared: Arc<ServiceShared>,
}

impl Drop for TraceLease {
    fn drop(&mut self) {
        obs::trace::flush();
        obs::trace::uninstall();
        self.shared.trace_leased.store(false, Ordering::Release);
    }
}

/// Why [`VerificationService::lease_trace`] failed.
#[derive(Debug)]
pub enum TraceLeaseError {
    /// Another connection holds the (single, process-global) trace sink.
    Busy,
    /// The trace file could not be opened.
    Io(std::io::Error),
}

impl std::fmt::Display for TraceLeaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceLeaseError::Busy => {
                write!(f, "the trace sink is already leased by another connection")
            }
            TraceLeaseError::Io(error) => write!(f, "cannot open trace file: {error}"),
        }
    }
}

impl std::error::Error for TraceLeaseError {}

fn worker_loop(shared: &ServiceShared) {
    loop {
        let job = {
            let mut state = lock(&shared.state);
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.inflight += 1;
                    // Running sum, not a gauge — see the catalog caveat.
                    obs::metrics::add(obs::metrics::SERVICE_INFLIGHT, state.inflight as u64);
                    break job;
                }
                if state.draining {
                    return;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let queue_wait = job.admitted_at.elapsed();
        let started = Instant::now();
        let before = obs::metrics::fold();
        let report = match &job.work {
            Work::Pair(request) => WorkReport::Pair(Box::new(execute(shared, &job, request))),
            Work::Chain(request) => WorkReport::Chain(execute_chain(shared, &job, request)),
        };
        let service_time = started.elapsed();
        obs::metrics::observe_ns(
            obs::metrics::HIST_SERVICE_REQUEST_NS,
            service_time.as_nanos().min(u64::MAX as u128) as u64,
        );
        let delta = obs::metrics::fold().delta_since(&before);
        let outcome = Delivery {
            id: job.id,
            report,
            queue_wait,
            service_time,
            cancelled: job.cancel.is_cancelled(),
            metrics: metrics_delta_value(&delta),
        };
        // Update the books *before* delivering the outcome: a client that
        // has its response in hand must observe its request in `completed`
        // (the daemon smoke checks stats directly after the last response).
        shared.completed.fetch_add(1, Ordering::Relaxed);
        {
            let mut state = lock(&shared.state);
            state.inflight -= 1;
            if state.inflight == 0 && state.queue.is_empty() {
                shared.idle.notify_all();
            }
        }
        {
            let mut slot = lock(&job.slot.outcome);
            *slot = Some(outcome);
        }
        job.slot.ready.notify_all();
    }
}

/// Runs one request end to end: parse, warm-store checkout, portfolio race
/// with the request token chained into every budget, between-request GC,
/// checkin. This is the one execution path shared by the batch driver and
/// the daemon.
fn execute(shared: &ServiceShared, job: &Job, request: &Request) -> PairReport {
    let spec = PairSpec {
        name: request.name.clone(),
        left: request.left.display(),
        right: request.right.display(),
        qubits: request.width_hint,
    };
    let name = request.name.clone().unwrap_or_else(|| match &request.left {
        Source::Path(path) => path
            .file_stem()
            .map(|s| strip_side_suffix(&s.to_string_lossy()).to_string())
            .unwrap_or_else(|| format!("request-{}", job.id)),
        Source::Inline(_) => format!("request-{}", job.id),
    });
    // The pair context tags every trace line this worker (and the scheme
    // threads it hands the context to) emits; the pair span parents the
    // whole race, GC activity included. The request id is the pair
    // correlation id.
    let _trace = obs::trace::with_context(obs::trace::Context {
        pair: Some(job.id),
        pair_name: Some(name.as_str().into()),
        scheme: None,
        parent: None,
    });
    let pair_span = obs::trace::span("pair", &[]);
    obs::metrics::incr(obs::metrics::BATCH_PAIRS);
    let report = execute_inner(shared, job, request, &spec, name);
    pair_span.end(&[
        ("verdict", report.verdict.to_string().into()),
        ("failed", report.error.is_some().into()),
    ]);
    report
}

fn execute_inner(
    shared: &ServiceShared,
    job: &Job,
    request: &Request,
    spec: &PairSpec,
    name: String,
) -> PairReport {
    if job.cancel.is_cancelled() {
        // Cancelled while queued (client gone before dispatch): don't parse,
        // don't touch the pool.
        return failed_pair(spec, name, "cancelled before dispatch".to_string());
    }
    let left_text = match request.left.read() {
        Ok(text) => text,
        Err(error) => return failed_pair(spec, name, error),
    };
    let right_text = match request.right.read() {
        Ok(text) => text,
        Err(error) => return failed_pair(spec, name, error),
    };
    let left = match qasm::from_qasm(&left_text) {
        Ok(circuit) => circuit,
        Err(e) => return failed_pair(spec, name, format!("cannot parse {}: {e}", spec.left)),
    };
    let right = match qasm::from_qasm(&right_text) {
        Ok(circuit) => circuit,
        Err(e) => return failed_pair(spec, name, format!("cannot parse {}: {e}", spec.right)),
    };

    // Layer the per-request bounds and the request token over the service
    // portfolio defaults.
    let mut portfolio = shared.portfolio.clone();
    if let Some(deadline) = request.deadline {
        portfolio.deadline = Some(deadline);
    }
    if let Some(node_limit) = request.node_limit {
        portfolio.node_limit = Some(node_limit);
    }
    portfolio.cancel = Some(job.cancel.clone());

    let telemetry = Some(&shared.telemetry);
    let (result, warm, pool_gc_seconds) = match &shared.pool {
        Some(pool) => {
            let width = left.num_qubits().max(right.num_qubits());
            let (store, warm) = pool.checkout(width);
            obs::metrics::incr(if warm {
                obs::metrics::BATCH_WARM_CHECKOUTS
            } else {
                obs::metrics::BATCH_COLD_CHECKOUTS
            });
            obs::trace::event(
                "warmstore.checkout",
                &[("width", width.into()), ("warm", warm.into())],
            );
            let result =
                verify_portfolio_recorded(&left, &right, &portfolio, Some(&store), telemetry);
            let pool_gc_seconds = return_store_to_pool(shared, pool, width, &store);
            pool.checkin(width, store);
            (result, warm, pool_gc_seconds)
        }
        None => (
            verify_portfolio_recorded(&left, &right, &portfolio, None, telemetry),
            false,
            0.0,
        ),
    };
    PairReport::from_result(
        name,
        spec.left.clone(),
        spec.right.clone(),
        warm,
        pool_gc_seconds,
        result,
    )
}

/// The register width the *next* dispatched request will race at, when its
/// submitter hinted one. Peeks the front of the queue only — a deeper scan
/// would be guessing at scheduling order.
fn next_queued_width(shared: &ServiceShared) -> Option<usize> {
    lock(&shared.state)
        .queue
        .front()
        .and_then(|job| job.work.width_hint())
}

/// Prunes a checked-out store before it goes back on the shelf — *unless*
/// the request at the front of the queue hints the same register width, in
/// which case the prune is deliberately skipped so the next race inherits
/// the whole working set (compute caches included), not just the GC roots.
/// Returns the seconds the prune took (0 when skipped). The caller still
/// owns the checkin.
///
/// The prune otherwise runs even when the request was cancelled mid-race,
/// so a disconnected client still returns a *clean* store to the pool: a
/// collection from a fresh (root-less) workspace keeps only the GC roots —
/// the shared gate cache and the canonical structure under it, exactly the
/// warm value of the pool.
fn return_store_to_pool(
    shared: &ServiceShared,
    pool: &StorePool,
    width: usize,
    store: &Arc<SharedStore>,
) -> f64 {
    if next_queued_width(shared) == Some(width) {
        pool.note_gc_skip();
        obs::metrics::incr(obs::metrics::BATCH_POOL_GC_SKIPS);
        obs::trace::event(
            "warmstore.checkin",
            &[("width", width.into()), ("gc_skipped", true.into())],
        );
        return 0.0;
    }
    let gc_start = Instant::now();
    let mut collector = store.workspace(width);
    let reclaimed = collector.garbage_collect();
    drop(collector);
    let pool_gc = gc_start.elapsed();
    obs::trace::event(
        "warmstore.checkin",
        &[
            ("width", width.into()),
            ("reclaimed", reclaimed.into()),
            ("gc", pool_gc.into()),
        ],
    );
    pool_gc.as_secs_f64()
}

/// Runs one chain request end to end: parse every snapshot, one store
/// checkout for the whole chain, pass-by-pass races via
/// [`chain::run_chain`], one conditional prune, checkin.
fn execute_chain(shared: &ServiceShared, job: &Job, request: &ChainRequest) -> ChainReport {
    let name = request.name.clone().unwrap_or_else(|| {
        match request.steps.first().map(|step| &step.source) {
            Some(Source::Path(path)) => path
                .file_stem()
                .map(|s| strip_side_suffix(&s.to_string_lossy()).to_string())
                .unwrap_or_else(|| format!("chain-{}", job.id)),
            _ => format!("chain-{}", job.id),
        }
    });
    // Chains correlate like pairs: the request id tags every trace line of
    // every step, and the `chain` span parents all the step races.
    let _trace = obs::trace::with_context(obs::trace::Context {
        pair: Some(job.id),
        pair_name: Some(name.as_str().into()),
        scheme: None,
        parent: None,
    });
    let chain_span = obs::trace::span("chain", &[]);
    obs::metrics::incr(obs::metrics::CHAIN_REQUESTS);
    let report = execute_chain_inner(shared, job, request, name);
    chain_span.end(&[
        ("verdict", report.verdict.to_string().into()),
        (
            "guilty_pass",
            report.guilty_pass.clone().unwrap_or_default().into(),
        ),
        ("steps_verified", report.steps_verified.into()),
        ("failed", report.error.is_some().into()),
    ]);
    report
}

fn execute_chain_inner(
    shared: &ServiceShared,
    job: &Job,
    request: &ChainRequest,
    name: String,
) -> ChainReport {
    let steps_total = request.steps.len().saturating_sub(1);
    if request.steps.len() < 2 {
        return chain::failed_chain(
            name,
            steps_total,
            format!(
                "a chain needs at least 2 circuits, got {}",
                request.steps.len()
            ),
        );
    }
    if job.cancel.is_cancelled() {
        return chain::failed_chain(name, steps_total, "cancelled before dispatch".to_string());
    }
    let mut labels = Vec::with_capacity(request.steps.len());
    let mut displays = Vec::with_capacity(request.steps.len());
    let mut circuits = Vec::with_capacity(request.steps.len());
    for (index, step) in request.steps.iter().enumerate() {
        let display = step.source.display();
        let text = match step.source.read() {
            Ok(text) => text,
            Err(error) => return chain::failed_chain(name, steps_total, error),
        };
        let circuit = match qasm::from_qasm(&text) {
            Ok(circuit) => circuit,
            Err(e) => {
                return chain::failed_chain(
                    name,
                    steps_total,
                    format!("cannot parse {display}: {e}"),
                )
            }
        };
        labels.push(step.pass.clone().unwrap_or_else(|| {
            if index == 0 {
                "original".to_string()
            } else {
                format!("step{index}")
            }
        }));
        displays.push(display);
        circuits.push(circuit);
    }

    // Layer the per-step bounds and the request token over the service
    // portfolio defaults; every step race shares the chain's token.
    let mut portfolio = shared.portfolio.clone();
    if let Some(deadline) = request.deadline {
        portfolio.deadline = Some(deadline);
    }
    if let Some(node_limit) = request.node_limit {
        portfolio.node_limit = Some(node_limit);
    }
    portfolio.cancel = Some(job.cancel.clone());

    // One width for the whole chain: routing widens circuits mid-pipeline,
    // and the widest snapshot decides which shelf the chain warms.
    let width = circuits
        .iter()
        .map(circuit::QuantumCircuit::num_qubits)
        .max()
        .unwrap_or(1);
    let parsed = chain::ParsedChain {
        name,
        labels,
        displays,
        circuits,
    };
    let telemetry = Some(&shared.telemetry);
    match &shared.pool {
        Some(pool) => {
            let (store, warm) = pool.checkout(width);
            obs::metrics::incr(if warm {
                obs::metrics::BATCH_WARM_CHECKOUTS
            } else {
                obs::metrics::BATCH_COLD_CHECKOUTS
            });
            obs::trace::event(
                "warmstore.checkout",
                &[("width", width.into()), ("warm", warm.into())],
            );
            let report = chain::run_chain(&parsed, &portfolio, Some(&store), warm, telemetry);
            return_store_to_pool(shared, pool, width, &store);
            pool.checkin(width, store);
            report
        }
        // No pool, but sharing is on: a chain still wants one store for all
        // its steps — carry-over between steps is the point — it just dies
        // with the request instead of going to a shelf.
        None if shared.portfolio.shared_package => {
            let store = SharedStore::new();
            chain::run_chain(&parsed, &portfolio, Some(&store), false, telemetry)
        }
        None => chain::run_chain(&parsed, &portfolio, None, false, telemetry),
    }
}

/// Renders a folded metrics delta as a JSON object: `counters` (non-zero
/// only, catalog names to values) and `histograms` (count / mean / p99 in
/// nanoseconds).
fn metrics_delta_value(delta: &obs::metrics::Snapshot) -> serde::Value {
    let counters: Vec<(String, serde::Value)> = delta
        .non_zero()
        .map(|(def, value)| (def.name.to_string(), serde::Value::Number(value as f64)))
        .collect();
    let histograms: Vec<(String, serde::Value)> = delta
        .non_zero_hists()
        .map(|(def, hist)| {
            (
                def.name.to_string(),
                serde::Value::Object(vec![
                    ("count".to_string(), serde::Value::Number(hist.count as f64)),
                    (
                        "mean_ns".to_string(),
                        serde::Value::Number(hist.mean_ns() as f64),
                    ),
                    (
                        "p99_ns".to_string(),
                        serde::Value::Number(hist.quantile_ns(0.99) as f64),
                    ),
                ]),
            )
        })
        .collect();
    serde::Value::Object(vec![
        ("counters".to_string(), serde::Value::Object(counters)),
        ("histograms".to_string(), serde::Value::Object(histograms)),
    ])
}
