//! The adaptive scheduler: turns a circuit pair, a policy and recorded
//! telemetry into a launch plan.
//!
//! This module is the single place where portfolio *policy* lives. The
//! engine executes whatever [`SchedulePlan`] it is handed; the plan decides
//!
//! * whether to race on threads or try schemes sequentially on the calling
//!   thread (the tiny-instance fast path is a plan shape here, not an
//!   engine special case),
//! * which schemes launch immediately ([`SchedulePlan::primary`]) and which
//!   are held back as the escalation wave ([`SchedulePlan::reserve`]), and
//! * a per-scheme garbage-collection threshold hint derived from recorded
//!   peak-node telemetry ([`ScheduledScheme::gc_hint`]).
//!
//! Under [`SchedulePolicy::Race`] — the default, and the paper's original
//! proposal — every applicable scheme launches at once in the registry's
//! race order. Under [`SchedulePolicy::Predicted`] the scheduler scores
//! each applicable scheme against the [`TelemetryStore`] stats of the
//! pair's [feature bucket](crate::telemetry::FeatureBucket) and launches
//! only the top-`k` predicted winners, escalating to the full portfolio when
//! the primary wave stalls or finishes inconclusively. **With no recorded
//! stats for the bucket the predicted plan degrades to the exact race-
//! everything plan**, so a cold stats file never changes behaviour.

use crate::engine::PortfolioConfig;
use crate::scheme::{applicable_descriptors, Scheme, SchemeDescriptor};
use crate::telemetry::{PairFeatures, TelemetryStore};
use circuit::QuantumCircuit;
use dd::DEFAULT_GC_THRESHOLD;
use std::time::Duration;

/// How the portfolio launches the applicable schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Launch every applicable scheme at once (the paper's proposal and the
    /// default): first conclusive verdict wins, losers are cancelled.
    #[default]
    Race,
    /// Launch only the `k` schemes the recorded telemetry predicts to win,
    /// escalating to the rest of the portfolio when no conclusive verdict
    /// has arrived after `escalate_after` (or when every launched scheme
    /// finished inconclusively before that). Degrades to [`Race`](Self::Race)
    /// when the telemetry holds no stats for the pair's feature bucket.
    Predicted {
        /// Predicted winners to launch up front (at least 1).
        k: usize,
        /// Stall deadline before the reserve wave launches.
        escalate_after: Duration,
    },
}

impl SchedulePolicy {
    /// The default predicted policy (`k = 2`, escalate after 2 s) — what
    /// `verify --stats-file` switches to.
    pub fn predicted() -> Self {
        SchedulePolicy::Predicted {
            k: 2,
            escalate_after: Duration::from_secs(2),
        }
    }
}

/// One scheme launch of a plan: the scheme plus the scheduler's per-scheme
/// memory hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledScheme {
    /// The scheme to launch.
    pub scheme: Scheme,
    /// Garbage-collection threshold hint derived from the bucket's recorded
    /// peak-node telemetry: schemes whose history shows small peaks collect
    /// earlier, bounding memory without measurable slowdown. `None` keeps
    /// the [`MemoryConfig`](dd::MemoryConfig) default.
    pub gc_hint: Option<usize>,
    /// Dense-kernel cutoff hint, same contract as
    /// [`gc_hint`](Self::gc_hint): it can only *lower*
    /// [`MemoryConfig::dense_cutoff`](dd::MemoryConfig) (toward 0 =
    /// disabled), never raise it, and only fires on near-identity buckets
    /// whose recorded peaks say the dense terminal blocks never amortized.
    /// `None` keeps the configured cutoff.
    pub dense_hint: Option<u32>,
}

/// A launch plan for one circuit pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulePlan {
    /// The extracted pair features (also the telemetry-recording key).
    pub features: PairFeatures,
    /// Try the primary schemes one after another on the calling thread
    /// instead of racing threads — chosen for tiny instances, where a
    /// thread spawn costs more than the whole verification.
    pub sequential: bool,
    /// Schemes launched immediately, in launch order (index 0 is the race's
    /// inline favourite).
    pub primary: Vec<ScheduledScheme>,
    /// Schemes held back for escalation (empty under [`SchedulePolicy::Race`]).
    pub reserve: Vec<ScheduledScheme>,
    /// How long to wait for a conclusive verdict before launching the
    /// reserve (`None` when there is no reserve).
    pub escalate_after: Option<Duration>,
    /// Whether recorded telemetry actually steered this plan (`false` for
    /// race plans and for predicted plans that degraded to racing on a cold
    /// bucket).
    pub predicted: bool,
    /// Whether the schemes race against one shared decision-diagram store
    /// ([`dd::SharedStore`]) instead of private per-scheme packages. Under
    /// [`SchedulePolicy::Race`] this is simply
    /// [`PortfolioConfig::shared_package`]; under
    /// [`SchedulePolicy::Predicted`] it is predicted per bucket from the
    /// recorded [`SharingStats`](crate::telemetry::SharingStats).
    pub shared: bool,
    /// Stable machine-readable reason for the [`shared`](Self::shared)
    /// decision, reported in the batch JSON `metrics` block and the
    /// `race.plan` trace event: `"race-default"`, `"config-private"`,
    /// `"explicit-schemes"`, `"cold-telemetry"`, `"predicted-shared"` or
    /// `"predicted-private"`.
    pub shared_reason: &'static str,
}

impl SchedulePlan {
    /// Schemes of the plan in launch order, primary wave first.
    pub fn all_schemes(&self) -> impl Iterator<Item = &ScheduledScheme> {
        self.primary.iter().chain(self.reserve.iter())
    }
}

/// Instances this small finish in microseconds under any scheme; spawning
/// threads would cost more than simply trying the schemes one after another.
fn is_tiny(left: &QuantumCircuit, right: &QuantumCircuit) -> bool {
    left.num_qubits().max(right.num_qubits()) <= 8 && left.len().max(right.len()) <= 256
}

fn unhinted(schemes: impl IntoIterator<Item = Scheme>) -> Vec<ScheduledScheme> {
    schemes
        .into_iter()
        .map(|scheme| ScheduledScheme {
            scheme,
            gc_hint: None,
            dense_hint: None,
        })
        .collect()
}

/// Derives the GC-threshold hint for one scheme from its bucket stats: twice
/// the largest recorded peak, rounded up to a power of two, clamped to
/// `[2^14, DEFAULT_GC_THRESHOLD]`. The hint can only *lower* the threshold —
/// the default remains the ceiling, so an instance that outgrows its history
/// behaves exactly as before (GC triggers adapt upward on thrash anyway).
fn gc_hint(stats: &crate::telemetry::SchemeStats) -> Option<usize> {
    if stats.peak_samples == 0 {
        return None;
    }
    let target = (stats.peak_nodes_max as usize)
        .saturating_mul(2)
        .next_power_of_two();
    Some(target.clamp(1 << 14, DEFAULT_GC_THRESHOLD))
}

/// Largest recorded peak (nodes) below which the dense terminal kernels are
/// treated as a measured loss on a near-identity bucket. The dense path
/// pays by amortizing cache misses over wide contiguous amplitude blocks;
/// a structured miter that never grew past a few thousand nodes never
/// *had* such blocks, so every dense expansion was conversion overhead.
/// Peak-node telemetry is a proxy — the kernels are not timed per se —
/// which is why the hint additionally requires the near-identity bucket,
/// where the dense-parity benches measured the loss directly.
pub const DENSE_LOSS_PEAK_CEILING: u64 = 1 << 12;

/// Derives the dense-cutoff hint for one scheme from its bucket stats: on
/// a near-identity bucket whose recorded peaks all sit under
/// [`DENSE_LOSS_PEAK_CEILING`], the hint lowers the cutoff to 0 (node-at-
/// a-time all the way down). Like [`gc_hint`] it never raises anything —
/// off buckets and schemes without peak history keep the configured
/// cutoff, so a cold stats file changes nothing.
fn dense_hint(
    bucket: &crate::telemetry::FeatureBucket,
    stats: &crate::telemetry::SchemeStats,
) -> Option<u32> {
    if !bucket.near_identity || stats.peak_samples == 0 {
        return None;
    }
    (stats.peak_nodes_max <= DENSE_LOSS_PEAK_CEILING).then_some(0)
}

/// Builds the launch plan for a circuit pair.
///
/// With explicit [`PortfolioConfig::schemes`] the caller has already decided
/// what to run: the plan races exactly that list (threaded, in list order),
/// matching the engine's historical behaviour for benchmarks and tests.
pub fn plan(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &PortfolioConfig,
    telemetry: Option<&TelemetryStore>,
) -> SchedulePlan {
    let features = PairFeatures::extract(left, right);
    if !config.schemes.is_empty() {
        return SchedulePlan {
            features,
            sequential: false,
            primary: unhinted(config.schemes.iter().copied()),
            reserve: Vec::new(),
            escalate_after: None,
            predicted: false,
            shared: config.shared_package,
            shared_reason: if config.shared_package {
                "explicit-schemes"
            } else {
                "config-private"
            },
        };
    }

    let candidates = applicable_descriptors(left, right);
    let tiny = is_tiny(left, right);
    let bucket = features.bucket();
    // Score each candidate against the bucket's recorded stats. A bucket
    // no candidate has stats for means the telemetry cannot rank anything:
    // the predicted policy then degrades to the exact race plan.
    let scored: Vec<(&SchemeDescriptor, Option<&crate::telemetry::SchemeStats>)> = candidates
        .iter()
        .map(|descriptor| {
            let stats = telemetry
                .and_then(|store| store.stats(descriptor.scheme, &bucket))
                .filter(|stats| stats.launches > 0);
            (*descriptor, stats)
        })
        .collect();
    let have_stats = scored.iter().any(|(_, stats)| stats.is_some());

    let race_plan = |sequential: bool| {
        let mut order: Vec<&SchemeDescriptor> = candidates.clone();
        if sequential {
            order.sort_by_key(|descriptor| descriptor.sequential_rank);
        }
        SchedulePlan {
            features,
            sequential,
            primary: unhinted(order.iter().map(|descriptor| descriptor.scheme)),
            reserve: Vec::new(),
            escalate_after: None,
            predicted: false,
            shared: config.shared_package,
            shared_reason: if config.shared_package {
                "race-default"
            } else {
                "config-private"
            },
        }
    };

    // The sharing decision of a *predicted* plan: `--private-packages`
    // always wins, a bucket with no recorded shared races keeps the config
    // default, and a recorded bucket follows its measured payoff
    // ([`SharingStats::favors_sharing`]). The race policy never reaches
    // this — its plans carry the config default (`race_plan` above).
    let predicted_sharing = || -> (bool, &'static str) {
        if !config.shared_package {
            return (false, "config-private");
        }
        match telemetry.and_then(|store| store.sharing_stats(&bucket)) {
            None => (true, "cold-telemetry"),
            Some(stats) if stats.favors_sharing() => (true, "predicted-shared"),
            Some(_) => (false, "predicted-private"),
        }
    };

    match config.policy {
        SchedulePolicy::Race => race_plan(tiny),
        SchedulePolicy::Predicted { .. } if !have_stats => race_plan(tiny),
        SchedulePolicy::Predicted { k, escalate_after } => {
            // Deterministic ranking: recorded score descending; schemes
            // without stats score lowest; ties (including all-missing)
            // break by static cost, then race rank.
            let mut ranked = scored;
            ranked.sort_by(|(a, a_stats), (b, b_stats)| {
                let a_score = a_stats.map(|s| s.score()).unwrap_or(f64::NEG_INFINITY);
                let b_score = b_stats.map(|s| s.score()).unwrap_or(f64::NEG_INFINITY);
                b_score
                    .partial_cmp(&a_score)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(
                        a.cost
                            .relative_cost
                            .partial_cmp(&b.cost.relative_cost)
                            .unwrap_or(std::cmp::Ordering::Equal),
                    )
                    .then(a.race_rank.cmp(&b.race_rank))
            });
            let hinted: Vec<ScheduledScheme> = ranked
                .iter()
                .map(|(descriptor, stats)| ScheduledScheme {
                    scheme: descriptor.scheme,
                    gc_hint: stats.and_then(gc_hint),
                    dense_hint: stats.and_then(|stats| dense_hint(&bucket, stats)),
                })
                .collect();
            let (shared, shared_reason) = predicted_sharing();
            if tiny {
                // Sequential trying already stops at the first conclusive
                // verdict; prediction just orders the attempts by expected
                // merit. No reserve wave — the loop *is* the escalation.
                return SchedulePlan {
                    features,
                    sequential: true,
                    primary: hinted,
                    reserve: Vec::new(),
                    escalate_after: None,
                    predicted: true,
                    shared,
                    shared_reason,
                };
            }
            let k = k.max(1).min(hinted.len());
            let mut primary: Vec<ScheduledScheme> = hinted[..k].to_vec();
            let mut reserve: Vec<ScheduledScheme> = hinted[k..].to_vec();
            // A primary wave of only non-proving schemes (e.g. the
            // simulative check, which refutes conclusively but can never
            // *prove* equivalence) would guarantee an escalation on every
            // equivalent pair. Extend the wave with the best-ranked proving
            // scheme so one conclusive-capable scheme always launches up
            // front.
            let proves =
                |scheduled: &ScheduledScheme| scheduled.scheme.descriptor().cost.proves_equivalence;
            if !primary.iter().any(proves) {
                if let Some(position) = reserve.iter().position(proves) {
                    let promoted = reserve.remove(position);
                    primary.push(promoted);
                }
            }
            // The reserve escalates in race order — by that point the
            // prediction has already been wrong once.
            reserve.sort_by_key(|scheduled| scheduled.scheme.descriptor().race_rank);
            SchedulePlan {
                features,
                sequential: false,
                primary,
                escalate_after: (!reserve.is_empty()).then_some(escalate_after),
                reserve,
                predicted: true,
                shared,
                shared_reason,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_race() {
        assert_eq!(SchedulePolicy::default(), SchedulePolicy::Race);
    }
}
