//! Trace round-trip under a real portfolio race: every emitted line must be
//! valid JSON carrying the correlation IDs, the race span must parent the
//! scheme launches of all worker threads, and span windows must nest.
//!
//! Tracing state is process-global; this binary keeps everything in one
//! test function so no second test can interleave output.

use algorithms::qpe;
use portfolio::{verify_portfolio, PortfolioConfig};
use serde_json::Value;
use std::io::Write;
use std::sync::{Arc, Mutex};

#[derive(Clone, Default)]
struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn race_trace_round_trips_with_nested_spans_and_correlation_ids() {
    let phi = 3.0 * std::f64::consts::PI / 8.0;
    let left = qpe::qpe_static(phi, 3, true);
    let right = qpe::iqpe_dynamic(phi, 3);
    // Explicit schemes force the threaded racing path (the tiny-instance
    // sequential plan spawns no workers): the full 4-scheme portfolio.
    let schemes = portfolio::applicable_schemes(&left, &right);
    assert!(schemes.len() >= 4, "expected a 4-scheme portfolio");
    let config = PortfolioConfig {
        schemes,
        ..PortfolioConfig::default()
    };

    let buffer = SharedBuffer::default();
    obs::trace::install_writer(Box::new(buffer.clone()));
    let result = {
        let _pair = obs::trace::with_context(obs::trace::Context {
            pair: Some(11),
            pair_name: Some("qpe_3".into()),
            scheme: None,
            parent: None,
        });
        verify_portfolio(&left, &right, &config)
    };
    obs::trace::uninstall();
    assert!(result.verdict.considered_equivalent(), "{result:?}");

    let bytes = buffer.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("trace output is UTF-8");
    let lines: Vec<Value> = text
        .lines()
        .map(|line| {
            serde_json::from_str(line)
                .unwrap_or_else(|e| panic!("unparseable trace line {line:?}: {e}"))
        })
        .collect();
    assert!(!lines.is_empty(), "the race must emit trace output");

    // Every line is tagged with the ambient pair context and the required
    // envelope fields.
    for line in &lines {
        for key in ["ts_us", "thread", "ev", "kind"] {
            assert!(line.get(key).is_some(), "line missing {key}: {line:?}");
        }
        assert_eq!(line.get("pair").and_then(Value::as_f64), Some(11.0));
        assert_eq!(line.get("pair_name").and_then(Value::as_str), Some("qpe_3"));
    }

    let by = |kind: &str, ev: &str| -> Vec<&Value> {
        lines
            .iter()
            .filter(|l| {
                l.get("kind").and_then(Value::as_str) == Some(kind)
                    && l.get("ev").and_then(Value::as_str) == Some(ev)
            })
            .collect()
    };

    // One race span, ended with a verdict and non-negative duration.
    let race_starts = by("race", "span_start");
    assert_eq!(race_starts.len(), 1);
    let race_id = race_starts[0].get("span").and_then(Value::as_f64).unwrap();
    let race_ends = by("race", "span_end");
    assert_eq!(race_ends.len(), 1);
    assert!(race_ends[0].get("dur_us").and_then(Value::as_f64).unwrap() >= 0.0);
    assert!(race_ends[0]
        .get("verdict")
        .and_then(Value::as_str)
        .is_some());

    // Each scheme launched exactly once, under the race span, with its
    // scheme tag installed — including from the spawned worker threads.
    let launches = by("scheme.launch", "event");
    assert_eq!(launches.len(), 4, "four schemes must launch: {launches:#?}");
    let mut launch_schemes: Vec<&str> = launches
        .iter()
        .map(|l| {
            assert_eq!(l.get("parent").and_then(Value::as_f64), Some(race_id));
            l.get("scheme").and_then(Value::as_str).expect("scheme tag")
        })
        .collect();
    launch_schemes.sort_unstable();
    launch_schemes.dedup();
    assert_eq!(
        launch_schemes.len(),
        4,
        "distinct schemes: {launch_schemes:?}"
    );

    // Scheme spans nest inside the race window and balance start/end.
    let scheme_starts = by("scheme.run", "span_start");
    let scheme_ends = by("scheme.run", "span_end");
    assert_eq!(scheme_starts.len(), 4);
    assert_eq!(scheme_ends.len(), 4);
    let ts = |line: &Value| line.get("ts_us").and_then(Value::as_f64).unwrap();
    for start in &scheme_starts {
        assert_eq!(start.get("parent").and_then(Value::as_f64), Some(race_id));
        assert!(ts(start) >= ts(race_starts[0]));
    }
    for end in &scheme_ends {
        assert!(ts(end) <= ts(race_ends[0]), "scheme outlived the race");
        assert!(end.get("dur_us").and_then(Value::as_f64).unwrap() >= 0.0);
    }

    // A conclusive race records its verdict (once per winner improvement —
    // reports are processed out of finish order, so an earlier-finished
    // conclusive scheme can displace the first recorded winner) and the
    // winner's cancellation sweep of the losers.
    let verdicts = by("race.verdict", "event");
    assert!(
        !verdicts.is_empty(),
        "a conclusive race must record verdicts"
    );
    let final_winner = verdicts
        .last()
        .and_then(|v| v.get("winner"))
        .and_then(Value::as_str);
    assert_eq!(
        final_winner,
        result.winner.map(|s| s.name()),
        "the last verdict event names the run winner"
    );
    assert!(
        !by("race.cancel", "event").is_empty(),
        "a conclusive verdict must cancel the losers"
    );
}
