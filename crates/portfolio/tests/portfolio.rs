//! Integration tests of the portfolio engine and the batch driver.

use algorithms::{bv, ghz, qft, qpe};
use portfolio::batch::{manifest_from_dir, run_batch, BatchOptions, Manifest, PairSpec};
use portfolio::{applicable_schemes, verify_portfolio, PortfolioConfig, Scheme};
use qcec::{Equivalence, Strategy};
use std::path::PathBuf;

fn paper_qpe_pair() -> (circuit::QuantumCircuit, circuit::QuantumCircuit) {
    let phi = 3.0 * std::f64::consts::PI / 8.0;
    (qpe::qpe_static(phi, 3, true), qpe::iqpe_dynamic(phi, 3))
}

#[test]
fn equivalent_dynamic_pair_verifies_regardless_of_winner() {
    let (static_qpe, iqpe) = paper_qpe_pair();
    for _ in 0..4 {
        let result = verify_portfolio(&static_qpe, &iqpe, &PortfolioConfig::default());
        assert!(
            result.verdict.considered_equivalent(),
            "verdict {:?} via {:?}",
            result.verdict,
            result.winner
        );
        assert!(result.winner.is_some());
        // The tiny-instance fast path stops at the first conclusive scheme.
        assert!(!result.schemes.is_empty() && result.schemes.len() <= 4);
        // Whatever scheme won, the verdict must be a conclusive one.
        assert!(matches!(
            result.verdict,
            Equivalence::Equivalent | Equivalence::EquivalentUpToGlobalPhase
        ));
    }
}

#[test]
fn winning_scheme_reports_memory_telemetry() {
    let (static_qpe, iqpe) = paper_qpe_pair();
    let result = verify_portfolio(&static_qpe, &iqpe, &PortfolioConfig::default());
    let winner = result.winner.expect("paper pair verifies");
    let report = result
        .schemes
        .iter()
        .find(|r| r.scheme == winner)
        .expect("winner has a report");
    assert!(report.gc_runs.is_some(), "winner should carry GC telemetry");
    let rate = report
        .cache_hit_rate
        .expect("winner should carry a compute-table hit rate");
    assert!((0.0..=1.0).contains(&rate), "hit rate {rate} out of range");
}

#[test]
fn expired_deadline_stops_every_scheme() {
    // An already-expired deadline must not crash the race: every scheme
    // stops inside decision-diagram allocation and reports the deadline as
    // its failure, leaving no verdict.
    let n = 10;
    let config = PortfolioConfig {
        deadline: Some(std::time::Duration::ZERO),
        ..Default::default()
    };
    let left = qft::qft_static(n, None, true);
    let right = qft::qft_dynamic(n);
    let started = std::time::Instant::now();
    let result = verify_portfolio(&left, &right, &config);
    assert_eq!(result.verdict, Equivalence::NoInformation);
    assert!(result.schemes.iter().all(|r| r.verdict.is_none()));
    assert!(result
        .schemes
        .iter()
        .any(|r| r.error.as_deref().is_some_and(|e| e.contains("deadline"))));
    assert!(started.elapsed() < std::time::Duration::from_secs(10));
}

#[test]
fn non_equivalent_pair_is_refuted() {
    let static_bv = bv::bv_static(&[true, false, true], true);
    let dynamic_bv = bv::bv_dynamic(&[true, true, true]);
    let result = verify_portfolio(&static_bv, &dynamic_bv, &PortfolioConfig::default());
    assert_eq!(result.verdict, Equivalence::NotEquivalent);
    assert!(result.winner.is_some());
}

#[test]
fn global_phase_pair_is_detected_on_static_portfolio() {
    let mut left = circuit::QuantumCircuit::new(1, 0);
    left.rz(0.9, 0);
    let mut right = circuit::QuantumCircuit::new(1, 0);
    right.p(0.9, 0);
    let result = verify_portfolio(&left, &right, &PortfolioConfig::default());
    assert_eq!(result.verdict, Equivalence::EquivalentUpToGlobalPhase);
    assert!(matches!(result.winner, Some(Scheme::Functional(_))));
}

#[test]
fn scheme_selection_follows_circuit_kind() {
    let (static_qpe, iqpe) = paper_qpe_pair();
    let dynamic_schemes = applicable_schemes(&static_qpe, &iqpe);
    assert!(dynamic_schemes.contains(&Scheme::FixedInput));
    assert!(dynamic_schemes
        .iter()
        .all(|s| !matches!(s, Scheme::Functional(_) | Scheme::Simulative)));

    let a = ghz::ghz(3, false);
    let static_schemes = applicable_schemes(&a, &a);
    assert!(static_schemes.contains(&Scheme::Simulative));
    assert!(static_schemes.contains(&Scheme::Functional(Strategy::Proportional)));
}

#[test]
fn losing_schemes_are_cancelled_instead_of_running_to_completion() {
    // Dynamic QFT at n = 16: the fixed-input extraction finishes in a
    // fraction of the reconstruction+miter flow's time (~4x measured), so
    // the portfolio should crown it and cancel the three functional
    // schedules mid-miter.
    let n = 16;
    let static_qft = qft::qft_static(n, None, true);
    let dynamic_qft = qft::qft_dynamic(n);
    let result = verify_portfolio(&static_qft, &dynamic_qft, &PortfolioConfig::default());
    assert!(result.verdict.considered_equivalent());
    assert!(result.winner.is_some());
    let cancelled: Vec<_> = result.schemes.iter().filter(|s| s.cancelled).collect();
    assert!(
        !cancelled.is_empty(),
        "expected at least one cancelled loser, got {:#?}",
        result.schemes
    );
    for loser in &cancelled {
        assert!(loser.verdict.is_none());
        assert!(loser.error.is_none());
    }
    // Losers unwind promptly: the whole race ends close to the winner's
    // finish, far below the sequential sum of all four schemes.
    assert!(
        result.total_time < result.time_to_verdict * 3 + std::time::Duration::from_secs(1),
        "losers kept running: total {:?} vs verdict at {:?}",
        result.total_time,
        result.time_to_verdict
    );
}

#[test]
fn deliberately_slow_scheme_exits_early_on_cancellation() {
    // Run the extraction of a 2^18-leaf dense distribution alone — tens of
    // seconds if left to finish — and cancel it from a watchdog thread
    // after 100 ms. The scheme must exit early and flag the cancellation.
    let n = 18;
    let static_qft = qft::qft_static(n, None, true);
    let dynamic_qft = qft::qft_dynamic(n);
    let config = PortfolioConfig::default();
    let budget = qcec::Budget::unlimited();
    let token = budget.cancel_token().clone();
    let watchdog = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(100));
        token.cancel();
    });
    let started = std::time::Instant::now();
    let report = portfolio::run_scheme(
        Scheme::FixedInput,
        &static_qft,
        &dynamic_qft,
        &config,
        &budget,
    );
    watchdog.join().unwrap();
    assert!(report.cancelled, "expected cancellation, got {report:?}");
    assert!(report.verdict.is_none());
    assert!(
        started.elapsed() < std::time::Duration::from_secs(10),
        "cancelled extraction still took {:?}",
        started.elapsed()
    );
}

#[test]
fn portfolio_verdict_matches_single_schemes_on_the_paper_example() {
    // Acceptance criterion: the portfolio agrees with every single scheme on
    // the 3-bit IQPE-vs-QPE pair, and its wall time tracks the fastest
    // scheme (generous 10x bound to stay robust on loaded CI machines —
    // the sequential sum of all schemes is what it must *not* approach).
    let (static_qpe, iqpe) = paper_qpe_pair();
    let config = PortfolioConfig::default();
    let portfolio = verify_portfolio(&static_qpe, &iqpe, &config);

    let functional =
        qcec::verify_dynamic_functional(&static_qpe, &iqpe, &config.configuration).unwrap();
    let fixed = qcec::verify_fixed_input(
        &static_qpe,
        &iqpe,
        &config.configuration,
        &config.extraction,
    )
    .unwrap();
    assert_eq!(
        portfolio.verdict.considered_equivalent(),
        functional.equivalence.considered_equivalent()
    );
    assert_eq!(
        portfolio.verdict.considered_equivalent(),
        fixed.equivalence.considered_equivalent()
    );

    let fastest = portfolio
        .schemes
        .iter()
        .filter(|s| s.verdict.is_some())
        .map(|s| s.duration)
        .min()
        .expect("at least one scheme finished");
    assert!(
        portfolio.time_to_verdict <= fastest * 10 + std::time::Duration::from_millis(250),
        "time to verdict {:?} vs fastest scheme {:?}",
        portfolio.time_to_verdict,
        fastest
    );
}

#[test]
fn functional_refutation_outranks_fixed_input_equivalence() {
    // ghz vs. ghz_log_depth (measured, 10 qubits → non-tiny race path):
    // identical all-zeros-input distribution but different unitaries. The
    // fixed-input scheme says Equivalent, the functional schemes say
    // NotEquivalent. Whichever wins the race, the invariant is: if any
    // functional scheme finished with a refutation, the refutation is the
    // final verdict — the weaker fixed-input claim never overrides it.
    for _ in 0..8 {
        let left = ghz::ghz(10, true);
        let right = ghz::ghz_log_depth(10, true);
        let result = verify_portfolio(&left, &right, &PortfolioConfig::default());
        let functional_refuted = result.schemes.iter().any(|r| {
            r.scheme != Scheme::FixedInput && r.verdict == Some(Equivalence::NotEquivalent)
        });
        if functional_refuted {
            assert_eq!(
                result.verdict,
                Equivalence::NotEquivalent,
                "fixed-input equivalence overrode a functional refutation: {:#?}",
                result.schemes
            );
        } else {
            // Only the fixed-input scheme finished: its (weaker, documented)
            // verdict stands.
            assert_eq!(result.winner, Some(Scheme::FixedInput));
            assert_eq!(result.verdict, Equivalence::Equivalent);
        }
    }
}

#[test]
fn shared_store_race_matches_private_packages() {
    // Non-tiny dynamic pair → threaded racing path. The shared-store race
    // (default) and the private-package race must agree on the verdict; only
    // the shared race carries store telemetry.
    let n = 10;
    let left = qft::qft_static(n, None, true);
    let right = qft::qft_dynamic(n);
    let shared = verify_portfolio(&left, &right, &PortfolioConfig::default());
    let private = verify_portfolio(
        &left,
        &right,
        &PortfolioConfig {
            shared_package: false,
            ..Default::default()
        },
    );
    assert!(shared.verdict.considered_equivalent());
    assert_eq!(
        shared.verdict.considered_equivalent(),
        private.verdict.considered_equivalent()
    );
    let store = shared.shared_store.expect("shared race reports its store");
    assert!(store.peak_nodes > 0);
    assert!(store.allocated_nodes > 0);
    assert!(private.shared_store.is_none());

    // The telemetry block is machine-readable with the documented fields
    // (this is the per-pair `shared_store` object of the batch JSON report).
    let json = serde_json::to_string(&store).unwrap();
    for field in [
        "shared_nodes",
        "peak_nodes",
        "allocated_nodes",
        "intern_hits",
        "cross_thread_hits",
        "cross_thread_hit_rate",
        "gc_runs",
        "complex_entries",
    ] {
        assert!(json.contains(field), "missing `{field}` in {json}");
    }
}

#[test]
fn racing_schemes_share_structure_across_threads() {
    // Two miter schedules over the same equivalent pair intern essentially
    // identical gate diagrams and subdiagrams: whichever thread is second to
    // any common node records a cross-thread hit, so the race must observe
    // sharing no matter how the schemes interleave or who wins.
    let left = ghz::ghz(10, false);
    let right = ghz::ghz(10, false);
    let config = PortfolioConfig {
        schemes: vec![
            Scheme::Functional(Strategy::Proportional),
            Scheme::Functional(Strategy::Reference),
        ],
        ..Default::default()
    };
    let result = verify_portfolio(&left, &right, &config);
    assert_eq!(result.verdict, Equivalence::Equivalent);
    let store = result.shared_store.expect("explicit schemes race threaded");
    assert!(
        store.cross_thread_hits > 0,
        "overlapping schemes should share canonical structure: {store:?}"
    );
    assert!(store.cross_thread_hit_rate > 0.0);
}

#[test]
fn explicit_scheme_list_is_respected() {
    let (static_qpe, iqpe) = paper_qpe_pair();
    let config = PortfolioConfig {
        schemes: vec![Scheme::FixedInput],
        ..Default::default()
    };
    let result = verify_portfolio(&static_qpe, &iqpe, &config);
    assert_eq!(result.schemes.len(), 1);
    assert_eq!(result.winner, Some(Scheme::FixedInput));
    assert_eq!(result.verdict, Equivalence::Equivalent);
}

// ---------------------------------------------------------------------------
// Batch driver
// ---------------------------------------------------------------------------

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("portfolio-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn batch_driver_reports_a_three_pair_manifest() {
    let dir = temp_dir("manifest");
    let (static_qpe, iqpe) = paper_qpe_pair();
    let pairs = [
        ("qpe_ok", static_qpe, iqpe),
        (
            "bv_bad",
            bv::bv_static(&[true, false, true], true),
            bv::bv_dynamic(&[false, false, true]),
        ),
        ("ghz_ok", ghz::ghz(4, true), ghz::ghz(4, true)),
    ];
    let mut manifest = Manifest {
        pairs: Vec::new(),
        chains: None,
    };
    for (name, left, right) in &pairs {
        let left_path = dir.join(format!("{name}.left.qasm"));
        let right_path = dir.join(format!("{name}.right.qasm"));
        std::fs::write(&left_path, circuit::qasm::to_qasm(left)).unwrap();
        std::fs::write(&right_path, circuit::qasm::to_qasm(right)).unwrap();
        manifest.pairs.push(PairSpec {
            name: Some(name.to_string()),
            left: left_path.to_string_lossy().into_owned(),
            right: right_path.to_string_lossy().into_owned(),
            qubits: None,
        });
    }

    let report = run_batch(&manifest, &BatchOptions::default());
    assert_eq!(report.pairs_total, 3);
    assert_eq!(report.pairs_equivalent, 2);
    assert_eq!(report.pairs_failed, 0);

    // The JSON report is machine-readable and names the winning scheme.
    let json = serde_json::to_string_pretty(&report).unwrap();
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    let rendered_pairs = value.get("pairs").unwrap().as_array().unwrap();
    assert_eq!(rendered_pairs.len(), 3);
    for pair in rendered_pairs {
        assert!(pair.get("name").unwrap().as_str().is_some());
        assert!(pair.get("winner").is_some());
        assert!(pair.get("time_to_verdict").unwrap().as_f64().is_some());
        assert!(!pair.get("schemes").unwrap().as_array().unwrap().is_empty());
        // The shared_store block is always rendered: `null` for pairs that
        // took the sequential fast path, an object for threaded races.
        assert!(pair.get("shared_store").is_some());
    }
    let bv_pair = rendered_pairs
        .iter()
        .find(|p| p.get("name").unwrap().as_str() == Some("bv_bad"))
        .unwrap();
    assert_eq!(
        bv_pair.get("verdict").unwrap().as_str(),
        Some("NotEquivalent")
    );
    assert_eq!(
        bv_pair.get("considered_equivalent").unwrap().as_bool(),
        Some(false)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn directory_mode_pairs_files_by_stem() {
    let dir = temp_dir("dirmode");
    let a = ghz::ghz(3, true);
    std::fs::write(dir.join("ghz.left.qasm"), circuit::qasm::to_qasm(&a)).unwrap();
    std::fs::write(dir.join("ghz.right.qasm"), circuit::qasm::to_qasm(&a)).unwrap();
    let hidden = [true, true, false];
    std::fs::write(
        dir.join("bv_a.qasm"),
        circuit::qasm::to_qasm(&bv::bv_static(&hidden, true)),
    )
    .unwrap();
    std::fs::write(
        dir.join("bv_b.qasm"),
        circuit::qasm::to_qasm(&bv::bv_dynamic(&hidden)),
    )
    .unwrap();

    let manifest = manifest_from_dir(&dir).unwrap();
    assert_eq!(manifest.pairs.len(), 2);
    assert_eq!(manifest.pairs[0].name.as_deref(), Some("bv"));
    assert_eq!(manifest.pairs[1].name.as_deref(), Some("ghz"));

    let report = run_batch(&manifest, &BatchOptions::default());
    assert_eq!(report.pairs_equivalent, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_reports_unreadable_pairs_instead_of_dying() {
    let manifest = Manifest {
        pairs: vec![PairSpec {
            name: Some("missing".into()),
            left: "/nonexistent/left.qasm".into(),
            right: "/nonexistent/right.qasm".into(),
            qubits: None,
        }],
        chains: None,
    };
    let report = run_batch(&manifest, &BatchOptions::default());
    assert_eq!(report.pairs_total, 1);
    assert_eq!(report.pairs_failed, 1);
    assert!(report.pairs[0].error.is_some());
    assert_eq!(report.pairs[0].verdict, Equivalence::NoInformation);
}

#[test]
fn warm_stores_reuse_structure_across_same_width_pairs() {
    // Three same-width QFT pairs: with warm stores, every pair after the
    // first must reuse canonical structure carried over from its
    // predecessor (warm_hits > 0) while producing verdicts identical to a
    // cold-store run.
    let dir = temp_dir("warm");
    let mut manifest = Manifest {
        pairs: Vec::new(),
        chains: None,
    };
    for i in 0..3 {
        let left = qft::qft_static(6, None, true);
        let right = qft::qft_dynamic(6);
        let left_path = dir.join(format!("qft_{i}.left.qasm"));
        let right_path = dir.join(format!("qft_{i}.right.qasm"));
        std::fs::write(&left_path, circuit::qasm::to_qasm(&left)).unwrap();
        std::fs::write(&right_path, circuit::qasm::to_qasm(&right)).unwrap();
        manifest.pairs.push(PairSpec {
            name: Some(format!("qft_{i}")),
            left: left_path.to_string_lossy().into_owned(),
            right: right_path.to_string_lossy().into_owned(),
            qubits: None,
        });
    }

    // One worker => pairs run in order on the same pooled store.
    let warm_options = BatchOptions {
        workers: 1,
        ..BatchOptions::default()
    };
    let cold_options = BatchOptions {
        workers: 1,
        warm_stores: false,
        ..BatchOptions::default()
    };
    let warm = run_batch(&manifest, &warm_options);
    let cold = run_batch(&manifest, &cold_options);

    assert_eq!(warm.pairs_total, 3);
    for (w, c) in warm.pairs.iter().zip(cold.pairs.iter()) {
        assert_eq!(w.verdict, c.verdict, "warm stores changed a verdict");
        assert!(w.considered_equivalent);
    }
    assert!(!warm.pairs[0].warm_store, "first pair starts cold");
    for pair in &warm.pairs[1..] {
        assert!(pair.warm_store, "later same-width pairs must be warm");
        let store = pair
            .shared_store
            .as_ref()
            .expect("warm pairs report store telemetry");
        assert!(
            store.warm_hits > 0,
            "warm pair should reuse carried-over structure: {store:?}"
        );
        assert!(
            store.carried_over_nodes > 0,
            "the between-pair GC keeps the gate cache alive: {store:?}"
        );
    }
    assert!(warm.warm_hits_total > 0);
    assert_eq!(cold.warm_hits_total, 0);

    // The warm telemetry survives the JSON rendering as finite numbers.
    let json = serde_json::to_string(&warm).unwrap();
    assert!(json.contains("\"warm_hits\""));
    assert!(json.contains("\"gc_barrier_runs\""));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancelled_schemes_report_a_finite_cross_thread_hit_rate() {
    use dd::{Budget, CancelToken, SharedStore};
    // A scheme cancelled before its first canonical lookup used to divide
    // 0 hits by 0 lookups; on a shared store the report must say 0.0 (the
    // vendored JSON writer rejects NaN and a null would read as "private").
    let (static_qpe, iqpe) = paper_qpe_pair();
    let token = CancelToken::new();
    token.cancel();
    let budget = Budget::unlimited().with_cancel_token(token);
    let store = SharedStore::new();
    let report = portfolio::run_scheme_in(
        Scheme::DynamicFunctional(Strategy::Proportional),
        &static_qpe,
        &iqpe,
        &PortfolioConfig::default(),
        &budget,
        Some(&store),
    );
    assert!(report.cancelled);
    assert_eq!(
        report.cross_thread_hit_rate,
        Some(0.0),
        "shared-store schemes must always report a finite rate"
    );
    let json = serde_json::to_string(&report).unwrap();
    assert!(
        json.contains("\"cross_thread_hit_rate\":0"),
        "rate must render as a number: {json}"
    );
}
