//! Integration tests of the verification service core: admission control,
//! cancellation-on-disconnect, and pool hygiene after a client dies.

use portfolio::service::{RejectReason, Request, ServiceConfig, Source, VerificationService};
use std::time::Duration;

fn inline_pair(n: usize) -> (String, String) {
    (
        circuit::qasm::to_qasm(&algorithms::qft::qft_static(n, None, true)),
        circuit::qasm::to_qasm(&algorithms::qft::qft_dynamic(n)),
    )
}

fn request(n: usize, name: &str) -> Request {
    let (left, right) = inline_pair(n);
    Request {
        name: Some(name.to_string()),
        left: Source::Inline(left),
        right: Source::Inline(right),
        deadline: None,
        node_limit: None,
        width_hint: Some(n),
    }
}

/// A heavy enough pair that a race cannot finish before the test cancels
/// it, but which unwinds quickly once the token trips.
const HEAVY: usize = 18;
/// A light pair for tests that want completions, not longevity.
const LIGHT: usize = 6;

fn config(workers: usize, max_queue: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        max_queue,
        ..ServiceConfig::default()
    }
}

#[test]
fn dropped_handle_cancels_the_inflight_race_and_the_pool_stays_clean() {
    let service = VerificationService::start(config(1, 4));
    let handle = service.submit(request(HEAVY, "disconnect")).unwrap();
    let token = handle.cancel_token().clone();
    // Give the worker a moment to dispatch so the cancel lands mid-race at
    // least some of the time (the queued-cancel path is tested separately).
    std::thread::sleep(Duration::from_millis(50));
    assert!(!token.is_cancelled());
    drop(handle); // client disconnects
    assert!(
        token.is_cancelled(),
        "dropping the handle must trip the token"
    );

    // The cancelled race must unwind promptly — not run to completion,
    // which for a QFT-18 race would take far longer than this timeout.
    assert!(
        service.wait_idle(Duration::from_secs(60)),
        "cancelled race did not unwind in time"
    );
    let stats = service.stats();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.inflight, 0);
    assert_eq!(
        stats.attached_workspaces, 0,
        "a cancelled request leaked a workspace attached to a shelved store"
    );
    // The store the dead client was using went back on its shelf.
    assert!(stats.shelved_widths >= 1);
    service.drain();
}

#[test]
fn explicit_cancel_is_reported_in_the_outcome() {
    let service = VerificationService::start(config(1, 4));
    let handle = service.submit(request(HEAVY, "cancel-me")).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    handle.cancel();
    let outcome = handle.wait();
    assert!(outcome.cancelled);
    assert!(
        !outcome.report.considered_equivalent,
        "a cancelled race must not claim equivalence"
    );
    service.drain();
}

#[test]
fn requests_cancelled_while_queued_never_dispatch() {
    let service = VerificationService::start(config(1, 4));
    // Occupy the single worker...
    let blocker = service.submit(request(HEAVY, "blocker")).unwrap();
    // ...queue a second request and kill it before it can dispatch.
    let queued = service.submit(request(HEAVY, "queued")).unwrap();
    let queued_token = queued.cancel_token().clone();
    drop(queued);
    assert!(queued_token.is_cancelled());
    blocker.cancel();
    let blocked_outcome = blocker.wait();
    assert!(blocked_outcome.cancelled);
    assert!(service.wait_idle(Duration::from_secs(60)));
    let stats = service.stats();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.attached_workspaces, 0);
    service.drain();
}

#[test]
fn admission_control_rejects_when_saturated_and_after_drain() {
    let service = VerificationService::start(config(1, 0));
    let inflight = service.submit(request(HEAVY, "occupant")).unwrap();
    // Capacity is workers + max_queue = 1: the next submit must bounce.
    let rejection = service.submit(request(LIGHT, "overflow"));
    match rejection {
        Err(RejectReason::Saturated { capacity, .. }) => assert_eq!(capacity, 1),
        other => panic!("expected Saturated, got {other:?}"),
    }
    assert_eq!(service.stats().rejected, 1);

    inflight.cancel();
    let _ = inflight.wait();
    service.drain();
    match service.submit(request(LIGHT, "late")) {
        Err(RejectReason::Draining) => {}
        other => panic!("expected Draining, got {other:?}"),
    }
}

#[test]
fn completed_requests_fold_telemetry_and_count_warm_reuse() {
    let service = VerificationService::start(config(1, 8));
    let first = service.submit(request(LIGHT, "a")).unwrap().wait();
    assert!(first.report.considered_equivalent);
    assert!(!first.cancelled);
    let second = service.submit(request(LIGHT, "b")).unwrap().wait();
    assert!(
        second.report.warm_store,
        "same width must hit the warm shelf"
    );
    let stats = service.stats();
    assert!(stats.warm_checkouts >= 1);
    assert!(
        stats.telemetry_races >= 2,
        "each completed pair folds its races into the telemetry store"
    );
    // The per-request metrics delta rides the outcome.
    assert!(second.metrics.get("counters").is_some());
    let folded = service.drain();
    assert!(folded.races >= 2);
}
