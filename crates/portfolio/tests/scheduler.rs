//! Integration tests of the adaptive scheduler, the telemetry store and the
//! predicted launch path.

use algorithms::{ghz, qft, qpe};
use portfolio::scheduler::{plan, SchedulePolicy};
use portfolio::telemetry::{PairFeatures, SchemeStats, TelemetryStore};
use portfolio::{verify_portfolio, verify_portfolio_recorded, PortfolioConfig, Scheme};
use qcec::Strategy;
use std::sync::Mutex;
use std::time::Duration;

fn paper_qpe_pair() -> (circuit::QuantumCircuit, circuit::QuantumCircuit) {
    let phi = 3.0 * std::f64::consts::PI / 8.0;
    (qpe::qpe_static(phi, 3, true), qpe::iqpe_dynamic(phi, 3))
}

/// Seeds `store` so that `winner` looks like a fast, reliable winner for the
/// bucket of (`left`, `right`) while every other applicable scheme looks
/// slow and losing.
fn seed_winner(
    store: &mut TelemetryStore,
    left: &circuit::QuantumCircuit,
    right: &circuit::QuantumCircuit,
    winner: Scheme,
) {
    let bucket = PairFeatures::extract(left, right).bucket();
    for scheme in portfolio::applicable_schemes(left, right) {
        let mut stats = SchemeStats {
            launches: 10,
            total_secs: 5.0,
            ..Default::default()
        };
        if scheme == winner {
            stats.wins = 10;
            stats.conclusive = 10;
            stats.win_secs = 0.1;
            stats.peak_nodes_max = 1000;
            stats.peak_nodes_sum = 9000;
            stats.peak_samples = 10;
        }
        store
            .schemes
            .insert(TelemetryStore::key(scheme, &bucket), stats);
    }
    store.races += 10;
}

#[test]
fn predicted_top_k_ordering_is_deterministic_given_seeded_stats() {
    // Non-tiny static pair => threaded plan.
    let left = ghz::ghz(10, false);
    let right = ghz::ghz(10, false);
    let mut store = TelemetryStore::new();
    seed_winner(&mut store, &left, &right, Scheme::Simulative);
    let config = PortfolioConfig {
        policy: SchedulePolicy::Predicted {
            k: 2,
            escalate_after: Duration::from_secs(1),
        },
        ..Default::default()
    };
    for _ in 0..3 {
        let plan = plan(&left, &right, &config, Some(&store));
        assert!(plan.predicted);
        assert!(!plan.sequential);
        assert_eq!(plan.primary.len(), 2);
        // The seeded winner ranks first; the rest of the ranking is the
        // deterministic score/cost/rank tie-break. Every seeded loser has
        // identical stats, so the second slot goes to the cheapest by
        // static cost profile: the proportional miter schedule.
        assert_eq!(plan.primary[0].scheme, Scheme::Simulative);
        assert_eq!(
            plan.primary[1].scheme,
            Scheme::Functional(Strategy::Proportional)
        );
        // The reserve escalates in race order.
        assert_eq!(
            plan.reserve
                .iter()
                .map(|s| s.scheme)
                .collect::<Vec<Scheme>>(),
            vec![
                Scheme::Functional(Strategy::Aligned),
                Scheme::Functional(Strategy::OneToOne),
                Scheme::Functional(Strategy::Reference),
            ]
        );
        assert_eq!(plan.escalate_after, Some(Duration::from_secs(1)));
    }
}

#[test]
fn predicted_winner_carries_a_gc_hint_from_peak_telemetry() {
    let left = ghz::ghz(10, false);
    let right = ghz::ghz(10, false);
    let mut store = TelemetryStore::new();
    seed_winner(&mut store, &left, &right, Scheme::Simulative);
    let config = PortfolioConfig {
        policy: SchedulePolicy::predicted(),
        ..Default::default()
    };
    let plan = plan(&left, &right, &config, Some(&store));
    // peak_nodes_max = 1000 → doubled and rounded to a power of two is
    // 2048, clamped up to the 2^14 floor.
    assert_eq!(plan.primary[0].gc_hint, Some(1 << 14));
    // Losing schemes were seeded without peak samples: no hint.
    assert_eq!(plan.primary[1].gc_hint, None);
}

#[test]
fn dense_hint_fires_only_on_near_identity_buckets_with_small_peaks() {
    // Identical circuits bucket as near-identity, and the seeded winner's
    // peak telemetry (max 1000 nodes) is under the dense-loss ceiling:
    // dense apply is predicted to be a loss and hinted off.
    let left = ghz::ghz(10, false);
    let right = ghz::ghz(10, false);
    let config = PortfolioConfig {
        policy: SchedulePolicy::predicted(),
        ..Default::default()
    };
    let mut store = TelemetryStore::new();
    seed_winner(&mut store, &left, &right, Scheme::Simulative);
    let near_plan = plan(&left, &right, &config, Some(&store));
    assert_eq!(near_plan.primary[0].dense_hint, Some(0));
    // Losing schemes were seeded without peak samples: no evidence, no hint.
    assert_eq!(near_plan.primary[1].dense_hint, None);

    // Same bucket, but the winner's miters peaked above the ceiling — the
    // pair built dense blocks worth vectorizing, so the hint must not fire.
    let bucket = PairFeatures::extract(&left, &right).bucket();
    assert!(bucket.near_identity, "identical circuits are near-identity");
    let key = TelemetryStore::key(Scheme::Simulative, &bucket);
    store.schemes.get_mut(&key).unwrap().peak_nodes_max =
        portfolio::scheduler::DENSE_LOSS_PEAK_CEILING + 1;
    let big_plan = plan(&left, &right, &config, Some(&store));
    assert_eq!(big_plan.primary[0].dense_hint, None);

    // A pair whose bucket is *not* near-identity never gets the hint, no
    // matter how small its peaks measured.
    let far_left = qft::qft_static(10, None, true);
    let far_right = ghz::ghz(10, false);
    let far_bucket = PairFeatures::extract(&far_left, &far_right).bucket();
    assert!(!far_bucket.near_identity);
    let mut far_store = TelemetryStore::new();
    seed_winner(&mut far_store, &far_left, &far_right, Scheme::Simulative);
    let far_plan = plan(&far_left, &far_right, &config, Some(&far_store));
    for scheduled in far_plan.primary.iter().chain(far_plan.reserve.iter()) {
        assert_eq!(scheduled.dense_hint, None, "{:?}", scheduled.scheme);
    }
}

#[test]
fn empty_stats_degrade_predicted_to_exact_race_plan() {
    let left = qft::qft_static(10, None, true);
    let right = qft::qft_dynamic(10);
    let race_config = PortfolioConfig::default();
    let predicted_config = PortfolioConfig {
        policy: SchedulePolicy::predicted(),
        ..Default::default()
    };
    let empty = TelemetryStore::new();
    let race_plan = plan(&left, &right, &race_config, None);
    for cold in [
        plan(&left, &right, &predicted_config, None),
        plan(&left, &right, &predicted_config, Some(&empty)),
    ] {
        assert_eq!(cold, race_plan, "cold predicted must plan exactly a race");
        assert!(!cold.predicted);
        assert!(cold.reserve.is_empty());
        assert_eq!(cold.escalate_after, None);
    }
    // And the race plan itself preserves the historical launch order.
    assert_eq!(
        race_plan
            .primary
            .iter()
            .map(|s| s.scheme)
            .collect::<Vec<Scheme>>(),
        vec![
            Scheme::FixedInput,
            Scheme::DynamicFunctional(Strategy::Proportional),
            Scheme::DynamicFunctional(Strategy::OneToOne),
            Scheme::DynamicFunctional(Strategy::Reference),
        ]
    );
}

#[test]
fn tiny_pairs_get_a_sequential_plan_under_both_policies() {
    let (static_qpe, iqpe) = paper_qpe_pair();
    let race_plan = plan(&static_qpe, &iqpe, &PortfolioConfig::default(), None);
    assert!(race_plan.sequential);
    assert_eq!(
        race_plan
            .primary
            .iter()
            .map(|s| s.scheme)
            .collect::<Vec<Scheme>>(),
        vec![
            Scheme::DynamicFunctional(Strategy::Proportional),
            Scheme::FixedInput,
            Scheme::DynamicFunctional(Strategy::OneToOne),
            Scheme::DynamicFunctional(Strategy::Reference),
        ]
    );

    // With stats, prediction reorders the sequential attempts but keeps the
    // sequential shape (no threads for a tiny pair).
    let mut store = TelemetryStore::new();
    seed_winner(&mut store, &static_qpe, &iqpe, Scheme::FixedInput);
    let predicted_config = PortfolioConfig {
        policy: SchedulePolicy::predicted(),
        ..Default::default()
    };
    let predicted_plan = plan(&static_qpe, &iqpe, &predicted_config, Some(&store));
    assert!(predicted_plan.sequential);
    assert!(predicted_plan.predicted);
    assert_eq!(predicted_plan.primary[0].scheme, Scheme::FixedInput);
    assert!(predicted_plan.reserve.is_empty());
}

#[test]
fn predicted_primary_wave_always_contains_a_proving_scheme() {
    // Seed the stats so the *simulative* check is the sole predicted winner
    // of a 10-qubit equivalent pair. Simulative agreement is advisory
    // (`ProbablyEquivalent`) — a primary wave of just the simulative check
    // could never settle the pair — so the scheduler must extend the wave
    // with the best proving scheme, and the run concludes without ever
    // escalating.
    let left = ghz::ghz(10, false);
    let right = ghz::ghz(10, false);
    let mut store = TelemetryStore::new();
    seed_winner(&mut store, &left, &right, Scheme::Simulative);
    let config = PortfolioConfig {
        policy: SchedulePolicy::Predicted {
            k: 1,
            escalate_after: Duration::from_secs(60),
        },
        ..Default::default()
    };
    let wave = plan(&left, &right, &config, Some(&store));
    assert_eq!(
        wave.primary.iter().map(|s| s.scheme).collect::<Vec<_>>(),
        vec![
            Scheme::Simulative,
            Scheme::Functional(Strategy::Proportional)
        ],
        "the wave must be extended with a proving scheme"
    );

    let telemetry = Mutex::new(store);
    let result = verify_portfolio_recorded(&left, &right, &config, None, Some(&telemetry));
    assert!(result.predicted);
    assert!(
        !result.escalated(),
        "the extended primary wave concludes without escalation: {:#?}",
        result.schemes
    );
    assert_eq!(result.verdict, qcec::Equivalence::Equivalent);
    assert!(matches!(result.winner, Some(Scheme::Functional(_))));
    assert_eq!(result.schemes.len(), 2, "only the primary wave launched");
}

#[test]
fn escalation_reaches_a_conclusive_verdict_when_the_prediction_errors() {
    // Seed the stats so the fixed-input extraction is the sole predicted
    // winner, then give the run a 1-leaf extraction budget: the predicted
    // scheme fails deterministically, the primary wave drains without a
    // verdict, and the engine must escalate to the reconstruction schemes
    // (which ignore the leaf budget) to still prove equivalence.
    let left = qft::qft_static(10, None, true);
    let right = qft::qft_dynamic(10);
    let mut store = TelemetryStore::new();
    seed_winner(&mut store, &left, &right, Scheme::FixedInput);
    let config = PortfolioConfig {
        policy: SchedulePolicy::Predicted {
            k: 1,
            escalate_after: Duration::from_secs(60),
        },
        leaf_limit: Some(1),
        ..Default::default()
    };
    let telemetry = Mutex::new(store);
    let result = verify_portfolio_recorded(&left, &right, &config, None, Some(&telemetry));
    assert!(result.predicted);
    assert!(
        result.escalated(),
        "a failed primary wave must escalate: {:#?}",
        result.schemes
    );
    // The primary scheme failed fast (leaf budget), so the wave *drained*
    // inconclusive well before the 60s stall deadline — the recorded
    // reason must say so, not blame a stall.
    assert_eq!(
        result.escalation,
        Some(portfolio::EscalationReason::InconclusiveDrain),
        "a drained primary wave is an inconclusive-drain escalation"
    );
    assert!(result.verdict.considered_equivalent());
    assert!(matches!(result.winner, Some(Scheme::DynamicFunctional(_))));
    let fixed = result
        .schemes
        .iter()
        .find(|r| r.scheme == Scheme::FixedInput)
        .expect("the predicted scheme launched first");
    assert!(
        fixed.error.is_some(),
        "the leaf budget must trip: {fixed:?}"
    );
    assert!(
        result.schemes.len() > 1,
        "escalation launches the reserve wave"
    );
}

#[test]
fn stalled_primary_wave_escalates_on_the_deadline() {
    // A zero escalation deadline forces the stall path: whatever the
    // predicted scheme does, the reserve launches (almost) immediately and
    // the verdict must still be conclusive and correct.
    let left = qft::qft_static(10, None, true);
    let right = qft::qft_dynamic(10);
    let mut store = TelemetryStore::new();
    seed_winner(&mut store, &left, &right, Scheme::FixedInput);
    let config = PortfolioConfig {
        policy: SchedulePolicy::Predicted {
            k: 1,
            escalate_after: Duration::ZERO,
        },
        ..Default::default()
    };
    let telemetry = Mutex::new(store);
    let result = verify_portfolio_recorded(&left, &right, &config, None, Some(&telemetry));
    assert!(result.predicted);
    assert!(
        result.verdict.considered_equivalent(),
        "verdict {:?} via {:?}",
        result.verdict,
        result.winner
    );
}

#[test]
fn predicted_matches_race_verdicts_and_launches_fewer_schemes() {
    // The acceptance pairs: the paper's 3-bit QPE/IQPE example and a
    // 10-qubit dynamic QFT. Race first (recording telemetry), then verify
    // again predictively: verdicts must match and the threaded pair must
    // launch strictly fewer schemes.
    let (static_qpe, iqpe) = paper_qpe_pair();
    let qft_left = qft::qft_static(10, None, true);
    let qft_right = qft::qft_dynamic(10);

    let telemetry = Mutex::new(TelemetryStore::new());
    let race_config = PortfolioConfig::default();
    let race_qpe =
        verify_portfolio_recorded(&static_qpe, &iqpe, &race_config, None, Some(&telemetry));
    let race_qft =
        verify_portfolio_recorded(&qft_left, &qft_right, &race_config, None, Some(&telemetry));
    assert!(!race_qpe.predicted && !race_qft.predicted);

    let predicted_config = PortfolioConfig {
        policy: SchedulePolicy::predicted(),
        ..Default::default()
    };
    let predicted_qpe = verify_portfolio_recorded(
        &static_qpe,
        &iqpe,
        &predicted_config,
        None,
        Some(&telemetry),
    );
    let predicted_qft = verify_portfolio_recorded(
        &qft_left,
        &qft_right,
        &predicted_config,
        None,
        Some(&telemetry),
    );

    assert_eq!(
        predicted_qpe.verdict.considered_equivalent(),
        race_qpe.verdict.considered_equivalent()
    );
    assert_eq!(
        predicted_qft.verdict.considered_equivalent(),
        race_qft.verdict.considered_equivalent()
    );
    assert!(predicted_qft.predicted, "warm stats must steer the plan");
    if !predicted_qft.escalated() {
        assert!(
            predicted_qft.schemes.len() < race_qft.schemes.len(),
            "prediction should launch fewer schemes: {} vs {}",
            predicted_qft.schemes.len(),
            race_qft.schemes.len()
        );
    }
}

#[test]
fn predicted_sharing_follows_recorded_payoff_with_identical_verdicts() {
    // Non-tiny equivalent pair => threaded plans, where the sharing
    // decision actually changes what the engine builds.
    let left = ghz::ghz(10, false);
    let right = ghz::ghz(10, false);
    let features = PairFeatures::extract(&left, &right);
    let predicted_config = PortfolioConfig {
        policy: SchedulePolicy::predicted(),
        ..Default::default()
    };

    // Low recorded cross-thread hit rate (the small-miter signature from
    // BENCH_shared.json, ~0.07): prediction races on private packages.
    let mut low = TelemetryStore::new();
    seed_winner(&mut low, &left, &right, Scheme::Simulative);
    low.record_sharing(&features, 0.07, 0.001, 1.0);
    let low_plan = plan(&left, &right, &predicted_config, Some(&low));
    assert!(low_plan.predicted);
    assert!(!low_plan.shared, "a low-payoff bucket must race private");
    assert_eq!(low_plan.shared_reason, "predicted-private");

    // High recorded hit rate with modest contention: prediction shares.
    let mut high = TelemetryStore::new();
    seed_winner(&mut high, &left, &right, Scheme::Simulative);
    high.record_sharing(&features, 0.52, 0.02, 1.0);
    let high_plan = plan(&left, &right, &predicted_config, Some(&high));
    assert!(high_plan.shared, "a high-payoff bucket must share");
    assert_eq!(high_plan.shared_reason, "predicted-shared");

    // A good hit rate is vetoed when store locks ate the race time.
    let mut contended = TelemetryStore::new();
    seed_winner(&mut contended, &left, &right, Scheme::Simulative);
    contended.record_sharing(&features, 0.52, 0.9, 1.0);
    let contended_plan = plan(&left, &right, &predicted_config, Some(&contended));
    assert!(!contended_plan.shared, "contention must veto sharing");
    assert_eq!(contended_plan.shared_reason, "predicted-private");

    // Scheme stats without sharing samples keep the config default.
    let mut cold = TelemetryStore::new();
    seed_winner(&mut cold, &left, &right, Scheme::Simulative);
    let cold_plan = plan(&left, &right, &predicted_config, Some(&cold));
    assert!(cold_plan.shared);
    assert_eq!(cold_plan.shared_reason, "cold-telemetry");

    // The race policy never predicts: config default, "race-default".
    let race_plan = plan(&left, &right, &PortfolioConfig::default(), Some(&low));
    assert!(race_plan.shared);
    assert_eq!(race_plan.shared_reason, "race-default");

    // --private-packages is absolute: no prediction can turn sharing on.
    let private_config = PortfolioConfig {
        policy: SchedulePolicy::predicted(),
        shared_package: false,
        ..Default::default()
    };
    let private_plan = plan(&left, &right, &private_config, Some(&high));
    assert!(!private_plan.shared);
    assert_eq!(private_plan.shared_reason, "config-private");

    // The acceptance half: whichever way the sharing prediction goes, the
    // verdict must be exactly the race policy's.
    let race_result = verify_portfolio(&left, &right, &PortfolioConfig::default());
    assert!(race_result.shared);
    assert_eq!(race_result.shared_reason, "race-default");
    for store in [low, high] {
        let telemetry = Mutex::new(store);
        let result =
            verify_portfolio_recorded(&left, &right, &predicted_config, None, Some(&telemetry));
        assert_eq!(result.verdict, race_result.verdict);
        assert_eq!(result.shared, result.shared_store.is_some());
    }
}

#[test]
fn stats_files_without_sharing_records_still_load() {
    // Stats files written before the sharing field existed have no
    // "sharing" key at all; the missing key deserializes as Null, which the
    // Option field must absorb into a cold (config-default) decision.
    let old_format = r#"{"races": 3, "schemes": []}"#;
    let store = TelemetryStore::from_json(old_format).expect("old stats files must keep loading");
    assert_eq!(store.races, 3);
    assert!(store.sharing.is_none());
    let bucket = PairFeatures {
        qubits: 10,
        gates: 10,
        non_unitary: 0,
        gate_set_diff: 0,
        gate_count_diff: 0,
        dynamic: false,
    }
    .bucket();
    assert!(store.sharing_stats(&bucket).is_none());

    // And a store that *has* sharing records round-trips them.
    let mut warm = TelemetryStore::new();
    let features = PairFeatures {
        qubits: 11,
        gates: 100,
        non_unitary: 0,
        gate_set_diff: 0,
        gate_count_diff: 0,
        dynamic: false,
    };
    warm.record_sharing(&features, 0.5, 0.01, 2.0);
    let reloaded = TelemetryStore::from_json(&warm.to_json()).expect("round trip");
    let stats = reloaded
        .sharing_stats(&features.bucket())
        .expect("sharing survives the round trip");
    assert_eq!(stats.races, 1);
    assert!((stats.mean_hit_rate() - 0.5).abs() < 1e-12);
    // Merging doubles the sharing counters like every other stat.
    let mut merged = reloaded.clone();
    merged.merge(&reloaded);
    assert_eq!(merged.sharing_stats(&features.bucket()).unwrap().races, 2);
}

#[test]
fn telemetry_round_trips_through_save_load_merge() {
    let left = qft::qft_static(10, None, true);
    let right = qft::qft_dynamic(10);
    let telemetry = Mutex::new(TelemetryStore::new());
    let config = PortfolioConfig::default();
    verify_portfolio_recorded(&left, &right, &config, None, Some(&telemetry));
    let store = telemetry.into_inner().unwrap();
    assert!(!store.is_empty());
    assert_eq!(store.races, 1);

    let path = std::env::temp_dir().join(format!("scheduler-stats-{}.json", std::process::id()));
    store.save(&path).expect("save stats");
    let loaded = TelemetryStore::load(&path).expect("load stats");
    assert_eq!(loaded.races, store.races);
    assert_eq!(loaded.schemes.len(), store.schemes.len());
    for (key, stats) in &store.schemes {
        let reloaded = loaded.schemes.get(key).expect("key survives round trip");
        assert_eq!(reloaded.launches, stats.launches);
        assert_eq!(reloaded.wins, stats.wins);
        assert_eq!(reloaded.peak_nodes_max, stats.peak_nodes_max);
        assert!((reloaded.total_secs - stats.total_secs).abs() < 1e-9);
    }

    // Merging the store into itself doubles every counter.
    let mut merged = loaded.clone();
    merged.merge(&loaded);
    assert_eq!(merged.races, 2 * loaded.races);
    for (key, stats) in &merged.schemes {
        assert_eq!(stats.launches, 2 * loaded.schemes[key].launches);
    }

    // A missing file loads as an empty store (the cold-start contract).
    let _ = std::fs::remove_file(&path);
    let missing = TelemetryStore::load(&path).expect("missing file is not an error");
    assert!(missing.is_empty());
}

#[test]
fn explicit_scheme_lists_bypass_the_scheduler() {
    let (static_qpe, iqpe) = paper_qpe_pair();
    let mut store = TelemetryStore::new();
    seed_winner(&mut store, &static_qpe, &iqpe, Scheme::FixedInput);
    let config = PortfolioConfig {
        schemes: vec![Scheme::DynamicFunctional(Strategy::Proportional)],
        policy: SchedulePolicy::predicted(),
        ..Default::default()
    };
    let explicit = plan(&static_qpe, &iqpe, &config, Some(&store));
    assert!(!explicit.predicted);
    assert!(!explicit.sequential);
    assert_eq!(explicit.primary.len(), 1);
    assert_eq!(
        explicit.primary[0].scheme,
        Scheme::DynamicFunctional(Strategy::Proportional)
    );

    // And the engine still honours it end to end.
    let result = verify_portfolio(&static_qpe, &iqpe, &config);
    assert_eq!(result.schemes.len(), 1);
    assert!(result.verdict.considered_equivalent());
}
