//! Dense terminal-case apply parity: every scheme must produce the same
//! verdict whether the decision-diagram recursions run all the way down to
//! the terminals (dense cutoff 0 — the dense path disabled) or drop to the
//! dense SoA kernels below 2 or 3 levels (3 is the shipped default).
//!
//! The dense path computes the *same* node-function products as the
//! recursive path and re-interns them through the same canonical tables, so
//! this is not an approximate-parity test: verdicts must be identical, and
//! peak node counts may only differ by the intermediate subproducts the
//! dense path never materialises (bounded below by construction, bounded
//! above here by a regression factor).

use algorithms::{qft, qpe};
use portfolio::{applicable_schemes, run_scheme, PortfolioConfig, Scheme};
use qcec::{Equivalence, Strategy};

use circuit::QuantumCircuit;
use dd::Budget;

const CUTOFFS: [u32; 3] = [0, 2, 3];

/// Peak-node regression bound between cutoff settings. The dense path
/// allocates a subset of the recursive path's nodes (it skips intermediate
/// subproducts), so counts should be close; the factor plus the absolute
/// slack absorbs GC-timing noise on tiny instances.
const PEAK_FACTOR: f64 = 1.5;
const PEAK_SLACK: usize = 64;

struct SchemeRun {
    scheme: Scheme,
    verdict: Option<Equivalence>,
    peak_nodes: Option<usize>,
}

fn run_pair_at_cutoff(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    cutoff: u32,
) -> Vec<SchemeRun> {
    let mut config = PortfolioConfig::default();
    config.configuration.memory.dense_cutoff = cutoff;
    config.extraction.memory.dense_cutoff = cutoff;
    applicable_schemes(left, right)
        .into_iter()
        .map(|scheme| {
            let report = run_scheme(scheme, left, right, &config, &Budget::unlimited());
            assert!(
                report.error.is_none(),
                "{} failed at cutoff {cutoff}: {:?}",
                scheme.name(),
                report.error
            );
            SchemeRun {
                scheme,
                verdict: report.verdict,
                peak_nodes: report.peak_nodes,
            }
        })
        .collect()
}

fn assert_parity_across_cutoffs(label: &str, left: &QuantumCircuit, right: &QuantumCircuit) {
    let baseline = run_pair_at_cutoff(left, right, CUTOFFS[0]);
    assert!(!baseline.is_empty(), "{label}: no applicable schemes");
    for &cutoff in &CUTOFFS[1..] {
        let runs = run_pair_at_cutoff(left, right, cutoff);
        assert_eq!(runs.len(), baseline.len(), "{label}: scheme set changed");
        for (base, run) in baseline.iter().zip(&runs) {
            assert_eq!(base.scheme, run.scheme, "{label}: scheme order changed");
            assert_eq!(
                base.verdict,
                run.verdict,
                "{label}/{}: verdict differs between cutoff {} and {cutoff}",
                base.scheme.name(),
                CUTOFFS[0],
            );
            if let (Some(p0), Some(p1)) = (base.peak_nodes, run.peak_nodes) {
                let bound = |p: usize| (p as f64 * PEAK_FACTOR) as usize + PEAK_SLACK;
                assert!(
                    p1 <= bound(p0) && p0 <= bound(p1),
                    "{label}/{}: peak nodes {p1} at cutoff {cutoff} vs {p0} at cutoff {} \
                     exceed the {PEAK_FACTOR}x regression bound",
                    base.scheme.name(),
                    CUTOFFS[0],
                );
            }
        }
    }
}

/// The four static-pair schemes (three miter schedules + simulation) on a
/// QFT-10 instance pair.
#[test]
fn qft10_static_schemes_agree_across_dense_cutoffs() {
    let left = qft::qft_static(10, None, false);
    let right = qft::qft_static(10, None, false);
    let schemes = applicable_schemes(&left, &right);
    for strategy in [
        Strategy::Reference,
        Strategy::OneToOne,
        Strategy::Proportional,
    ] {
        assert!(schemes.contains(&Scheme::Functional(strategy)));
    }
    assert!(schemes.contains(&Scheme::Simulative));
    assert_parity_across_cutoffs("qft10-static", &left, &right);
}

/// The four dynamic-pair schemes (three reconstruction schedules + the
/// fixed-input extraction) on the QFT-10 static/dynamic pair.
#[test]
fn qft10_dynamic_schemes_agree_across_dense_cutoffs() {
    let left = qft::qft_static(10, None, true);
    let right = qft::qft_dynamic(10);
    let schemes = applicable_schemes(&left, &right);
    for strategy in [
        Strategy::Reference,
        Strategy::OneToOne,
        Strategy::Proportional,
    ] {
        assert!(schemes.contains(&Scheme::DynamicFunctional(strategy)));
    }
    assert!(schemes.contains(&Scheme::FixedInput));
    assert_parity_across_cutoffs("qft10-dynamic", &left, &right);
}

/// Static-pair schemes on a QPE-7 instance (7 precision bits, exactly
/// representable phase so the verdict is a clean Equivalent).
#[test]
fn qpe7_static_schemes_agree_across_dense_cutoffs() {
    let phi = qpe::random_exact_phase(7, 0xDAC2022);
    let left = qpe::qpe_static(phi, 7, false);
    let right = qpe::qpe_static(phi, 7, false);
    assert_parity_across_cutoffs("qpe7-static", &left, &right);
}

/// Dynamic-pair schemes on the QPE-7 static/iterative pair.
#[test]
fn qpe7_dynamic_schemes_agree_across_dense_cutoffs() {
    let phi = qpe::random_exact_phase(7, 0xDAC2022);
    let left = qpe::qpe_static(phi, 7, true);
    let right = qpe::iqpe_dynamic(phi, 7);
    assert_parity_across_cutoffs("qpe7-dynamic", &left, &right);
}

/// A refuting pair must stay refuted with the dense path live: the dense
/// kernels feed the same canonical weights back into the diagrams, so a
/// NotEquivalent verdict cannot flip to a false Equivalent.
#[test]
fn refutation_survives_dense_cutoffs() {
    let left = qft::qft_static(8, None, false);
    let right = qft::qft_static(8, Some(2), false); // banded approximation
    let baseline = run_pair_at_cutoff(&left, &right, 0);
    assert!(
        baseline
            .iter()
            .any(|r| r.verdict == Some(Equivalence::NotEquivalent)),
        "approximate QFT pair should be refuted"
    );
    assert_parity_across_cutoffs("qft8-approx", &left, &right);
}
