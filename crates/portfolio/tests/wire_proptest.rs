//! Adversarial property tests for the verifyd wire protocol.
//!
//! The daemon's reader loop must survive *any* byte stream a client (or a
//! port scanner, or a truncated pipe) throws at it: every line maps to a
//! structured response, framing stays synchronized across oversized lines,
//! and nothing panics.

use portfolio::wire::{self, code, Frame};
use proptest::prelude::*;
use std::io::BufReader;

/// Arbitrary bytes, biased toward JSON-ish punctuation so the parser gets
/// past the first character often enough to stress the deeper paths.
fn adversarial_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        (0u16..300).prop_map(|n| {
            const SPICE: &[u8] = b"{}[]\":,\n\r \\0123456789truefalsenulidmethodparams";
            if (n as usize) < SPICE.len() {
                SPICE[n as usize]
            } else {
                (n % 256) as u8
            }
        }),
        0..600,
    )
}

const KNOWN_CODES: &[i64] = &[
    code::PARSE_ERROR,
    code::INVALID_REQUEST,
    code::INVALID_PARAMS,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `parse_request` is total: any byte string yields either a parsed
    /// request or a structured error with a known code, a non-empty
    /// message and a legal (echoable) id — never a panic.
    #[test]
    fn parse_request_is_total(line in adversarial_bytes()) {
        match wire::parse_request(&line) {
            Ok(request) => {
                // A parsed request must render a well-formed response line.
                let response =
                    wire::response_ok(request.id.as_ref(), serde::Value::Bool(true));
                prop_assert!(response.ends_with('\n'));
                prop_assert_eq!(response.matches('\n').count(), 1);
            }
            Err(error) => {
                prop_assert!(
                    KNOWN_CODES.contains(&error.code),
                    "unknown error code {}",
                    error.code
                );
                prop_assert!(!error.message.is_empty());
                // Whatever id was salvaged must render back into a single
                // response line.
                let response = wire::response_request_error(&error);
                prop_assert!(response.ends_with('\n'));
                prop_assert_eq!(response.matches('\n').count(), 1);
            }
        }
    }

    /// Framing is total and lossless-or-accounted: every byte of the
    /// stream ends up either in a delivered line, discarded by an
    /// oversized frame, or consumed as a line terminator; the reader
    /// always reaches EOF; no delivered line exceeds the cap.
    #[test]
    fn read_frame_accounts_for_every_byte(
        bytes in adversarial_bytes(),
        cap in 1usize..64,
        buf in 1usize..16,
    ) {
        let mut reader = BufReader::with_capacity(buf, &bytes[..]);
        let mut accounted = 0usize;
        let mut frames = 0usize;
        loop {
            frames += 1;
            prop_assert!(frames <= bytes.len() + 2, "reader failed to make progress");
            match wire::read_frame(&mut reader, cap).unwrap() {
                Frame::Line(line) => {
                    prop_assert!(line.len() <= cap);
                    // +1 for the newline, except a final unterminated line.
                    accounted += line.len() + 1;
                }
                Frame::Oversized { discarded } => {
                    prop_assert!(discarded > cap);
                    accounted += discarded + 1;
                }
                Frame::Eof => break,
            }
        }
        // `accounted` over-counts by at most 1 newline (final line without
        // one) plus 1 per trimmed `\r`; it can never under-count.
        prop_assert!(accounted + frames >= bytes.len());
    }

    /// The daemon reader-loop invariant end to end: frame an arbitrary
    /// stream, feed every line through the parser, and require that each
    /// frame is either skippable whitespace or maps to exactly one
    /// response (success or structured error). Nothing is silently
    /// dropped.
    #[test]
    fn every_frame_maps_to_a_response_or_blank(bytes in adversarial_bytes()) {
        let mut reader = BufReader::with_capacity(8, &bytes[..]);
        loop {
            match wire::read_frame(&mut reader, 128).unwrap() {
                Frame::Eof => break,
                Frame::Oversized { .. } => {
                    // The daemon answers with OVERSIZED_FRAME; rendering it
                    // must produce one line.
                    let line = wire::response_error(None, code::OVERSIZED_FRAME, "too long");
                    prop_assert_eq!(line.matches('\n').count(), 1);
                }
                Frame::Line(line) => {
                    if line.iter().all(u8::is_ascii_whitespace) {
                        continue;
                    }
                    let response = match wire::parse_request(&line) {
                        Ok(request) => wire::response_ok(
                            request.id.as_ref(),
                            serde::Value::String(request.method),
                        ),
                        Err(error) => wire::response_request_error(&error),
                    };
                    prop_assert!(response.ends_with('\n'));
                    prop_assert_eq!(response.matches('\n').count(), 1);
                }
            }
        }
    }

    /// Well-formed requests round-trip: id, method and params come back
    /// exactly as sent, whatever junk surrounds them in the object.
    #[test]
    fn valid_requests_roundtrip(
        id in 0u64..1_000_000,
        method_pick in 0usize..5,
        with_params in any::<bool>(),
    ) {
        let method = ["verify-pair", "verify-batch", "stats", "drain", "shutdown"][method_pick];
        let params = if with_params { r#","params":{"left":"a","right":"b"}"# } else { "" };
        let line = format!(r#"{{"id":{id},"method":"{method}","extra":[1,2]{params}}}"#);
        let request = wire::parse_request(line.as_bytes()).unwrap();
        prop_assert_eq!(request.id, Some(serde::Value::Number(id as f64)));
        prop_assert_eq!(request.method, method);
        prop_assert_eq!(request.params.is_some(), with_params);
    }
}
