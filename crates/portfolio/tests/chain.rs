//! Integration tests of incremental (pass-by-pass) chain verification:
//! blame localisation, chain-vs-endpoint verdict parity, warm-store
//! carry-over and the between-request prune skip.

use compile::{Compiler, CompilerOptions, Target};
use portfolio::batch::{run_batch, BatchOptions, Manifest, PairSpec};
use portfolio::service::{ServiceConfig, Source, VerificationService};
use portfolio::{ChainRequest, ChainSpec, ChainStep, ChainStepSpec, PortfolioConfig};
use qcec::Equivalence;

/// A staged line-routed QFT compilation: original plus four pass outputs.
fn staged_qft(n: usize) -> Vec<(String, circuit::QuantumCircuit)> {
    let original = algorithms::qft::qft_static(n, None, true);
    let compiler = Compiler::with_options(Target::line(n), CompilerOptions::default());
    let staged = compiler.compile_staged(&original).expect("QFT compiles");
    staged
        .chain()
        .into_iter()
        .map(|(pass, circuit)| (pass.to_string(), circuit.clone()))
        .collect()
}

fn inline_chain_request(name: &str, chain: &[(String, circuit::QuantumCircuit)]) -> ChainRequest {
    ChainRequest {
        name: Some(name.to_string()),
        steps: chain
            .iter()
            .map(|(pass, circuit)| ChainStep {
                pass: Some(pass.clone()),
                source: Source::Inline(circuit::qasm::to_qasm(circuit)),
            })
            .collect(),
        deadline: None,
        node_limit: None,
        width_hint: chain.iter().map(|(_, c)| c.num_qubits()).max(),
    }
}

#[test]
fn broken_middle_pass_is_blamed_by_name() {
    // Bernstein–Vazirani: the measured outcome is the deterministic hidden
    // string, so a single bit flip before measurement is visible to every
    // scheme (for QFT-like families a mid-circuit X permutes a *uniform*
    // distribution and the fixed-input scheme could not see it).
    let hidden = [true, false, true, true, false];
    let original = algorithms::bv::bv_static(&hidden, true);
    let n = original.num_qubits();
    let compiler = Compiler::with_options(Target::line(n), CompilerOptions::default());
    let staged = compiler.compile_staged(&original).expect("BV compiles");
    let mut chain: Vec<(String, circuit::QuantumCircuit)> = staged
        .chain()
        .into_iter()
        .map(|(pass, circuit)| (pass.to_string(), circuit.clone()))
        .collect();
    assert!(chain.len() >= 4, "staged compilation has ≥3 passes");
    // Corrupt the *route* snapshot: flip the first measured qubit right
    // before its measurement, so the basis→route step is the first
    // non-equivalent adjacent pair.
    let route = chain
        .iter_mut()
        .find(|(pass, _)| pass == "route")
        .expect("route pass exists");
    let mut corrupted = circuit::QuantumCircuit::new(route.1.num_qubits(), route.1.num_bits());
    let mut injected = false;
    for op in route.1.iter() {
        if !injected {
            if let circuit::OpKind::Measure { qubit, .. } = op.kind {
                corrupted.x(qubit);
                injected = true;
            }
        }
        corrupted.push(op.clone());
    }
    assert!(injected, "routed BV circuit measures");
    route.1 = corrupted;

    let service = VerificationService::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let outcome = service
        .submit_chain(inline_chain_request("broken-route", &chain))
        .expect("chain admitted")
        .wait();
    let report = &outcome.report;
    assert_eq!(report.verdict, Equivalence::NotEquivalent);
    assert!(!report.considered_equivalent);
    assert_eq!(
        report.guilty_pass.as_deref(),
        Some("route"),
        "the first broken adjacent pair names its pass: {report:?}"
    );
    // The chain stopped at the refutation instead of wasting work on the
    // remaining steps.
    assert!(report.steps_verified < report.steps_total);
    let guilty_step = report
        .steps
        .iter()
        .find(|step| step.pass == "route")
        .expect("guilty step reported");
    assert_eq!(guilty_step.report.verdict, Equivalence::NotEquivalent);
    service.drain();
}

#[test]
fn unbroken_chain_matches_endpoint_verdict_and_carries_structure() {
    // The same staged pipeline verified three ways: pass-by-pass as a
    // chain, endpoint-only as a pair, and endpoint-only with private
    // per-scheme packages. All must agree that compilation preserved the
    // function, and the chain must actually reuse structure across steps.
    let chain = staged_qft(6);
    let dir = std::env::temp_dir().join(format!("chain-parity-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    let mut steps = Vec::new();
    for (index, (pass, circuit)) in chain.iter().enumerate() {
        let path = dir.join(format!("qft6.{index}-{pass}.qasm"));
        std::fs::write(&path, circuit::qasm::to_qasm(circuit)).unwrap();
        steps.push(ChainStepSpec {
            pass: Some(pass.clone()),
            path: path.to_string_lossy().into_owned(),
        });
    }
    let manifest = Manifest {
        pairs: vec![PairSpec {
            name: Some("qft6-endpoint".into()),
            left: steps.first().unwrap().path.clone(),
            right: steps.last().unwrap().path.clone(),
            qubits: Some(6),
        }],
        chains: Some(vec![ChainSpec {
            name: Some("qft6".into()),
            qubits: Some(6),
            steps,
        }]),
    };

    for shared_package in [true, false] {
        let options = BatchOptions {
            workers: 1,
            portfolio: PortfolioConfig {
                shared_package,
                ..PortfolioConfig::default()
            },
            ..BatchOptions::default()
        };
        let report = run_batch(&manifest, &options);
        assert_eq!(report.chains_total, 1);
        assert_eq!(report.pairs_total, 1);
        let chain_report = &report.chains[0];
        let pair_report = &report.pairs[0];
        assert_eq!(
            chain_report.considered_equivalent, pair_report.considered_equivalent,
            "chain and endpoint verdicts disagree (shared_package={shared_package}): \
             {chain_report:?} vs {pair_report:?}"
        );
        assert!(chain_report.considered_equivalent);
        assert!(chain_report.guilty_pass.is_none());
        assert_eq!(chain_report.steps_verified, chain_report.steps_total);
        assert!(report.pairs_per_sec > 0.0, "throughput metric missing");
        if shared_package {
            // Steps after the first hit structure interned by earlier
            // steps of the same chain, and those hits are the chain
            // subset of the batch's warm hits.
            assert!(
                chain_report.chain_hits > 0,
                "no chain carry-over hits: {chain_report:?}"
            );
            assert!(report.warm_hits_total >= report.chain_hits_total);
            assert!(report.chain_hits_total >= chain_report.chain_hits);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn same_width_queue_skips_the_between_request_prune() {
    // Three same-width requests on one worker: while one runs, the next
    // waits in the queue with a matching width hint, so the between-request
    // prune is skipped (the retained structure is about to be wanted).
    let chain = staged_qft(5);
    let (_, original) = &chain[0];
    let (_, compiled) = chain.last().unwrap();
    let service = VerificationService::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let request = || portfolio::service::Request {
        name: None,
        left: Source::Inline(circuit::qasm::to_qasm(original)),
        right: Source::Inline(circuit::qasm::to_qasm(compiled)),
        deadline: None,
        node_limit: None,
        width_hint: Some(original.num_qubits()),
    };
    let handles: Vec<_> = (0..3)
        .map(|_| service.submit(request()).expect("admitted"))
        .collect();
    for handle in handles {
        assert!(handle.wait().report.considered_equivalent);
    }
    let stats = service.stats();
    assert!(
        stats.pool_gc_skips >= 1,
        "queued same-width requests should skip at least one prune: {stats:?}"
    );
    service.drain();
}
