//! Error type of the transformation passes.

use std::fmt;

/// Error returned by the unitary-reconstruction passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// A measured qubit is modified afterwards in a way that does not commute
    /// with the measurement, so the measurement cannot be deferred.
    QubitUsedAfterMeasurement {
        /// The offending qubit.
        qubit: usize,
        /// Description of the offending operation.
        operation: String,
    },
    /// A reset remains in the circuit although the pass requires a reset-free
    /// input (run reset substitution first).
    UnexpectedReset {
        /// The qubit being reset.
        qubit: usize,
    },
    /// The two circuits cannot be aligned because their register sizes differ
    /// after reconstruction.
    RegisterMismatch {
        /// Qubits in the reference circuit.
        reference_qubits: usize,
        /// Qubits in the transformed circuit.
        transformed_qubits: usize,
    },
    /// The two circuits cannot be aligned because their measurement maps
    /// disagree.
    MeasurementMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::QubitUsedAfterMeasurement { qubit, operation } => write!(
                f,
                "qubit {qubit} is modified by `{operation}` after being measured; \
                 the measurement cannot be deferred"
            ),
            TransformError::UnexpectedReset { qubit } => write!(
                f,
                "reset of qubit {qubit} encountered; run reset substitution before \
                 deferring measurements"
            ),
            TransformError::RegisterMismatch {
                reference_qubits,
                transformed_qubits,
            } => write!(
                f,
                "register sizes differ: reference has {reference_qubits} qubits, \
                 transformed circuit has {transformed_qubits}"
            ),
            TransformError::MeasurementMismatch { detail } => {
                write!(f, "measurement maps cannot be aligned: {detail}")
            }
        }
    }
}

impl std::error::Error for TransformError {}
