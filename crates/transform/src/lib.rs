//! # transform — unitary reconstruction of dynamic quantum circuits
//!
//! Implementation of the circuit-transformation scheme from Section 4 of
//! *Burgholzer & Wille, "Handling Non-Unitaries in Quantum Circuit
//! Equivalence Checking" (DAC 2022)*:
//!
//! 1. [`substitute_resets`] — every reset is replaced by a fresh qubit, so an
//!    `n`-qubit circuit with `r` resets becomes an `(n + r)`-qubit circuit
//!    without resets.
//! 2. [`defer_measurements`] — all measurements are moved to the end of the
//!    circuit, replacing classically-controlled operations with
//!    quantum-controlled ones (the deferred measurement principle).
//!
//! [`reconstruct_unitary`] runs both passes and reports the transformation
//! time (`t_trans` in the paper's Table 1). [`align_to_reference`] renames
//! the qubits of a reconstructed circuit so that they line up with a static
//! reference circuit, using the classical measurement bits as the common
//! frame of reference.
//!
//! ```
//! use algorithms::qpe;
//! use transform::{align_to_reference, reconstruct_unitary};
//!
//! let phi = 3.0 * std::f64::consts::PI / 8.0;
//! let static_qpe = qpe::qpe_static(phi, 3, true);
//! let iqpe = qpe::iqpe_dynamic(phi, 3);
//!
//! let reconstruction = reconstruct_unitary(&iqpe)?;
//! let aligned = align_to_reference(&static_qpe, &reconstruction.circuit)?;
//! assert_eq!(aligned.num_qubits(), static_qpe.num_qubits());
//! # Ok::<(), transform::TransformError>(())
//! ```

#![warn(missing_docs)]

mod deferred_measurement;
mod error;
mod reconstruction;
mod reset_substitution;

pub use deferred_measurement::{defer_measurements, DeferredMeasurements};
pub use error::TransformError;
pub use reconstruction::{align_to_reference, reconstruct_unitary, Reconstruction};
pub use reset_substitution::{substitute_resets, ResetSubstitution};
