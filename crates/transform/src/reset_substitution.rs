//! Reset substitution: replace every reset by a fresh qubit (Section 4 of
//! the paper).
//!
//! A reset can be interpreted as measuring a qubit, flipping it back to |0⟩
//! when the outcome was |1⟩ and discarding the outcome. Functionally, the
//! same effect is obtained by *abandoning* the qubit and continuing all
//! subsequent operations on a freshly allocated qubit in state |0⟩. An
//! `n`-qubit circuit with `r` resets therefore becomes an `(n + r)`-qubit
//! circuit without any reset primitives.

use circuit::{OpKind, QuantumCircuit};

/// Result of the reset-substitution pass.
#[derive(Debug, Clone)]
pub struct ResetSubstitution {
    /// The reset-free circuit on `original qubits + added_qubits` qubits.
    pub circuit: QuantumCircuit,
    /// Number of freshly introduced qubits (= number of resets substituted).
    pub added_qubits: usize,
    /// For every original qubit, the physical qubit holding its final state
    /// (i.e. after the last substitution affecting it).
    pub final_location: Vec<usize>,
}

/// Replaces every reset in `circuit` by a fresh qubit.
///
/// The fresh qubits are appended after the original register in the order the
/// resets appear in the circuit. All operations following a reset of qubit
/// `q` act on the fresh qubit that replaced `q`.
///
/// # Examples
///
/// ```
/// use circuit::QuantumCircuit;
/// use transform::substitute_resets;
///
/// let mut qc = QuantumCircuit::new(1, 2);
/// qc.h(0).measure(0, 0).reset(0).h(0).measure(0, 1);
/// let result = substitute_resets(&qc);
/// assert_eq!(result.added_qubits, 1);
/// assert_eq!(result.circuit.num_qubits(), 2);
/// assert_eq!(result.circuit.reset_count(), 0);
/// ```
pub fn substitute_resets(circuit: &QuantumCircuit) -> ResetSubstitution {
    let n = circuit.num_qubits();
    let resets = circuit.reset_count();
    let mut out = QuantumCircuit::with_name(
        n + resets,
        circuit.num_bits(),
        format!("{}_reset_free", circuit.name()),
    );
    // current[q] = physical qubit currently holding original qubit q.
    let mut current: Vec<usize> = (0..n).collect();
    let mut next_fresh = n;

    for op in circuit.ops() {
        match &op.kind {
            OpKind::Reset { qubit } => {
                current[*qubit] = next_fresh;
                next_fresh += 1;
            }
            _ => {
                out.push(op.map_qubits(|q| current[q]));
            }
        }
    }

    ResetSubstitution {
        circuit: out,
        added_qubits: resets,
        final_location: current,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::StandardGate;

    #[test]
    fn circuit_without_resets_is_unchanged() {
        let mut qc = QuantumCircuit::new(2, 2);
        qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        let result = substitute_resets(&qc);
        assert_eq!(result.added_qubits, 0);
        assert_eq!(result.circuit.num_qubits(), 2);
        assert_eq!(result.circuit.ops(), qc.ops());
        assert_eq!(result.final_location, vec![0, 1]);
    }

    #[test]
    fn each_reset_introduces_one_qubit() {
        let mut qc = QuantumCircuit::new(1, 3);
        for i in 0..3 {
            qc.h(0);
            qc.measure(0, i);
            if i < 2 {
                qc.reset(0);
            }
        }
        let result = substitute_resets(&qc);
        assert_eq!(result.added_qubits, 2);
        assert_eq!(result.circuit.num_qubits(), 3);
        assert_eq!(result.circuit.reset_count(), 0);
        // The three Hadamards act on three different qubits.
        let h_targets: Vec<usize> = result
            .circuit
            .ops()
            .iter()
            .filter_map(|op| match &op.kind {
                OpKind::Unitary {
                    gate: StandardGate::H,
                    target,
                    ..
                } => Some(*target),
                _ => None,
            })
            .collect();
        assert_eq!(h_targets, vec![0, 1, 2]);
        assert_eq!(result.final_location, vec![2]);
    }

    #[test]
    fn untouched_qubits_keep_their_index() {
        let mut qc = QuantumCircuit::new(2, 1);
        qc.h(0).cx(0, 1).measure(0, 0).reset(0).cx(0, 1);
        let result = substitute_resets(&qc);
        assert_eq!(result.circuit.num_qubits(), 3);
        // The last CX has its control on the fresh qubit 2 and target still 1.
        let last = result.circuit.ops().last().unwrap();
        assert_eq!(last.qubits(), vec![1, 2]);
        assert_eq!(result.final_location, vec![2, 1]);
    }

    #[test]
    fn gate_count_is_reduced_by_the_number_of_resets() {
        let mut qc = QuantumCircuit::new(1, 2);
        qc.h(0).measure(0, 0).reset(0).x(0).measure(0, 1);
        let before = qc.gate_count();
        let result = substitute_resets(&qc);
        assert_eq!(result.circuit.gate_count(), before - 1);
    }

    #[test]
    fn classically_controlled_ops_are_remapped() {
        let mut qc = QuantumCircuit::new(1, 1);
        qc.h(0).measure(0, 0).reset(0).p_if(0.5, 0, 0);
        let result = substitute_resets(&qc);
        let last = result.circuit.ops().last().unwrap();
        assert_eq!(last.qubits(), vec![1]);
        assert!(last.condition.is_some());
    }

    #[test]
    fn example_from_the_paper_iqpe() {
        // Fig. 2 → Fig. 3a: the 3-bit IQPE circuit on 2 qubits with 2 resets
        // becomes a 4-qubit circuit.
        let phi = 3.0 * std::f64::consts::PI / 8.0;
        let iqpe = algorithms::qpe::iqpe_dynamic(phi, 3);
        assert_eq!(iqpe.num_qubits(), 2);
        assert_eq!(iqpe.reset_count(), 2);
        let result = substitute_resets(&iqpe);
        assert_eq!(result.circuit.num_qubits(), 4);
        assert_eq!(result.circuit.reset_count(), 0);
        assert_eq!(
            result.circuit.gate_count(),
            iqpe.gate_count() - iqpe.reset_count()
        );
    }
}
