//! The combined unitary-reconstruction pipeline and the measurement-based
//! qubit alignment used when comparing a reconstructed circuit against a
//! static reference.

use crate::deferred_measurement::defer_measurements;
use crate::error::TransformError;
use crate::reset_substitution::substitute_resets;
use circuit::{OpKind, QuantumCircuit};
use std::time::{Duration, Instant};

/// Result of [`reconstruct_unitary`].
#[derive(Debug, Clone)]
pub struct Reconstruction {
    /// The reconstructed circuit: a unitary prefix followed by measurements
    /// only.
    pub circuit: QuantumCircuit,
    /// Number of fresh qubits introduced for resets (the paper's `r`).
    pub added_qubits: usize,
    /// Number of classically-controlled operations turned into
    /// quantum-controlled operations.
    pub replaced_conditions: usize,
    /// Wall-clock time spent in the transformation (the paper's `t_trans`).
    pub duration: Duration,
}

impl Reconstruction {
    /// The unitary part of the reconstructed circuit (trailing measurements
    /// stripped), suitable for building a system matrix.
    pub fn unitary_circuit(&self) -> QuantumCircuit {
        self.circuit.without_measurements()
    }
}

/// Applies the full transformation scheme of Section 4 of the paper:
/// reset substitution followed by the deferred-measurement principle.
///
/// The result contains only unitary operations followed by measurements at
/// the very end, and can therefore be handled by any conventional
/// equivalence-checking or simulation back-end.
///
/// # Errors
///
/// Returns the underlying [`TransformError`] when a measurement cannot be
/// deferred (see [`defer_measurements`]).
///
/// # Examples
///
/// ```
/// use algorithms::qpe;
/// use transform::reconstruct_unitary;
///
/// let phi = 3.0 * std::f64::consts::PI / 8.0;
/// let iqpe = qpe::iqpe_dynamic(phi, 3);
/// let rec = reconstruct_unitary(&iqpe)?;
/// assert_eq!(rec.circuit.num_qubits(), 4); // 2 original + 2 resets
/// assert_eq!(rec.circuit.reset_count(), 0);
/// # Ok::<(), transform::TransformError>(())
/// ```
pub fn reconstruct_unitary(circuit: &QuantumCircuit) -> Result<Reconstruction, TransformError> {
    let start = Instant::now();
    let reset_free = substitute_resets(circuit);
    let deferred = defer_measurements(&reset_free.circuit)?;
    let duration = start.elapsed();
    Ok(Reconstruction {
        circuit: deferred.circuit,
        added_qubits: reset_free.added_qubits,
        replaced_conditions: deferred.replaced_conditions,
        duration,
    })
}

/// Map from classical bits to the qubit measured into them (last writer wins).
fn measurement_map(circuit: &QuantumCircuit) -> Vec<Option<usize>> {
    let mut map = vec![None; circuit.num_bits()];
    for op in circuit.ops() {
        if let OpKind::Measure { qubit, bit } = op.kind {
            map[bit] = Some(qubit);
        }
    }
    map
}

/// Renames the qubits of `transformed` so that they line up with `reference`.
///
/// Qubits are matched through the classical bits they are measured into: the
/// qubit of `transformed` that produces classical bit `b` is renamed to the
/// qubit of `reference` that produces the same bit. Unmeasured qubits are
/// matched to the remaining reference qubits in increasing index order.
///
/// This realises the paper's requirement that "the transformed versions of
/// both circuits have the same number of primary inputs and outputs": the
/// classical outputs define which qubit is which.
///
/// # Errors
///
/// * [`TransformError::RegisterMismatch`] when the qubit counts differ.
/// * [`TransformError::MeasurementMismatch`] when a classical bit is measured
///   in one circuit but not the other.
pub fn align_to_reference(
    reference: &QuantumCircuit,
    transformed: &QuantumCircuit,
) -> Result<QuantumCircuit, TransformError> {
    if reference.num_qubits() != transformed.num_qubits() {
        return Err(TransformError::RegisterMismatch {
            reference_qubits: reference.num_qubits(),
            transformed_qubits: transformed.num_qubits(),
        });
    }
    let n = reference.num_qubits();
    let bits = reference.num_bits().max(transformed.num_bits());
    let mut ref_map = measurement_map(reference);
    let mut trans_map = measurement_map(transformed);
    ref_map.resize(bits, None);
    trans_map.resize(bits, None);

    // mapping[q_transformed] = q_reference
    let mut mapping: Vec<Option<usize>> = vec![None; n];
    let mut used_reference = vec![false; n];

    for bit in 0..bits {
        match (trans_map[bit], ref_map[bit]) {
            (Some(tq), Some(rq)) => {
                if let Some(existing) = mapping[tq] {
                    if existing != rq {
                        return Err(TransformError::MeasurementMismatch {
                            detail: format!(
                                "transformed qubit {tq} would map to both reference qubits \
                                 {existing} and {rq}"
                            ),
                        });
                    }
                } else if used_reference[rq] {
                    return Err(TransformError::MeasurementMismatch {
                        detail: format!("reference qubit {rq} is the target of two mappings"),
                    });
                } else {
                    mapping[tq] = Some(rq);
                    used_reference[rq] = true;
                }
            }
            (None, None) => {}
            (Some(_), None) | (None, Some(_)) => {
                return Err(TransformError::MeasurementMismatch {
                    detail: format!("classical bit {bit} is measured in only one of the circuits"),
                });
            }
        }
    }

    // Match the remaining (unmeasured) qubits in increasing order.
    let mut free_reference = (0..n).filter(|&q| !used_reference[q]);
    for slot in mapping.iter_mut().take(n) {
        if slot.is_none() {
            *slot = Some(
                free_reference
                    .next()
                    .expect("counting argument: as many free slots as unmapped qubits"),
            );
        }
    }

    let mapping: Vec<usize> = mapping
        .into_iter()
        .map(|m| m.expect("fully mapped"))
        .collect();
    Ok(transformed.map_qubits(n, |q| mapping[q]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::StandardGate;

    #[test]
    fn reconstruction_of_iqpe_matches_paper_example() {
        // Example 4 + 5: 2-qubit, 3-bit IQPE → 4-qubit unitary circuit with
        // 3 quantum-controlled rotations and 3 trailing measurements.
        let phi = 3.0 * std::f64::consts::PI / 8.0;
        let iqpe = algorithms::qpe::iqpe_dynamic(phi, 3);
        let rec = reconstruct_unitary(&iqpe).expect("reconstructible");
        assert_eq!(rec.added_qubits, 2);
        assert_eq!(rec.replaced_conditions, 3);
        assert_eq!(rec.circuit.num_qubits(), 4);
        assert!(rec.circuit.reset_count() == 0);
        assert!(rec.unitary_circuit().is_unitary());
        // t_trans is measured.
        assert!(rec.duration.as_nanos() > 0);
    }

    #[test]
    fn reconstruction_of_static_circuit_is_identity_like() {
        let mut qc = QuantumCircuit::new(2, 2);
        qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        let rec = reconstruct_unitary(&qc).expect("already unitary");
        assert_eq!(rec.added_qubits, 0);
        assert_eq!(rec.replaced_conditions, 0);
        assert_eq!(rec.circuit.ops(), qc.ops());
    }

    #[test]
    fn alignment_by_measurement_bits() {
        // Reference: qubit 0 → bit 0, qubit 1 → bit 1.
        let mut reference = QuantumCircuit::new(2, 2);
        reference.h(0).measure(0, 0).measure(1, 1);
        // Transformed: measurement map is swapped.
        let mut transformed = QuantumCircuit::new(2, 2);
        transformed.h(1).measure(1, 0).measure(0, 1);
        let aligned = align_to_reference(&reference, &transformed).expect("alignable");
        // After alignment the H acts on qubit 0 again.
        assert!(matches!(
            aligned.ops()[0].kind,
            OpKind::Unitary {
                gate: StandardGate::H,
                target: 0,
                ..
            }
        ));
        assert_eq!(measurement_map(&aligned), measurement_map(&reference));
    }

    #[test]
    fn alignment_handles_unmeasured_qubits() {
        // Reference: ψ is qubit 2 (unmeasured), counting qubits 0, 1.
        let mut reference = QuantumCircuit::new(3, 2);
        reference.x(2).measure(0, 0).measure(1, 1);
        // Transformed: ψ is qubit 0, the measured qubits are 1 and 2.
        let mut transformed = QuantumCircuit::new(3, 2);
        transformed.x(0).measure(1, 0).measure(2, 1);
        let aligned = align_to_reference(&reference, &transformed).expect("alignable");
        assert_eq!(aligned.ops()[0].qubits(), vec![2]);
        assert_eq!(measurement_map(&aligned), measurement_map(&reference));
    }

    #[test]
    fn alignment_rejects_size_mismatch() {
        let reference = QuantumCircuit::new(3, 0);
        let transformed = QuantumCircuit::new(2, 0);
        assert!(matches!(
            align_to_reference(&reference, &transformed),
            Err(TransformError::RegisterMismatch { .. })
        ));
    }

    #[test]
    fn alignment_rejects_inconsistent_measurements() {
        let mut reference = QuantumCircuit::new(2, 1);
        reference.measure(0, 0);
        let transformed = QuantumCircuit::new(2, 1);
        assert!(matches!(
            align_to_reference(&reference, &transformed),
            Err(TransformError::MeasurementMismatch { .. })
        ));
    }

    #[test]
    fn full_pipeline_aligns_iqpe_with_static_qpe() {
        let phi = 3.0 * std::f64::consts::PI / 8.0;
        let m = 3;
        let static_qpe = algorithms::qpe::qpe_static(phi, m, true);
        let iqpe = algorithms::qpe::iqpe_dynamic(phi, m);
        let rec = reconstruct_unitary(&iqpe).expect("reconstructible");
        let aligned = align_to_reference(&static_qpe, &rec.circuit).expect("same register sizes");
        assert_eq!(aligned.num_qubits(), static_qpe.num_qubits());
        assert_eq!(measurement_map(&aligned), measurement_map(&static_qpe));
    }
}
