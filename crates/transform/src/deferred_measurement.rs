//! Deferred measurement: move all measurements to the end of the circuit,
//! replacing classically-controlled operations by quantum-controlled ones
//! (Section 4 of the paper).
//!
//! The deferred measurement principle states that delaying a measurement to
//! the end of a computation does not change the distribution of outcomes —
//! provided everything that happens to the measured qubit in between commutes
//! with the measurement. For the dynamic circuits considered here this is the
//! case by construction: after a qubit is measured it is either abandoned
//! (reset substitution has moved later operations onto a fresh qubit) or only
//! takes part in operations that are diagonal on it.

use crate::error::TransformError;
use circuit::{OpKind, Operation, QuantumCircuit, QuantumControl};

/// Result of the deferred-measurement pass.
#[derive(Debug, Clone)]
pub struct DeferredMeasurements {
    /// The rewritten circuit: a unitary prefix followed only by measurements.
    pub circuit: QuantumCircuit,
    /// Number of classically-controlled operations that were replaced by
    /// quantum-controlled ones.
    pub replaced_conditions: usize,
    /// `(qubit, bit)` pairs of the measurements now located at the end, in
    /// their original order.
    pub measurements: Vec<(usize, usize)>,
}

/// Moves every measurement to the end of `circuit`.
///
/// Classically-controlled operations are rewritten into quantum-controlled
/// operations on the qubit whose (deferred) measurement produces the
/// condition bit. Conditions on bits that are never written by a measurement
/// are resolved statically (the bit reads 0).
///
/// # Errors
///
/// * [`TransformError::UnexpectedReset`] if the circuit still contains reset
///   operations — run [`substitute_resets`](crate::substitute_resets) first.
/// * [`TransformError::QubitUsedAfterMeasurement`] if a measured qubit is
///   later used in a way that does not commute with the measurement (target
///   of a non-diagonal gate), in which case the measurement cannot be
///   deferred.
pub fn defer_measurements(
    circuit: &QuantumCircuit,
) -> Result<DeferredMeasurements, TransformError> {
    let mut out = QuantumCircuit::with_name(
        circuit.num_qubits(),
        circuit.num_bits(),
        format!("{}_deferred", circuit.name()),
    );
    // bit_source[b] = qubit whose deferred measurement defines classical bit b.
    let mut bit_source: Vec<Option<usize>> = vec![None; circuit.num_bits()];
    // measured[q] = true once qubit q has been measured.
    let mut measured = vec![false; circuit.num_qubits()];
    let mut measurements: Vec<(usize, usize)> = Vec::new();
    let mut replaced_conditions = 0;

    for op in circuit.ops() {
        match &op.kind {
            OpKind::Reset { qubit } => {
                return Err(TransformError::UnexpectedReset { qubit: *qubit });
            }
            OpKind::Measure { qubit, bit } => {
                measured[*qubit] = true;
                bit_source[*bit] = Some(*qubit);
                measurements.push((*qubit, *bit));
            }
            OpKind::Barrier => out.push(Operation::barrier()),
            OpKind::Unitary {
                gate,
                target,
                controls,
            } => {
                // Deferring is only sound if measured qubits are not modified
                // afterwards: the target must not have been measured unless
                // the gate is diagonal, and controls are always fine (a
                // control is diagonal on the controlling qubit).
                if measured[*target] && !gate.is_diagonal() {
                    return Err(TransformError::QubitUsedAfterMeasurement {
                        qubit: *target,
                        operation: op.to_string(),
                    });
                }
                let mut controls = controls.clone();
                match op.condition {
                    None => {
                        out.push(Operation::unitary(*gate, *target, controls));
                    }
                    Some(cond) => match bit_source[cond.bit] {
                        Some(source_qubit) => {
                            controls.push(QuantumControl {
                                qubit: source_qubit,
                                positive: cond.value,
                            });
                            replaced_conditions += 1;
                            out.push(Operation::unitary(*gate, *target, controls));
                        }
                        None => {
                            // The bit was never written, so it reads 0: the
                            // operation is applied iff the condition expects 0.
                            if !cond.value {
                                out.push(Operation::unitary(*gate, *target, controls));
                            }
                        }
                    },
                }
            }
        }
    }

    for &(qubit, bit) in &measurements {
        out.push(Operation::measure(qubit, bit));
    }

    Ok(DeferredMeasurements {
        circuit: out,
        replaced_conditions,
        measurements,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::StandardGate;

    #[test]
    fn measurements_move_to_the_end() {
        let mut qc = QuantumCircuit::new(2, 2);
        qc.h(0).measure(0, 0).h(1).measure(1, 1);
        let result = defer_measurements(&qc).expect("deferrable");
        let ops = result.circuit.ops();
        assert_eq!(ops.len(), 4);
        assert!(matches!(ops[0].kind, OpKind::Unitary { .. }));
        assert!(matches!(ops[1].kind, OpKind::Unitary { .. }));
        assert!(matches!(ops[2].kind, OpKind::Measure { .. }));
        assert!(matches!(ops[3].kind, OpKind::Measure { .. }));
        assert_eq!(result.measurements, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn classical_condition_becomes_quantum_control() {
        let mut qc = QuantumCircuit::new(2, 1);
        qc.h(0).measure(0, 0).x_if(1, 0);
        let result = defer_measurements(&qc).expect("deferrable");
        assert_eq!(result.replaced_conditions, 1);
        let ops = result.circuit.ops();
        // h, cx (from the condition), measure
        assert_eq!(ops.len(), 3);
        match &ops[1].kind {
            OpKind::Unitary {
                gate: StandardGate::X,
                target,
                controls,
            } => {
                assert_eq!(*target, 1);
                assert_eq!(controls.len(), 1);
                assert_eq!(controls[0], QuantumControl::pos(0));
            }
            other => panic!("expected a controlled X, found {other:?}"),
        }
        assert!(ops[1].condition.is_none());
    }

    #[test]
    fn condition_on_zero_value_becomes_negative_control() {
        let mut qc = QuantumCircuit::new(2, 1);
        qc.h(0).measure(0, 0).gate_if(StandardGate::X, 1, 0, false);
        let result = defer_measurements(&qc).expect("deferrable");
        match &result.circuit.ops()[1].kind {
            OpKind::Unitary { controls, .. } => {
                assert_eq!(controls[0], QuantumControl::neg(0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn condition_on_unwritten_bit_is_resolved_statically() {
        let mut qc = QuantumCircuit::new(1, 2);
        qc.gate_if(StandardGate::X, 0, 1, true); // never applied (bit 1 reads 0)
        qc.gate_if(StandardGate::Z, 0, 1, false); // always applied
        let result = defer_measurements(&qc).expect("deferrable");
        assert_eq!(result.circuit.len(), 1);
        assert!(matches!(
            result.circuit.ops()[0].kind,
            OpKind::Unitary {
                gate: StandardGate::Z,
                ..
            }
        ));
        assert_eq!(result.replaced_conditions, 0);
    }

    #[test]
    fn rejects_resets() {
        let mut qc = QuantumCircuit::new(1, 1);
        qc.h(0).reset(0);
        assert!(matches!(
            defer_measurements(&qc),
            Err(TransformError::UnexpectedReset { qubit: 0 })
        ));
    }

    #[test]
    fn rejects_non_diagonal_gate_after_measurement() {
        let mut qc = QuantumCircuit::new(1, 1);
        qc.measure(0, 0).h(0);
        assert!(matches!(
            defer_measurements(&qc),
            Err(TransformError::QubitUsedAfterMeasurement { qubit: 0, .. })
        ));
    }

    #[test]
    fn diagonal_gate_after_measurement_is_allowed() {
        let mut qc = QuantumCircuit::new(2, 1);
        qc.h(0).measure(0, 0).z(0).x_if(1, 0);
        let result = defer_measurements(&qc).expect("diagonal gates commute");
        assert_eq!(result.circuit.measurement_count(), 1);
    }

    #[test]
    fn measured_qubit_may_act_as_control() {
        let mut qc = QuantumCircuit::new(2, 1);
        qc.h(0).measure(0, 0).cx(0, 1);
        let result = defer_measurements(&qc).expect("controls commute");
        assert!(matches!(
            result.circuit.ops().last().unwrap().kind,
            OpKind::Measure { .. }
        ));
    }

    #[test]
    fn rebinding_a_bit_uses_the_measurement_in_effect() {
        // Bit 0 is written by qubit 0, used as a condition, then re-written
        // by qubit 1. The first condition must refer to qubit 0.
        let mut qc = QuantumCircuit::new(3, 1);
        qc.h(0)
            .measure(0, 0)
            .x_if(2, 0)
            .h(1)
            .measure(1, 0)
            .x_if(2, 0);
        let result = defer_measurements(&qc).expect("deferrable");
        let controls: Vec<usize> = result
            .circuit
            .ops()
            .iter()
            .filter_map(|op| match &op.kind {
                OpKind::Unitary {
                    gate: StandardGate::X,
                    controls,
                    ..
                } if !controls.is_empty() => Some(controls[0].qubit),
                _ => None,
            })
            .collect();
        assert_eq!(controls, vec![0, 1]);
    }

    #[test]
    fn iqpe_example_from_the_paper() {
        // Fig. 3a → Fig. 3b: after reset substitution the 3-bit IQPE circuit
        // defers to a unitary circuit plus 3 trailing measurements, with all
        // classically-controlled rotations replaced by controlled rotations.
        let phi = 3.0 * std::f64::consts::PI / 8.0;
        let iqpe = algorithms::qpe::iqpe_dynamic(phi, 3);
        let reset_free = crate::substitute_resets(&iqpe).circuit;
        let result = defer_measurements(&reset_free).expect("deferrable");
        assert_eq!(result.replaced_conditions, 3); // -π/2, -π/4, -π/2
        assert_eq!(result.circuit.measurement_count(), 3);
        // Everything before the trailing measurements is unitary.
        let ops = result.circuit.ops();
        let first_measure = ops
            .iter()
            .position(|op| matches!(op.kind, OpKind::Measure { .. }))
            .unwrap();
        assert!(ops[..first_measure].iter().all(|op| op.is_unitary()));
        assert!(ops[first_measure..]
            .iter()
            .all(|op| matches!(op.kind, OpKind::Measure { .. })));
    }
}
