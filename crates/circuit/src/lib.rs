//! # circuit — a quantum-circuit IR with dynamic (non-unitary) primitives
//!
//! This crate provides the circuit representation used throughout the
//! workspace: a register of qubits and classical bits plus a sequence of
//! operations. Besides ordinary (multi-controlled) unitary gates it models
//! the three *dynamic-circuit primitives* the paper is concerned with:
//!
//! * mid-circuit **measurements**,
//! * **resets**, and
//! * **classically-controlled** operations guarded by a classical bit.
//!
//! The IR is purely symbolic; numeric gate matrices live in the simulation
//! layer (`sim`) on top of the decision-diagram package (`dd`).
//!
//! ## Example
//!
//! A 1-bit iterative-phase-estimation step, exercising all three dynamic
//! primitives:
//!
//! ```
//! use circuit::QuantumCircuit;
//!
//! let mut qc = QuantumCircuit::new(2, 2);
//! qc.h(0);
//! qc.cp(std::f64::consts::FRAC_PI_2, 0, 1);
//! qc.h(0);
//! qc.measure(0, 0);
//! qc.reset(0);
//! qc.p_if(-std::f64::consts::FRAC_PI_2, 0, 0); // correction conditioned on c[0]
//! assert!(qc.is_dynamic());
//! assert_eq!(qc.reset_count(), 1);
//! ```

#![warn(missing_docs)]

mod circuit;
mod gate;
mod operation;
pub mod qasm;

pub use circuit::{CircuitError, OpCounts, QuantumCircuit};
pub use gate::StandardGate;
pub use operation::{ClassicalCondition, OpKind, Operation, QuantumControl};
