//! The quantum-circuit container and its builder API.

use crate::gate::StandardGate;
use crate::operation::{ClassicalCondition, OpKind, Operation, QuantumControl};
use std::fmt;

/// Error returned by circuit-level transformations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// The operation references a qubit outside the register.
    QubitOutOfRange {
        /// Offending qubit index.
        qubit: usize,
        /// Register size.
        n_qubits: usize,
    },
    /// The operation references a classical bit outside the register.
    BitOutOfRange {
        /// Offending bit index.
        bit: usize,
        /// Register size.
        n_bits: usize,
    },
    /// The requested transformation requires a purely unitary circuit.
    NonUnitary {
        /// Description of the offending operation.
        operation: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, n_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for {n_qubits}-qubit register"
                )
            }
            CircuitError::BitOutOfRange { bit, n_bits } => {
                write!(
                    f,
                    "classical bit {bit} out of range for {n_bits}-bit register"
                )
            }
            CircuitError::NonUnitary { operation } => {
                write!(f, "operation `{operation}` is not unitary")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// Summary of the operations contained in a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Plain unitary gates (no classical condition).
    pub unitary: usize,
    /// Measurements.
    pub measurements: usize,
    /// Resets.
    pub resets: usize,
    /// Classically-controlled unitary gates.
    pub classically_controlled: usize,
    /// Barriers.
    pub barriers: usize,
}

impl OpCounts {
    /// Total number of operations excluding barriers (the paper's `|G|`).
    pub fn total_gates(&self) -> usize {
        self.unitary + self.measurements + self.resets + self.classically_controlled
    }

    /// Number of dynamic-circuit primitives.
    pub fn dynamic(&self) -> usize {
        self.measurements + self.resets + self.classically_controlled
    }
}

/// A quantum circuit over a qubit register and a classical bit register.
///
/// The circuit may contain the non-unitary dynamic-circuit primitives of the
/// paper: mid-circuit measurements, resets and classically-controlled
/// operations.
///
/// # Examples
///
/// ```
/// use circuit::QuantumCircuit;
///
/// // A 2-qubit Bell-pair circuit with measurements.
/// let mut qc = QuantumCircuit::new(2, 2);
/// qc.h(0);
/// qc.cx(0, 1);
/// qc.measure(0, 0);
/// qc.measure(1, 1);
/// assert_eq!(qc.len(), 4);
/// assert!(qc.is_dynamic());
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QuantumCircuit {
    n_qubits: usize,
    n_bits: usize,
    name: String,
    ops: Vec<Operation>,
}

impl QuantumCircuit {
    /// Creates an empty circuit with `n_qubits` qubits and `n_bits` classical
    /// bits.
    pub fn new(n_qubits: usize, n_bits: usize) -> Self {
        QuantumCircuit {
            n_qubits,
            n_bits,
            name: String::from("circuit"),
            ops: Vec::new(),
        }
    }

    /// Creates an empty, named circuit.
    pub fn with_name(n_qubits: usize, n_bits: usize, name: impl Into<String>) -> Self {
        QuantumCircuit {
            n_qubits,
            n_bits,
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// Circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of classical bits.
    pub fn num_bits(&self) -> usize {
        self.n_bits
    }

    /// Number of operations (including barriers).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` when the circuit contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations of the circuit in execution order.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Iterator over the operations in execution order.
    pub fn iter(&self) -> std::slice::Iter<'_, Operation> {
        self.ops.iter()
    }

    /// Appends an operation after validating its qubit and bit indices.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range; use [`try_push`](Self::try_push)
    /// for a fallible variant.
    pub fn push(&mut self, op: Operation) {
        self.try_push(op).expect("operation indices out of range");
    }

    /// Appends an operation after validating its qubit and bit indices.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] or
    /// [`CircuitError::BitOutOfRange`] when the operation references
    /// registers the circuit does not have.
    pub fn try_push(&mut self, op: Operation) -> Result<(), CircuitError> {
        for q in op.qubits() {
            if q >= self.n_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q,
                    n_qubits: self.n_qubits,
                });
            }
        }
        for b in op.bits() {
            if b >= self.n_bits {
                return Err(CircuitError::BitOutOfRange {
                    bit: b,
                    n_bits: self.n_bits,
                });
            }
        }
        self.ops.push(op);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Gate builder methods
    // ------------------------------------------------------------------

    /// Applies a single-qubit gate.
    pub fn gate(&mut self, gate: StandardGate, target: usize) -> &mut Self {
        self.push(Operation::unitary(gate, target, vec![]));
        self
    }

    /// Applies a controlled gate with arbitrary controls.
    pub fn controlled_gate(
        &mut self,
        gate: StandardGate,
        target: usize,
        controls: Vec<QuantumControl>,
    ) -> &mut Self {
        self.push(Operation::unitary(gate, target, controls));
        self
    }

    /// Hadamard gate.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.gate(StandardGate::H, q)
    }

    /// Pauli-X gate.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.gate(StandardGate::X, q)
    }

    /// Pauli-Y gate.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.gate(StandardGate::Y, q)
    }

    /// Pauli-Z gate.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.gate(StandardGate::Z, q)
    }

    /// S gate.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.gate(StandardGate::S, q)
    }

    /// S† gate.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.gate(StandardGate::Sdg, q)
    }

    /// T gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.gate(StandardGate::T, q)
    }

    /// T† gate.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.gate(StandardGate::Tdg, q)
    }

    /// √X gate.
    pub fn sx(&mut self, q: usize) -> &mut Self {
        self.gate(StandardGate::Sx, q)
    }

    /// Phase gate P(θ).
    pub fn p(&mut self, theta: f64, q: usize) -> &mut Self {
        self.gate(StandardGate::Phase(theta), q)
    }

    /// X-rotation by θ.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.gate(StandardGate::Rx(theta), q)
    }

    /// Y-rotation by θ.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.gate(StandardGate::Ry(theta), q)
    }

    /// Z-rotation by θ.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.gate(StandardGate::Rz(theta), q)
    }

    /// General single-qubit gate U(θ, φ, λ).
    pub fn u(&mut self, theta: f64, phi: f64, lambda: f64, q: usize) -> &mut Self {
        self.gate(StandardGate::U(theta, phi, lambda), q)
    }

    /// Controlled-NOT gate.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.controlled_gate(StandardGate::X, target, vec![QuantumControl::pos(control)])
    }

    /// Controlled-Z gate.
    pub fn cz(&mut self, control: usize, target: usize) -> &mut Self {
        self.controlled_gate(StandardGate::Z, target, vec![QuantumControl::pos(control)])
    }

    /// Controlled phase gate CP(θ).
    pub fn cp(&mut self, theta: f64, control: usize, target: usize) -> &mut Self {
        self.controlled_gate(
            StandardGate::Phase(theta),
            target,
            vec![QuantumControl::pos(control)],
        )
    }

    /// Toffoli (CCX) gate.
    pub fn ccx(&mut self, c0: usize, c1: usize, target: usize) -> &mut Self {
        self.controlled_gate(
            StandardGate::X,
            target,
            vec![QuantumControl::pos(c0), QuantumControl::pos(c1)],
        )
    }

    /// Multi-controlled X gate.
    pub fn mcx(&mut self, controls: &[usize], target: usize) -> &mut Self {
        self.controlled_gate(
            StandardGate::X,
            target,
            controls.iter().map(|&q| QuantumControl::pos(q)).collect(),
        )
    }

    /// SWAP gate, decomposed into three CNOTs.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.cx(a, b).cx(b, a).cx(a, b)
    }

    /// Measurement of `qubit` into classical `bit`.
    pub fn measure(&mut self, qubit: usize, bit: usize) -> &mut Self {
        self.push(Operation::measure(qubit, bit));
        self
    }

    /// Measures qubit `i` into bit `i` for every qubit.
    ///
    /// # Panics
    ///
    /// Panics when the classical register is smaller than the qubit register.
    pub fn measure_all(&mut self) -> &mut Self {
        assert!(
            self.n_bits >= self.n_qubits,
            "measure_all requires at least as many classical bits as qubits"
        );
        for q in 0..self.n_qubits {
            self.measure(q, q);
        }
        self
    }

    /// Reset of `qubit` to |0⟩.
    pub fn reset(&mut self, qubit: usize) -> &mut Self {
        self.push(Operation::reset(qubit));
        self
    }

    /// Barrier.
    pub fn barrier(&mut self) -> &mut Self {
        self.push(Operation::barrier());
        self
    }

    /// A single-qubit gate applied only if classical `bit` equals `value`.
    pub fn gate_if(
        &mut self,
        gate: StandardGate,
        target: usize,
        bit: usize,
        value: bool,
    ) -> &mut Self {
        self.push(Operation::conditioned(
            gate,
            target,
            vec![],
            ClassicalCondition { bit, value },
        ));
        self
    }

    /// Phase gate applied only if classical `bit` is one.
    pub fn p_if(&mut self, theta: f64, target: usize, bit: usize) -> &mut Self {
        self.gate_if(StandardGate::Phase(theta), target, bit, true)
    }

    /// X gate applied only if classical `bit` is one.
    pub fn x_if(&mut self, target: usize, bit: usize) -> &mut Self {
        self.gate_if(StandardGate::X, target, bit, true)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Returns `true` when the circuit consists solely of unitary gates (and
    /// barriers).
    pub fn is_unitary(&self) -> bool {
        self.ops.iter().all(|op| !op.is_dynamic())
    }

    /// Returns `true` when the circuit contains at least one dynamic-circuit
    /// primitive (measurement, reset or classically-controlled operation).
    pub fn is_dynamic(&self) -> bool {
        !self.is_unitary()
    }

    /// Counts the operations by kind.
    pub fn counts(&self) -> OpCounts {
        let mut counts = OpCounts::default();
        for op in &self.ops {
            match (&op.kind, op.condition) {
                (OpKind::Unitary { .. }, None) => counts.unitary += 1,
                (OpKind::Unitary { .. }, Some(_)) => counts.classically_controlled += 1,
                (OpKind::Measure { .. }, _) => counts.measurements += 1,
                (OpKind::Reset { .. }, _) => counts.resets += 1,
                (OpKind::Barrier, _) => counts.barriers += 1,
            }
        }
        counts
    }

    /// Number of gates, i.e. operations excluding barriers (the paper's `|G|`).
    pub fn gate_count(&self) -> usize {
        self.counts().total_gates()
    }

    /// Number of measurement operations.
    pub fn measurement_count(&self) -> usize {
        self.counts().measurements
    }

    /// Number of reset operations.
    pub fn reset_count(&self) -> usize {
        self.counts().resets
    }

    // ------------------------------------------------------------------
    // Transformations
    // ------------------------------------------------------------------

    /// The inverse circuit (gates reversed and individually inverted).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NonUnitary`] when the circuit contains
    /// measurements, resets or classically-controlled operations, which have
    /// no inverse.
    pub fn inverse(&self) -> Result<QuantumCircuit, CircuitError> {
        let mut inv =
            QuantumCircuit::with_name(self.n_qubits, self.n_bits, format!("{}_inverse", self.name));
        for op in self.ops.iter().rev() {
            match (&op.kind, op.condition) {
                (
                    OpKind::Unitary {
                        gate,
                        target,
                        controls,
                    },
                    None,
                ) => {
                    inv.push(Operation::unitary(
                        gate.inverse(),
                        *target,
                        controls.clone(),
                    ));
                }
                (OpKind::Barrier, _) => inv.push(Operation::barrier()),
                _ => {
                    return Err(CircuitError::NonUnitary {
                        operation: op.to_string(),
                    })
                }
            }
        }
        Ok(inv)
    }

    /// Appends all operations of `other` to this circuit.
    ///
    /// # Panics
    ///
    /// Panics when `other` uses more qubits or classical bits than this
    /// circuit provides.
    pub fn append(&mut self, other: &QuantumCircuit) {
        assert!(
            other.n_qubits <= self.n_qubits && other.n_bits <= self.n_bits,
            "appended circuit does not fit into the register"
        );
        for op in &other.ops {
            self.push(op.clone());
        }
    }

    /// Returns a copy of the circuit without barriers.
    pub fn without_barriers(&self) -> QuantumCircuit {
        let mut out = self.clone();
        out.ops.retain(|op| op.kind != OpKind::Barrier);
        out
    }

    /// Returns a copy of the circuit without measurement operations
    /// (everything else, including resets and conditions, is kept).
    pub fn without_measurements(&self) -> QuantumCircuit {
        let mut out = self.clone();
        out.ops
            .retain(|op| !matches!(op.kind, OpKind::Measure { .. }));
        out
    }

    /// Returns a copy with every qubit index remapped through `map` onto a
    /// register of `new_n_qubits` qubits.
    pub fn map_qubits(&self, new_n_qubits: usize, map: impl Fn(usize) -> usize) -> QuantumCircuit {
        let mut out = QuantumCircuit::with_name(new_n_qubits, self.n_bits, self.name.clone());
        for op in &self.ops {
            out.push(op.map_qubits(&map));
        }
        out
    }
}

impl fmt::Display for QuantumCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({} qubits, {} bits, {} ops):",
            self.name,
            self.n_qubits,
            self.n_bits,
            self.ops.len()
        )?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a QuantumCircuit {
    type Item = &'a Operation;
    type IntoIter = std::slice::Iter<'a, Operation>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_counts() {
        let mut qc = QuantumCircuit::new(3, 3);
        qc.h(0).cx(0, 1).ccx(0, 1, 2).p(0.5, 2).barrier();
        qc.measure(0, 0).reset(1).x_if(2, 0);
        let counts = qc.counts();
        assert_eq!(counts.unitary, 4);
        assert_eq!(counts.measurements, 1);
        assert_eq!(counts.resets, 1);
        assert_eq!(counts.classically_controlled, 1);
        assert_eq!(counts.barriers, 1);
        assert_eq!(qc.gate_count(), 7);
        assert_eq!(counts.dynamic(), 3);
        assert!(qc.is_dynamic());
    }

    #[test]
    fn unitary_classification() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.h(0).cx(0, 1).barrier();
        assert!(qc.is_unitary());
        qc.reset(0);
        assert!(!qc.is_unitary());
    }

    #[test]
    fn push_validates_indices() {
        let mut qc = QuantumCircuit::new(2, 1);
        assert!(qc
            .try_push(Operation::unitary(StandardGate::H, 5, vec![]))
            .is_err());
        assert!(qc.try_push(Operation::measure(0, 3)).is_err());
        assert!(qc.try_push(Operation::measure(0, 0)).is_ok());
        assert_eq!(qc.len(), 1);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.h(0).s(1).cx(0, 1).t(0);
        let inv = qc.inverse().expect("unitary circuit");
        assert_eq!(inv.len(), 4);
        // Last gate of the inverse is H on qubit 0 (inverse of the first gate).
        let ops: Vec<_> = inv.ops().to_vec();
        assert_eq!(ops[0], Operation::unitary(StandardGate::Tdg, 0, vec![]));
        assert_eq!(ops[3], Operation::unitary(StandardGate::H, 0, vec![]));
        assert_eq!(ops[2], Operation::unitary(StandardGate::Sdg, 1, vec![]));
    }

    #[test]
    fn inverse_of_dynamic_circuit_fails() {
        let mut qc = QuantumCircuit::new(1, 1);
        qc.h(0).measure(0, 0);
        assert!(matches!(qc.inverse(), Err(CircuitError::NonUnitary { .. })));
    }

    #[test]
    fn append_and_map_qubits() {
        let mut a = QuantumCircuit::new(3, 0);
        a.h(0);
        let mut b = QuantumCircuit::new(2, 0);
        b.cx(0, 1);
        a.append(&b);
        assert_eq!(a.len(), 2);

        let shifted = b.map_qubits(4, |q| q + 2);
        assert_eq!(shifted.num_qubits(), 4);
        assert_eq!(shifted.ops()[0].qubits(), vec![3, 2]);
    }

    #[test]
    fn swap_decomposes_to_three_cnots() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.swap(0, 1);
        assert_eq!(qc.len(), 3);
        assert!(qc.is_unitary());
    }

    #[test]
    fn without_barriers_and_measurements() {
        let mut qc = QuantumCircuit::new(2, 2);
        qc.h(0).barrier().measure(0, 0).cx(0, 1).measure(1, 1);
        assert_eq!(qc.without_barriers().len(), 4);
        assert_eq!(qc.without_measurements().len(), 3);
    }

    #[test]
    fn measure_all_maps_qubit_to_bit() {
        let mut qc = QuantumCircuit::new(3, 3);
        qc.measure_all();
        assert_eq!(qc.measurement_count(), 3);
        assert_eq!(qc.ops()[1], Operation::measure(1, 1));
    }

    #[test]
    fn display_lists_operations() {
        let mut qc = QuantumCircuit::with_name(2, 1, "demo");
        qc.h(0).cx(0, 1).measure(1, 0);
        let text = format!("{qc}");
        assert!(text.contains("demo"));
        assert!(text.contains("h q[0]"));
        assert!(text.contains("measure q[1] -> c[0]"));
    }
}
