//! Symbolic single-qubit gates.
//!
//! The circuit IR stores gates symbolically; numeric matrices are produced by
//! the simulation layer. Keeping the IR symbolic allows exact inversion
//! (e.g. `S → S†`, `P(θ) → P(−θ)`) which the unitary-reconstruction and
//! equivalence-checking passes rely on.

use std::fmt;

/// A symbolic single-qubit gate, possibly parameterised by rotation angles.
///
/// Multi-qubit operations are expressed as a [`StandardGate`] plus quantum
/// controls in [`Operation::Unitary`](crate::Operation).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum StandardGate {
    /// Identity.
    I,
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate S = diag(1, i).
    S,
    /// Inverse phase gate S†.
    Sdg,
    /// T gate = diag(1, e^{iπ/4}).
    T,
    /// Inverse T gate.
    Tdg,
    /// Square root of X.
    Sx,
    /// Inverse square root of X.
    Sxdg,
    /// Phase gate P(θ) = diag(1, e^{iθ}).
    Phase(f64),
    /// Rotation about X by θ.
    Rx(f64),
    /// Rotation about Y by θ.
    Ry(f64),
    /// Rotation about Z by θ.
    Rz(f64),
    /// General single-qubit gate U(θ, φ, λ) in the OpenQASM convention.
    U(f64, f64, f64),
}

impl StandardGate {
    /// The symbolic inverse of the gate.
    ///
    /// ```
    /// use circuit::StandardGate;
    /// assert_eq!(StandardGate::S.inverse(), StandardGate::Sdg);
    /// assert_eq!(StandardGate::Phase(0.5).inverse(), StandardGate::Phase(-0.5));
    /// ```
    pub fn inverse(self) -> StandardGate {
        use StandardGate::*;
        match self {
            I => I,
            H => H,
            X => X,
            Y => Y,
            Z => Z,
            S => Sdg,
            Sdg => S,
            T => Tdg,
            Tdg => T,
            Sx => Sxdg,
            Sxdg => Sx,
            Phase(theta) => Phase(-theta),
            Rx(theta) => Rx(-theta),
            Ry(theta) => Ry(-theta),
            Rz(theta) => Rz(-theta),
            U(theta, phi, lambda) => U(-theta, -lambda, -phi),
        }
    }

    /// Lower-case OpenQASM-style mnemonic of the gate.
    pub fn name(self) -> &'static str {
        use StandardGate::*;
        match self {
            I => "id",
            H => "h",
            X => "x",
            Y => "y",
            Z => "z",
            S => "s",
            Sdg => "sdg",
            T => "t",
            Tdg => "tdg",
            Sx => "sx",
            Sxdg => "sxdg",
            Phase(_) => "p",
            Rx(_) => "rx",
            Ry(_) => "ry",
            Rz(_) => "rz",
            U(..) => "u",
        }
    }

    /// Rotation parameters of the gate (empty for non-parameterised gates).
    pub fn params(self) -> Vec<f64> {
        use StandardGate::*;
        match self {
            Phase(t) | Rx(t) | Ry(t) | Rz(t) => vec![t],
            U(t, p, l) => vec![t, p, l],
            _ => vec![],
        }
    }

    /// Returns `true` when the gate is diagonal in the computational basis.
    ///
    /// Diagonal gates commute with measurements of their target qubit, a
    /// property exploited by the deferred-measurement transformation tests.
    pub fn is_diagonal(self) -> bool {
        use StandardGate::*;
        matches!(self, I | Z | S | Sdg | T | Tdg | Phase(_) | Rz(_))
    }

    /// Returns `true` when the gate equals the identity operation (exactly,
    /// i.e. ignoring floating-point fuzz only for the trivially zero angles).
    pub fn is_identity(self) -> bool {
        use StandardGate::*;
        match self {
            I => true,
            Phase(t) | Rx(t) | Ry(t) | Rz(t) => t == 0.0,
            U(t, p, l) => t == 0.0 && p == 0.0 && l == 0.0,
            _ => false,
        }
    }
}

impl fmt::Display for StandardGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.name())
        } else {
            let joined = params
                .iter()
                .map(|p| format!("{p:.10}"))
                .collect::<Vec<_>>()
                .join(",");
            write!(f, "{}({})", self.name(), joined)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_is_involutive() {
        let gates = [
            StandardGate::I,
            StandardGate::H,
            StandardGate::X,
            StandardGate::Y,
            StandardGate::Z,
            StandardGate::S,
            StandardGate::Sdg,
            StandardGate::T,
            StandardGate::Tdg,
            StandardGate::Sx,
            StandardGate::Sxdg,
            StandardGate::Phase(0.3),
            StandardGate::Rx(1.1),
            StandardGate::Ry(-0.4),
            StandardGate::Rz(2.2),
            StandardGate::U(0.1, 0.2, 0.3),
        ];
        for g in gates {
            assert_eq!(g.inverse().inverse(), g, "double inverse of {g}");
        }
    }

    #[test]
    fn self_inverse_gates() {
        for g in [
            StandardGate::I,
            StandardGate::H,
            StandardGate::X,
            StandardGate::Y,
            StandardGate::Z,
        ] {
            assert_eq!(g.inverse(), g);
        }
    }

    #[test]
    fn adjoint_pairs() {
        assert_eq!(StandardGate::S.inverse(), StandardGate::Sdg);
        assert_eq!(StandardGate::T.inverse(), StandardGate::Tdg);
        assert_eq!(StandardGate::Sx.inverse(), StandardGate::Sxdg);
    }

    #[test]
    fn diagonal_classification() {
        assert!(StandardGate::Z.is_diagonal());
        assert!(StandardGate::Phase(0.2).is_diagonal());
        assert!(StandardGate::Rz(0.2).is_diagonal());
        assert!(!StandardGate::H.is_diagonal());
        assert!(!StandardGate::X.is_diagonal());
    }

    #[test]
    fn identity_classification() {
        assert!(StandardGate::I.is_identity());
        assert!(StandardGate::Phase(0.0).is_identity());
        assert!(!StandardGate::Phase(0.1).is_identity());
        assert!(!StandardGate::H.is_identity());
    }

    #[test]
    fn display_includes_parameters() {
        assert_eq!(format!("{}", StandardGate::H), "h");
        let p = format!("{}", StandardGate::Phase(0.5));
        assert!(p.starts_with("p(0.5"));
    }

    #[test]
    fn names_are_openqasm_mnemonics() {
        assert_eq!(StandardGate::Sdg.name(), "sdg");
        assert_eq!(StandardGate::U(0.0, 0.0, 0.0).name(), "u");
        assert_eq!(StandardGate::Rx(1.0).name(), "rx");
    }
}
