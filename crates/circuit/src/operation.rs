//! Circuit operations, including the non-unitary dynamic-circuit primitives.

use crate::gate::StandardGate;
use std::fmt;

/// A quantum control qubit attached to a unitary operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct QuantumControl {
    /// Controlling qubit.
    pub qubit: usize,
    /// `true` for a regular control (trigger on |1⟩), `false` for a negative
    /// control (trigger on |0⟩).
    pub positive: bool,
}

impl QuantumControl {
    /// Positive control on `qubit`.
    pub const fn pos(qubit: usize) -> Self {
        QuantumControl {
            qubit,
            positive: true,
        }
    }

    /// Negative control on `qubit`.
    pub const fn neg(qubit: usize) -> Self {
        QuantumControl {
            qubit,
            positive: false,
        }
    }
}

/// A classical condition `bit == value` guarding an operation.
///
/// This is the classically-controlled primitive of dynamic quantum circuits:
/// the guarded operation is applied exactly when the classical `bit` holds
/// `value` at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct ClassicalCondition {
    /// Index of the classical bit.
    pub bit: usize,
    /// Value the bit must hold for the operation to be applied.
    pub value: bool,
}

impl ClassicalCondition {
    /// Condition requiring `bit == 1`.
    pub const fn is_one(bit: usize) -> Self {
        ClassicalCondition { bit, value: true }
    }

    /// Condition requiring `bit == 0`.
    pub const fn is_zero(bit: usize) -> Self {
        ClassicalCondition { bit, value: false }
    }
}

/// The structural kind of an operation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum OpKind {
    /// A (multi-controlled) single-qubit unitary gate.
    Unitary {
        /// The base single-qubit gate.
        gate: StandardGate,
        /// Target qubit.
        target: usize,
        /// Quantum controls (may be empty).
        controls: Vec<QuantumControl>,
    },
    /// Projective measurement of `qubit` into classical `bit`.
    Measure {
        /// Measured qubit.
        qubit: usize,
        /// Classical bit receiving the outcome.
        bit: usize,
    },
    /// Reset of `qubit` to |0⟩ (measure and conditionally flip, discarding
    /// the outcome).
    Reset {
        /// Qubit to reset.
        qubit: usize,
    },
    /// A barrier; semantically a no-op, kept for structural fidelity with
    /// compiled circuits.
    Barrier,
}

/// One operation of a quantum circuit: a kind plus an optional classical
/// condition.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Operation {
    /// What the operation does.
    pub kind: OpKind,
    /// Classical condition guarding the operation (only meaningful for
    /// unitary kinds).
    pub condition: Option<ClassicalCondition>,
}

impl Operation {
    /// An unconditioned unitary gate operation.
    pub fn unitary(gate: StandardGate, target: usize, controls: Vec<QuantumControl>) -> Self {
        Operation {
            kind: OpKind::Unitary {
                gate,
                target,
                controls,
            },
            condition: None,
        }
    }

    /// A unitary gate guarded by a classical condition.
    pub fn conditioned(
        gate: StandardGate,
        target: usize,
        controls: Vec<QuantumControl>,
        condition: ClassicalCondition,
    ) -> Self {
        Operation {
            kind: OpKind::Unitary {
                gate,
                target,
                controls,
            },
            condition: Some(condition),
        }
    }

    /// A measurement of `qubit` into classical `bit`.
    pub fn measure(qubit: usize, bit: usize) -> Self {
        Operation {
            kind: OpKind::Measure { qubit, bit },
            condition: None,
        }
    }

    /// A reset of `qubit` to |0⟩.
    pub fn reset(qubit: usize) -> Self {
        Operation {
            kind: OpKind::Reset { qubit },
            condition: None,
        }
    }

    /// A barrier.
    pub fn barrier() -> Self {
        Operation {
            kind: OpKind::Barrier,
            condition: None,
        }
    }

    /// Returns `true` for plain unitary gates without a classical condition.
    pub fn is_unitary(&self) -> bool {
        matches!(self.kind, OpKind::Unitary { .. }) && self.condition.is_none()
    }

    /// Returns `true` for dynamic-circuit primitives: measurements, resets
    /// and classically-controlled operations.
    pub fn is_dynamic(&self) -> bool {
        match self.kind {
            OpKind::Measure { .. } | OpKind::Reset { .. } => true,
            OpKind::Unitary { .. } => self.condition.is_some(),
            OpKind::Barrier => false,
        }
    }

    /// All qubits the operation acts on (target and controls).
    pub fn qubits(&self) -> Vec<usize> {
        match &self.kind {
            OpKind::Unitary {
                target, controls, ..
            } => {
                let mut qs = vec![*target];
                qs.extend(controls.iter().map(|c| c.qubit));
                qs
            }
            OpKind::Measure { qubit, .. } | OpKind::Reset { qubit } => vec![*qubit],
            OpKind::Barrier => vec![],
        }
    }

    /// Classical bits the operation reads or writes.
    pub fn bits(&self) -> Vec<usize> {
        let mut bits = vec![];
        if let OpKind::Measure { bit, .. } = self.kind {
            bits.push(bit);
        }
        if let Some(cond) = self.condition {
            bits.push(cond.bit);
        }
        bits
    }

    /// Remaps every qubit index through `map` (used by the reset-substitution
    /// pass when operations are moved onto fresh qubits).
    pub fn map_qubits(&self, map: impl Fn(usize) -> usize) -> Operation {
        let kind = match &self.kind {
            OpKind::Unitary {
                gate,
                target,
                controls,
            } => OpKind::Unitary {
                gate: *gate,
                target: map(*target),
                controls: controls
                    .iter()
                    .map(|c| QuantumControl {
                        qubit: map(c.qubit),
                        positive: c.positive,
                    })
                    .collect(),
            },
            OpKind::Measure { qubit, bit } => OpKind::Measure {
                qubit: map(*qubit),
                bit: *bit,
            },
            OpKind::Reset { qubit } => OpKind::Reset { qubit: map(*qubit) },
            OpKind::Barrier => OpKind::Barrier,
        };
        Operation {
            kind,
            condition: self.condition,
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(cond) = self.condition {
            write!(f, "if (c[{}] == {}) ", cond.bit, u8::from(cond.value))?;
        }
        match &self.kind {
            OpKind::Unitary {
                gate,
                target,
                controls,
            } => {
                if controls.is_empty() {
                    write!(f, "{gate} q[{target}]")
                } else {
                    let ctrls = controls
                        .iter()
                        .map(|c| {
                            if c.positive {
                                format!("q[{}]", c.qubit)
                            } else {
                                format!("!q[{}]", c.qubit)
                            }
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    write!(f, "c{gate} {ctrls}, q[{target}]")
                }
            }
            OpKind::Measure { qubit, bit } => write!(f, "measure q[{qubit}] -> c[{bit}]"),
            OpKind::Reset { qubit } => write!(f, "reset q[{qubit}]"),
            OpKind::Barrier => write!(f, "barrier"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let u = Operation::unitary(StandardGate::H, 0, vec![]);
        assert!(u.is_unitary());
        assert!(!u.is_dynamic());

        let m = Operation::measure(1, 0);
        assert!(!m.is_unitary());
        assert!(m.is_dynamic());

        let r = Operation::reset(2);
        assert!(r.is_dynamic());

        let c = Operation::conditioned(StandardGate::X, 0, vec![], ClassicalCondition::is_one(3));
        assert!(!c.is_unitary());
        assert!(c.is_dynamic());

        let b = Operation::barrier();
        assert!(!b.is_unitary());
        assert!(!b.is_dynamic());
    }

    #[test]
    fn qubits_and_bits() {
        let op = Operation::unitary(
            StandardGate::X,
            2,
            vec![QuantumControl::pos(0), QuantumControl::neg(1)],
        );
        assert_eq!(op.qubits(), vec![2, 0, 1]);
        assert!(op.bits().is_empty());

        let m = Operation::measure(4, 7);
        assert_eq!(m.qubits(), vec![4]);
        assert_eq!(m.bits(), vec![7]);

        let c = Operation::conditioned(
            StandardGate::Phase(0.5),
            1,
            vec![],
            ClassicalCondition::is_one(3),
        );
        assert_eq!(c.bits(), vec![3]);
    }

    #[test]
    fn qubit_remapping() {
        let op = Operation::unitary(StandardGate::X, 1, vec![QuantumControl::pos(0)]);
        let mapped = op.map_qubits(|q| q + 10);
        assert_eq!(mapped.qubits(), vec![11, 10]);
        let reset = Operation::reset(3).map_qubits(|q| q * 2);
        assert_eq!(reset.qubits(), vec![6]);
    }

    #[test]
    fn display_formats() {
        let op = Operation::unitary(StandardGate::H, 0, vec![]);
        assert_eq!(format!("{op}"), "h q[0]");
        let cx = Operation::unitary(StandardGate::X, 1, vec![QuantumControl::pos(0)]);
        assert_eq!(format!("{cx}"), "cx q[0], q[1]");
        let cond =
            Operation::conditioned(StandardGate::X, 2, vec![], ClassicalCondition::is_one(1));
        assert_eq!(format!("{cond}"), "if (c[1] == 1) x q[2]");
        assert_eq!(
            format!("{}", Operation::measure(0, 0)),
            "measure q[0] -> c[0]"
        );
        assert_eq!(format!("{}", Operation::reset(5)), "reset q[5]");
    }
}
