//! OpenQASM import and export.
//!
//! The exporter emits OpenQASM 2.0 with the `reset`/`measure` statements and
//! an `if (c[k] == v)` prefix for classically-controlled operations (a small
//! OpenQASM 3 style extension, since OpenQASM 2 can only condition on whole
//! registers). The importer reads back exactly this dialect, which is enough
//! for round-tripping every circuit this workspace produces.

use crate::circuit::QuantumCircuit;
use crate::gate::StandardGate;
use crate::operation::{ClassicalCondition, OpKind, Operation, QuantumControl};
use std::fmt;

/// Error produced while parsing an OpenQASM string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQasmError {
    /// 1-based line number of the offending statement.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseQasmError {}

fn err(line: usize, message: impl Into<String>) -> ParseQasmError {
    ParseQasmError {
        line,
        message: message.into(),
    }
}

/// Serialises a circuit to the OpenQASM dialect described in the module docs.
///
/// # Examples
///
/// ```
/// use circuit::QuantumCircuit;
/// use circuit::qasm;
///
/// let mut qc = QuantumCircuit::new(1, 1);
/// qc.h(0).measure(0, 0);
/// let text = qasm::to_qasm(&qc);
/// assert!(text.contains("h q[0];"));
/// let back = qasm::from_qasm(&text)?;
/// assert_eq!(back.len(), qc.len());
/// # Ok::<(), circuit::qasm::ParseQasmError>(())
/// ```
pub fn to_qasm(circuit: &QuantumCircuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", circuit.num_qubits().max(1)));
    if circuit.num_bits() > 0 {
        out.push_str(&format!("creg c[{}];\n", circuit.num_bits()));
    }
    for op in circuit.ops() {
        out.push_str(&op_to_qasm(op));
        out.push('\n');
    }
    out
}

fn op_to_qasm(op: &Operation) -> String {
    let mut line = String::new();
    if let Some(cond) = op.condition {
        line.push_str(&format!(
            "if (c[{}] == {}) ",
            cond.bit,
            u8::from(cond.value)
        ));
    }
    match &op.kind {
        OpKind::Unitary {
            gate,
            target,
            controls,
        } => {
            let prefix = "c".repeat(controls.len());
            let name = format!("{prefix}{}", gate.name());
            let params = gate.params();
            let params = if params.is_empty() {
                String::new()
            } else {
                format!(
                    "({})",
                    params
                        .iter()
                        .map(|p| format!("{p:.15}"))
                        .collect::<Vec<_>>()
                        .join(",")
                )
            };
            let mut operands: Vec<String> = controls
                .iter()
                .map(|c| {
                    if c.positive {
                        format!("q[{}]", c.qubit)
                    } else {
                        format!("~q[{}]", c.qubit)
                    }
                })
                .collect();
            operands.push(format!("q[{target}]"));
            line.push_str(&format!("{name}{params} {};", operands.join(",")));
        }
        OpKind::Measure { qubit, bit } => {
            line.push_str(&format!("measure q[{qubit}] -> c[{bit}];"));
        }
        OpKind::Reset { qubit } => {
            line.push_str(&format!("reset q[{qubit}];"));
        }
        OpKind::Barrier => line.push_str("barrier q;"),
    }
    line
}

/// Parses the OpenQASM dialect produced by [`to_qasm`].
///
/// # Errors
///
/// Returns a [`ParseQasmError`] describing the first statement that could not
/// be understood.
pub fn from_qasm(text: &str) -> Result<QuantumCircuit, ParseQasmError> {
    let mut n_qubits = 0usize;
    let mut n_bits = 0usize;
    let mut ops: Vec<Operation> = Vec::new();

    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw_line.split("//").next().unwrap_or("").trim();
        if line.is_empty() || line.starts_with("OPENQASM") || line.starts_with("include") {
            continue;
        }
        let stmt = line.trim_end_matches(';').trim();
        if let Some(rest) = stmt.strip_prefix("qreg") {
            n_qubits = parse_register_size(rest, lineno)?;
        } else if let Some(rest) = stmt.strip_prefix("creg") {
            n_bits = parse_register_size(rest, lineno)?;
        } else if stmt.starts_with("barrier") {
            ops.push(Operation::barrier());
        } else {
            ops.push(parse_operation(stmt, lineno)?);
        }
    }

    let mut circuit = QuantumCircuit::new(n_qubits, n_bits);
    for op in ops {
        circuit.try_push(op).map_err(|e| err(0, e.to_string()))?;
    }
    Ok(circuit)
}

fn parse_register_size(rest: &str, lineno: usize) -> Result<usize, ParseQasmError> {
    let open = rest.find('[').ok_or_else(|| err(lineno, "missing `[`"))?;
    let close = rest.find(']').ok_or_else(|| err(lineno, "missing `]`"))?;
    rest[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| err(lineno, "invalid register size"))
}

fn parse_operation(stmt: &str, lineno: usize) -> Result<Operation, ParseQasmError> {
    // Optional classical condition prefix.
    let (condition, stmt) = if let Some(rest) = stmt.strip_prefix("if") {
        let rest = rest.trim_start();
        let close = rest
            .find(')')
            .ok_or_else(|| err(lineno, "missing `)` in condition"))?;
        let cond_text = rest[..close].trim_start_matches('(').trim();
        let (bit_part, value_part) = cond_text
            .split_once("==")
            .ok_or_else(|| err(lineno, "condition must use `==`"))?;
        let bit = parse_qubit_index(bit_part.trim(), lineno)?;
        let value: u8 = value_part
            .trim()
            .parse()
            .map_err(|_| err(lineno, "invalid condition value"))?;
        (
            Some(ClassicalCondition {
                bit,
                value: value != 0,
            }),
            rest[close + 1..].trim(),
        )
    } else {
        (None, stmt)
    };

    if let Some(rest) = stmt.strip_prefix("measure") {
        let (q, c) = rest
            .split_once("->")
            .ok_or_else(|| err(lineno, "measure requires `->`"))?;
        let qubit = parse_qubit_index(q.trim(), lineno)?;
        let bit = parse_qubit_index(c.trim(), lineno)?;
        if condition.is_some() {
            return Err(err(lineno, "conditions on measurements are not supported"));
        }
        return Ok(Operation::measure(qubit, bit));
    }
    if let Some(rest) = stmt.strip_prefix("reset") {
        let qubit = parse_qubit_index(rest.trim(), lineno)?;
        if condition.is_some() {
            return Err(err(lineno, "conditions on resets are not supported"));
        }
        return Ok(Operation::reset(qubit));
    }

    // Gate application: name[(params)] operand{,operand}.
    let (head, operands_text) = stmt
        .split_once(' ')
        .ok_or_else(|| err(lineno, "gate statement requires operands"))?;
    let (name, params) = if let Some(open) = head.find('(') {
        let close = head
            .rfind(')')
            .ok_or_else(|| err(lineno, "missing `)` in gate parameters"))?;
        let params: Result<Vec<f64>, _> = head[open + 1..close]
            .split(',')
            .map(|p| p.trim().parse::<f64>())
            .collect();
        (
            &head[..open],
            params.map_err(|_| err(lineno, "invalid gate parameter"))?,
        )
    } else {
        (head, vec![])
    };

    let operands: Vec<&str> = operands_text.split(',').map(str::trim).collect();
    let n_controls = name.chars().take_while(|&c| c == 'c').count();
    // Guard against gate names that genuinely start with `c` (none of the
    // supported mnemonics do after stripping controls).
    let base_name = &name[n_controls..];
    if operands.len() != n_controls + 1 {
        return Err(err(
            lineno,
            format!(
                "gate `{name}` expects {} operands, found {}",
                n_controls + 1,
                operands.len()
            ),
        ));
    }
    let gate = parse_gate(base_name, &params, lineno)?;
    let mut controls = Vec::with_capacity(n_controls);
    for operand in &operands[..n_controls] {
        if let Some(stripped) = operand.strip_prefix('~') {
            controls.push(QuantumControl::neg(parse_qubit_index(stripped, lineno)?));
        } else {
            controls.push(QuantumControl::pos(parse_qubit_index(operand, lineno)?));
        }
    }
    let target = parse_qubit_index(operands[n_controls], lineno)?;
    Ok(Operation {
        kind: OpKind::Unitary {
            gate,
            target,
            controls,
        },
        condition,
    })
}

fn parse_gate(name: &str, params: &[f64], lineno: usize) -> Result<StandardGate, ParseQasmError> {
    let need = |n: usize| -> Result<(), ParseQasmError> {
        if params.len() == n {
            Ok(())
        } else {
            Err(err(
                lineno,
                format!(
                    "gate `{name}` expects {n} parameters, found {}",
                    params.len()
                ),
            ))
        }
    };
    let gate = match name {
        "id" => StandardGate::I,
        "h" => StandardGate::H,
        "x" => StandardGate::X,
        "y" => StandardGate::Y,
        "z" => StandardGate::Z,
        "s" => StandardGate::S,
        "sdg" => StandardGate::Sdg,
        "t" => StandardGate::T,
        "tdg" => StandardGate::Tdg,
        "sx" => StandardGate::Sx,
        "sxdg" => StandardGate::Sxdg,
        "p" | "u1" => {
            need(1)?;
            StandardGate::Phase(params[0])
        }
        "rx" => {
            need(1)?;
            StandardGate::Rx(params[0])
        }
        "ry" => {
            need(1)?;
            StandardGate::Ry(params[0])
        }
        "rz" => {
            need(1)?;
            StandardGate::Rz(params[0])
        }
        "u" | "u3" => {
            need(3)?;
            StandardGate::U(params[0], params[1], params[2])
        }
        other => return Err(err(lineno, format!("unknown gate `{other}`"))),
    };
    Ok(gate)
}

fn parse_qubit_index(text: &str, lineno: usize) -> Result<usize, ParseQasmError> {
    let open = text
        .find('[')
        .ok_or_else(|| err(lineno, format!("missing `[` in operand `{text}`")))?;
    let close = text
        .find(']')
        .ok_or_else(|| err(lineno, format!("missing `]` in operand `{text}`")))?;
    text[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| err(lineno, format!("invalid index in operand `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(circuit: &QuantumCircuit) -> QuantumCircuit {
        from_qasm(&to_qasm(circuit)).expect("roundtrip parse")
    }

    #[test]
    fn export_contains_headers_and_registers() {
        let mut qc = QuantumCircuit::new(3, 2);
        qc.h(0);
        let text = to_qasm(&qc);
        assert!(text.contains("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[3];"));
        assert!(text.contains("creg c[2];"));
        assert!(text.contains("h q[0];"));
    }

    #[test]
    fn roundtrip_static_circuit() {
        let mut qc = QuantumCircuit::new(3, 0);
        qc.h(0)
            .cx(0, 1)
            .ccx(0, 1, 2)
            .p(0.25, 2)
            .rz(-1.5, 1)
            .swap(0, 2);
        let back = roundtrip(&qc);
        assert_eq!(back.num_qubits(), 3);
        assert_eq!(back.ops(), qc.ops());
    }

    #[test]
    fn roundtrip_dynamic_circuit() {
        let mut qc = QuantumCircuit::new(2, 2);
        qc.h(0)
            .measure(0, 0)
            .reset(0)
            .p_if(0.5, 1, 0)
            .x_if(1, 1)
            .measure(1, 1);
        let back = roundtrip(&qc);
        assert_eq!(back.ops(), qc.ops());
        assert!(back.is_dynamic());
    }

    #[test]
    fn roundtrip_negative_controls() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.controlled_gate(StandardGate::X, 1, vec![QuantumControl::neg(0)]);
        let back = roundtrip(&qc);
        assert_eq!(back.ops(), qc.ops());
    }

    #[test]
    fn parse_rejects_unknown_gate() {
        let text = "OPENQASM 2.0;\nqreg q[1];\nfancy q[0];\n";
        let res = from_qasm(text);
        assert!(res.is_err());
        let e = res.unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unknown gate"));
    }

    #[test]
    fn parse_rejects_bad_measure() {
        let text = "qreg q[1];\ncreg c[1];\nmeasure q[0] c[0];\n";
        assert!(from_qasm(text).is_err());
    }

    #[test]
    fn parse_ignores_comments_and_blank_lines() {
        let text = "OPENQASM 2.0;\n\n// a comment\nqreg q[2]; // registers\nh q[0]; // gate\n";
        let qc = from_qasm(text).expect("parse");
        assert_eq!(qc.num_qubits(), 2);
        assert_eq!(qc.len(), 1);
    }

    #[test]
    fn barrier_roundtrips_as_barrier() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.h(0).barrier().h(1);
        let back = roundtrip(&qc);
        assert_eq!(back.len(), 3);
        assert_eq!(back.ops()[1], Operation::barrier());
    }

    #[test]
    fn parameter_precision_survives_roundtrip() {
        let theta = std::f64::consts::PI / 7.0;
        let mut qc = QuantumCircuit::new(1, 0);
        qc.p(theta, 0);
        let back = roundtrip(&qc);
        if let OpKind::Unitary {
            gate: StandardGate::Phase(t),
            ..
        } = back.ops()[0].kind
        {
            assert!((t - theta).abs() < 1e-12);
        } else {
            panic!("expected a phase gate");
        }
    }
}
