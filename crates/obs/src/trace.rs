//! Structured span/event tracer: one JSON object per line to an installed
//! sink.
//!
//! Every emitted line carries:
//!
//! * `ts_us` — microseconds since the process's first trace activity
//!   (monotonic, from a single [`Instant`] epoch, so timestamps across
//!   threads are directly comparable),
//! * `thread` — a small stable per-thread ID,
//! * `ev` — `"event"`, `"span_start"` or `"span_end"`,
//! * `kind` — the dotted event name (`gc.barrier`, `scheme.launch`, …),
//! * the ambient [`Context`] — `pair`, `pair_name`, `scheme` and the
//!   enclosing span ID as `parent` — plus any call-site fields.
//!
//! Spans are RAII guards: [`span`] emits `span_start` and returns a
//! [`Span`] whose [`end`](Span::end) (or drop) emits `span_end` with
//! `dur_us`. The guard also installs itself as the thread's `parent` so
//! nested spans and events correlate without plumbing. Cross-thread nesting
//! is explicit: capture [`current_context`] on the spawning thread and
//! install it with [`with_context`] inside the worker.
//!
//! When no sink is installed ([`enabled`] is false) every entry point
//! reduces to one relaxed atomic load and a branch. The writer is a global
//! mutex — coarse, but tracing is opt-in and line-buffered writes under the
//! lock keep lines whole under concurrency.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

fn sink() -> &'static Mutex<Option<Box<dyn Write + Send>>> {
    static SINK: OnceLock<Mutex<Option<Box<dyn Write + Send>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    static CTX: RefCell<Context> = RefCell::new(Context::default());
}

/// Is a trace sink installed? One relaxed load — the only cost the
/// instrumented hot paths pay when tracing is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs a JSONL sink and enables tracing. Replaces (and flushes) any
/// previous sink.
pub fn install_writer(writer: Box<dyn Write + Send>) {
    epoch(); // pin the timestamp epoch no later than the first sink
    let mut guard = sink().lock().unwrap_or_else(|p| p.into_inner());
    if let Some(mut old) = guard.take() {
        let _ = old.flush();
    }
    *guard = Some(writer);
    ENABLED.store(true, Ordering::Release);
}

/// Opens `path` for writing (truncating) and installs it as the trace sink.
pub fn install_file(path: &Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    install_writer(Box::new(BufWriter::new(file)));
    Ok(())
}

/// Disables tracing, flushes and returns the sink (tests inspect buffers
/// this way). No-op returning `None` when tracing was not enabled.
pub fn uninstall() -> Option<Box<dyn Write + Send>> {
    ENABLED.store(false, Ordering::Release);
    let mut guard = sink().lock().unwrap_or_else(|p| p.into_inner());
    let mut writer = guard.take()?;
    let _ = writer.flush();
    Some(writer)
}

/// Flushes the sink if one is installed.
pub fn flush() {
    if let Some(writer) = sink().lock().unwrap_or_else(|p| p.into_inner()).as_mut() {
        let _ = writer.flush();
    }
}

/// One field value on a trace line. Build via the `From` impls:
/// `("reclaimed", n.into())`.
#[derive(Debug, Clone)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float — non-finite values are emitted as `null` (valid JSON always).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Borrowed static string.
    Str(&'static str),
    /// Owned string.
    String(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(v)
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::String(v)
    }
}
impl From<Duration> for FieldValue {
    /// Durations are emitted as integer microseconds.
    fn from(v: Duration) -> Self {
        FieldValue::U64(v.as_micros() as u64)
    }
}

/// The ambient correlation IDs attached to every line a thread emits.
#[derive(Debug, Clone, Default)]
pub struct Context {
    /// Batch pair index this thread is working on.
    pub pair: Option<u64>,
    /// Human-readable pair name (shared, cloning is one refcount).
    pub pair_name: Option<Arc<str>>,
    /// Scheme the thread is executing.
    pub scheme: Option<&'static str>,
    /// Enclosing span ID (maintained by [`Span`] guards on this thread, or
    /// inherited explicitly across a spawn).
    pub parent: Option<u64>,
}

impl Context {
    /// This context with the scheme replaced — for handing to a worker.
    pub fn with_scheme(mut self, scheme: &'static str) -> Context {
        self.scheme = Some(scheme);
        self
    }
}

/// Snapshot of the calling thread's current context (to hand to a worker
/// thread via [`with_context`]).
pub fn current_context() -> Context {
    CTX.with(|ctx| ctx.borrow().clone())
}

/// Installs `context` on the calling thread until the guard drops (the
/// previous context is restored).
pub fn with_context(context: Context) -> ContextGuard {
    let previous = CTX.with(|ctx| std::mem::replace(&mut *ctx.borrow_mut(), context));
    ContextGuard { previous }
}

/// Restores the previous [`Context`] on drop.
#[must_use = "dropping the guard immediately restores the previous context"]
pub struct ContextGuard {
    previous: Context,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let previous = std::mem::take(&mut self.previous);
        let _ = CTX.try_with(|ctx| *ctx.borrow_mut() = previous);
    }
}

fn push_json_str(line: &mut String, value: &str) {
    line.push('"');
    for c in value.chars() {
        match c {
            '"' => line.push_str("\\\""),
            '\\' => line.push_str("\\\\"),
            '\n' => line.push_str("\\n"),
            '\r' => line.push_str("\\r"),
            '\t' => line.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(line, "\\u{:04x}", c as u32);
            }
            c => line.push(c),
        }
    }
    line.push('"');
}

fn push_field(line: &mut String, key: &str, value: &FieldValue) {
    line.push(',');
    push_json_str(line, key);
    line.push(':');
    match value {
        FieldValue::U64(v) => {
            let _ = write!(line, "{v}");
        }
        FieldValue::I64(v) => {
            let _ = write!(line, "{v}");
        }
        FieldValue::F64(v) if v.is_finite() => {
            let _ = write!(line, "{v}");
        }
        FieldValue::F64(_) => line.push_str("null"),
        FieldValue::Bool(v) => {
            let _ = write!(line, "{v}");
        }
        FieldValue::Str(v) => push_json_str(line, v),
        FieldValue::String(v) => push_json_str(line, v),
    }
}

fn emit_line(
    ev: &str,
    kind: &str,
    span_id: Option<u64>,
    parent_override: Option<u64>,
    fields: &[(&'static str, FieldValue)],
) {
    let ts_us = now_us();
    let thread = THREAD_ID.try_with(|id| *id).unwrap_or(0);
    let mut line = String::with_capacity(128);
    let _ = write!(line, "{{\"ts_us\":{ts_us},\"thread\":{thread},\"ev\":");
    push_json_str(&mut line, ev);
    line.push_str(",\"kind\":");
    push_json_str(&mut line, kind);
    if let Some(id) = span_id {
        let _ = write!(line, ",\"span\":{id}");
    }
    let _ = CTX.try_with(|ctx| {
        let ctx = ctx.borrow();
        if let Some(pair) = ctx.pair {
            let _ = write!(line, ",\"pair\":{pair}");
        }
        if let Some(name) = &ctx.pair_name {
            line.push_str(",\"pair_name\":");
            push_json_str(&mut line, name);
        }
        if let Some(scheme) = ctx.scheme {
            line.push_str(",\"scheme\":");
            push_json_str(&mut line, scheme);
        }
        let parent = parent_override.or(ctx.parent);
        if let Some(parent) = parent {
            if Some(parent) != span_id {
                let _ = write!(line, ",\"parent\":{parent}");
            }
        }
    });
    for (key, value) in fields {
        push_field(&mut line, key, value);
    }
    line.push_str("}\n");

    let mut guard = sink().lock().unwrap_or_else(|p| p.into_inner());
    if let Some(writer) = guard.as_mut() {
        if writer.write_all(line.as_bytes()).is_err() {
            // A dead sink (closed pipe, full disk) disables tracing instead
            // of failing every subsequent event.
            ENABLED.store(false, Ordering::Release);
            *guard = None;
        }
    }
}

/// Emits a point event. No-op (one load + branch) when tracing is off.
#[inline]
pub fn event(kind: &'static str, fields: &[(&'static str, FieldValue)]) {
    if !enabled() {
        return;
    }
    emit_line("event", kind, None, None, fields);
}

/// Starts a span: emits `span_start`, installs the span as the thread's
/// parent, and returns the guard. No-op guard when tracing is off.
#[inline]
pub fn span(kind: &'static str, fields: &[(&'static str, FieldValue)]) -> Span {
    if !enabled() {
        return Span {
            id: 0,
            kind,
            start_us: 0,
            prev_parent: None,
            armed: false,
        };
    }
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let prev_parent = CTX
        .try_with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            let prev = ctx.parent;
            ctx.parent = Some(id);
            prev
        })
        .unwrap_or(None);
    let start_us = now_us();
    emit_line("span_start", kind, Some(id), prev_parent, fields);
    Span {
        id,
        kind,
        start_us,
        prev_parent,
        armed: true,
    }
}

/// RAII span guard: emits `span_end` (with `dur_us`) on [`end`](Span::end)
/// or drop, restoring the thread's previous parent span.
#[must_use = "dropping the span immediately ends it"]
pub struct Span {
    id: u64,
    kind: &'static str,
    start_us: u64,
    prev_parent: Option<u64>,
    armed: bool,
}

impl Span {
    /// The span's ID (0 for a disabled no-op span) — to hand to workers via
    /// [`Context::parent`].
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Ends the span with extra fields on the `span_end` line.
    pub fn end(mut self, fields: &[(&'static str, FieldValue)]) {
        self.finish(fields);
    }

    fn finish(&mut self, fields: &[(&'static str, FieldValue)]) {
        if !self.armed {
            return;
        }
        self.armed = false;
        let _ = CTX.try_with(|ctx| ctx.borrow_mut().parent = self.prev_parent);
        let dur_us = now_us().saturating_sub(self.start_us);
        let mut all: Vec<(&'static str, FieldValue)> = Vec::with_capacity(fields.len() + 1);
        all.push(("dur_us", FieldValue::U64(dur_us)));
        all.extend_from_slice(fields);
        emit_line("span_end", self.kind, Some(self.id), self.prev_parent, &all);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish(&[]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracing_emits_nothing_and_spans_are_inert() {
        // No sink installed in this process at this point: enabled() must be
        // false and all entry points must be no-ops.
        assert!(!enabled());
        event("test.event", &[("n", 1u64.into())]);
        let span = span("test.span", &[]);
        assert_eq!(span.id(), 0);
        span.end(&[("ok", true.into())]);
        assert!(uninstall().is_none());
    }

    #[test]
    fn json_escaping_covers_quotes_and_control_chars() {
        let mut line = String::new();
        push_json_str(&mut line, "a\"b\\c\nd\te\u{1}");
        assert_eq!(line, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }
}
