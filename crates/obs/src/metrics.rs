//! Lock-free process-wide counters and histograms with static metric IDs.
//!
//! Layout: every thread owns an [`Arc`]`<CellBlock>` of atomic cells,
//! registered once in a global list on first use. Incrementing touches only
//! the calling thread's block with [`Ordering::Relaxed`] — there is no
//! cross-thread write sharing on the hot path, and no lock anywhere near it.
//! [`fold`] walks the registry and sums every block (including blocks of
//! threads that have already exited — the registry keeps them alive, so a
//! fold never loses counts).
//!
//! Counters are *always on*: the cost budget is one relaxed `fetch_add` per
//! event, which is why only coarse events (GC phases, lock waits, pair
//! lifecycle) increment here directly. Per-node-op counts (compute-cache
//! lookups and the like) are folded in bulk from the owning structure's
//! plain counters when it is dropped.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// What a metric's value counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// A plain event count.
    Count,
    /// A sum of durations in nanoseconds.
    Nanos,
}

/// A static counter identifier — an index into [`CATALOG`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metric(usize);

/// A static histogram identifier — an index into [`HIST_CATALOG`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hist(usize);

/// Catalogue entry for one counter: the stable name reported in summaries,
/// the unit, and the caveat — what this number does *not* show. The caveat
/// travels with the metric so every consumer (docs, summaries, benches) can
/// repeat it instead of re-inventing an honest framing.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// Stable dotted name (`dd.gc.barrier_deferrals`).
    pub name: &'static str,
    /// Value unit.
    pub unit: Unit,
    /// What the number misleads about when read alone.
    pub caveat: &'static str,
}

macro_rules! catalog {
    ($($(#[$doc:meta])* $konst:ident = ($name:literal, $unit:expr, $caveat:literal);)*) => {
        /// Every registered counter, indexable by [`Metric`].
        pub const CATALOG: &[MetricDef] = &[
            $(MetricDef { name: $name, unit: $unit, caveat: $caveat },)*
        ];
        catalog!(@consts 0; $($(#[$doc])* $konst;)*);
    };
    (@consts $idx:expr; $(#[$doc:meta])* $konst:ident; $($rest:tt)*) => {
        $(#[$doc])*
        pub const $konst: Metric = Metric($idx);
        catalog!(@consts $idx + 1; $($rest)*);
    };
    (@consts $idx:expr;) => {};
}

catalog! {
    /// Compute-cache (add/mul/div/transpose memo) lookups, folded at package drop.
    DD_COMPUTE_LOOKUPS = ("dd.compute.lookups", Unit::Count, "folded when a package drops; a live package's counts are invisible until then");
    /// Compute-cache hits, folded at package drop.
    DD_COMPUTE_HITS = ("dd.compute.hits", Unit::Count, "hits on lossy direct-mapped caches; a high rate can mean a small working set, not a good cache");
    /// Gate-DD cache lookups (L1 private + L2 shared), folded at package drop.
    DD_GATE_LOOKUPS = ("dd.gate.lookups", Unit::Count, "counts both private-L1 and shared-L2 probes as one lookup");
    /// Gate-DD cache hits, folded at package drop.
    DD_GATE_HITS = ("dd.gate.hits", Unit::Count, "repeated single-gate circuits hit ~100% regardless of cache quality");
    /// Unique-table intern calls that found an existing node, folded at package drop.
    DD_UNIQUE_HITS = ("dd.unique.hits", Unit::Count, "includes same-thread re-interns; see dd.unique.cross_thread_hits for actual sharing");
    /// Intern hits on a node first interned by a *different* thread.
    DD_CROSS_THREAD_HITS = ("dd.unique.cross_thread_hits", Unit::Count, "attribution is by first-interner; a node both threads would have built counts for neither after the race");
    /// Garbage collections (any kind: private, sole-attachment, barrier).
    DD_GC_RUNS = ("dd.gc.runs", Unit::Count, "a high count can mean healthy steady-state pressure or a thrashing threshold — check reclaimed/run");
    /// Barrier (stop-the-world) shared-store collections that completed.
    DD_GC_BARRIER_RUNS = ("dd.gc.barrier_runs", Unit::Count, "only completed rounds; aborted rounds are dd.gc.barrier_deferrals");
    /// Barrier rounds abandoned because a workspace failed to park within BARRIER_PATIENCE.
    DD_GC_BARRIER_DEFERRALS = ("dd.gc.barrier_deferrals", Unit::Count, "a deferral doubles the collector's threshold, so one deferral changes all later GC timing");
    /// DD nodes reclaimed by garbage collection.
    DD_GC_RECLAIMED = ("dd.gc.reclaimed", Unit::Count, "nodes, not bytes; vector and matrix nodes differ 2x in edge count");
    /// Complex-table entries reclaimed by compaction during GC.
    DD_CTAB_COMPACTED = ("dd.ctab.compacted", Unit::Count, "entries, not bytes; compaction also rehashes survivors, which this does not count");
    /// Time threads spent stopped at the GC barrier (parked workspaces + the waiting collector).
    DD_GC_BARRIER_WAIT_NS = ("dd.gc.barrier_wait_ns", Unit::Nanos, "sums across threads: 4 threads parked 1ms each report 4ms against <=1ms of wall clock");
    /// Shared-store shard/gate/complex lock acquisitions that had to block.
    DD_SHARD_WAITS = ("dd.store.shard_waits", Unit::Count, "a blocked try_lock; says nothing about how long the wait was — see shard_contention_ns");
    /// Time spent blocked acquiring shared-store shard/gate/complex locks.
    DD_SHARD_CONTENTION_NS = ("dd.store.shard_contention_ns", Unit::Nanos, "measured only on the blocking path; uncontended acquisitions contribute zero even though they also cost cycles");
    /// Thread-local mirror invalidations (a GC generation bump forced a full mirror rebuild).
    DD_MIRROR_INVALIDATIONS = ("dd.store.mirror_invalidations", Unit::Count, "each invalidation silently discards memo tables too; the cost shows up later as cache misses");
    /// Portfolio races executed (one per verified pair).
    PF_RACES = ("portfolio.races", Unit::Count, "counts sequential tiny-instance plans as races too");
    /// Scheme launches across all races (primary + escalation waves).
    PF_SCHEME_LAUNCHES = ("portfolio.scheme_launches", Unit::Count, "launched is not finished: cancelled schemes count the same as winners");
    /// Schemes cancelled after another scheme's conclusive verdict.
    PF_CANCELLATIONS = ("portfolio.cancellations", Unit::Count, "cancellation is cooperative; a scheme may run to completion before noticing");
    /// Predicted-plan escalations because the primary wave stalled past its deadline.
    PF_ESCALATIONS_STALL = ("portfolio.escalations.stall", Unit::Count, "stall is a wall-clock verdict; a loaded machine escalates pairs a quiet one would not");
    /// Predicted-plan escalations because every primary scheme finished inconclusively.
    PF_ESCALATIONS_DRAIN = ("portfolio.escalations.drain", Unit::Count, "drain escalations indict the prediction, stall escalations may only indict the deadline");
    /// Batch pairs verified.
    BATCH_PAIRS = ("batch.pairs", Unit::Count, "includes pairs that errored during parse; see the report's failed count");
    /// Warm store checkouts (a pooled store of the right width existed).
    BATCH_WARM_CHECKOUTS = ("batch.warm_checkouts", Unit::Count, "warm means reused, not faster: a bloated warm store can lose to a cold one");
    /// Cold store checkouts (a fresh store had to be built).
    BATCH_COLD_CHECKOUTS = ("batch.cold_checkouts", Unit::Count, "first pair of every width is necessarily cold; the interesting signal is colds after warm-up");
    /// Process resolved the AVX2 kernel backend (at most 1 per process).
    DD_KERNEL_BACKEND_AVX2 = ("dd.kernels.backend_avx2", Unit::Count, "records the dispatch decision, not usage: a process can select AVX2 and never run a single kernel");
    /// Process resolved the scalar kernel backend (at most 1 per process).
    DD_KERNEL_BACKEND_SCALAR = ("dd.kernels.backend_scalar", Unit::Count, "scalar means the autovectorizable fallback, which the compiler may still emit SIMD for");
    /// Apply/mul/add recursions that dropped to the dense terminal-case kernel, folded at package drop.
    DD_DENSE_APPLIES = ("dd.dense.applies", Unit::Count, "counts compute-cache *misses* routed dense; a high hit rate makes this small even when the cutoff does all the residual work");
    /// Weights interned through the batched lookup path (one add per batch).
    DD_BATCH_INTERNED = ("dd.ctab.batch_interned", Unit::Count, "counts weights, not batches; zero/one shortcuts and memo hits resolved before the table lock are included");
    /// Gate-matrix phase factors served from the precomputed twiddle table.
    DD_TWIDDLE_HITS = ("dd.gates.twiddle_hits", Unit::Count, "only cold gate-DD builds reach this path; a warm gate cache makes the count tiny regardless of the table's value");
    /// Generation-snapshot pins taken by shared workspaces (attach + re-pins), folded at package drop.
    DD_EPOCH_PINS = ("dd.store.epoch_pins", Unit::Count, "one pin per attach plus one per collection crossed; a high count means frequent GC, not expensive reads — pinning is an Arc clone");
    /// Generation snapshots retired by a collection publishing a successor.
    DD_RETIRED_GENERATIONS = ("dd.store.retired_generations", Unit::Count, "equals completed shared collections; retirement is not reclamation — a pinned generation lives on until its last reader moves");
    /// Bytes of retired generations whose reclamation was deferred past the publish.
    DD_DEFERRED_RECLAIM_BYTES = ("dd.store.deferred_reclaim_bytes", Unit::Count, "a running total of bytes that *entered* deferral, never decremented when freed; it bounds transient overhead, not live memory");
    /// Requests admitted by the verification service (queued or dispatched).
    SERVICE_REQUESTS = ("service.requests", Unit::Count, "admitted is not completed: cancelled and drain-rejected-later requests count the same as served ones");
    /// Running sum of the admission queue depth, sampled at each admission.
    SERVICE_QUEUE_DEPTH = ("service.queue_depth", Unit::Count, "a running *sum* sampled at admission, not a gauge: divide by service.requests for the mean depth an arriving request saw");
    /// Running sum of in-flight requests, sampled at each dispatch.
    SERVICE_INFLIGHT = ("service.inflight", Unit::Count, "a running *sum* sampled at dispatch, not a gauge: divide by service.requests for mean concurrency; idle stretches contribute nothing");
    /// Requests rejected by admission control (queue full or draining).
    SERVICE_ADMISSION_REJECTS = ("service.admission_rejects", Unit::Count, "rejects are per submit attempt; one retrying client can dominate the count without any other client ever being turned away");
    /// Verification chains executed (one per pipeline, not per step).
    CHAIN_REQUESTS = ("chain.requests", Unit::Count, "a chain that refutes at step 1 and one that verifies 5 steps both count once; see chain.steps for work done");
    /// Adjacent-pair verifications executed inside chains.
    CHAIN_STEPS = ("chain.steps", Unit::Count, "steps verified, not steps requested: a refuted or errored chain stops early and its remaining steps never count");
    /// Between-request warm-store prunes skipped because the next queued request reuses the same width.
    BATCH_POOL_GC_SKIPS = ("batch.pool_gc_skips", Unit::Count, "a skip trusts the submitter's width hint; a wrong hint skips a prune for a pair that never materialises at that width");
}

macro_rules! hist_catalog {
    ($($(#[$doc:meta])* $konst:ident = ($name:literal, $caveat:literal);)*) => {
        /// Every registered histogram, indexable by [`Hist`]. All record
        /// nanosecond durations in log₂ buckets.
        pub const HIST_CATALOG: &[MetricDef] = &[
            $(MetricDef { name: $name, unit: Unit::Nanos, caveat: $caveat },)*
        ];
        hist_catalog!(@consts 0; $($(#[$doc])* $konst;)*);
    };
    (@consts $idx:expr; $(#[$doc:meta])* $konst:ident; $($rest:tt)*) => {
        $(#[$doc])*
        pub const $konst: Hist = Hist($idx);
        hist_catalog!(@consts $idx + 1; $($rest)*);
    };
    (@consts $idx:expr;) => {};
}

hist_catalog! {
    /// Per-workspace park duration at a GC barrier.
    HIST_GC_PARK_NS = ("dd.gc.park_ns", "log2 buckets: the p99 reported is a bucket upper bound, up to 2x the true value");
    /// Full barrier-GC round duration (request to release), collector's view.
    HIST_GC_ROUND_NS = ("dd.gc.round_ns", "collector wall clock; parked workspaces may resume slightly later than release");
    /// Wall-clock time from race start to first conclusive verdict.
    HIST_VERDICT_NS = ("portfolio.verdict_ns", "excludes the cancellation drain, which the pair still pays before its report is final");
    /// Service request duration, dispatch to outcome (queue wait excluded).
    HIST_SERVICE_REQUEST_NS = ("service.request_duration", "measured dispatch-to-outcome, so admission queue wait is invisible here; log2 buckets make the p99 a bucket upper bound, up to 2x the true value");
}

const N_COUNTERS: usize = CATALOG.len();
const N_HISTS: usize = HIST_CATALOG.len();
const HIST_BUCKETS: usize = 64;

struct HistCells {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

struct CellBlock {
    counters: [AtomicU64; N_COUNTERS],
    hists: [HistCells; N_HISTS],
}

impl CellBlock {
    fn new() -> Self {
        CellBlock {
            counters: [const { AtomicU64::new(0) }; N_COUNTERS],
            hists: std::array::from_fn(|_| HistCells {
                buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }
}

fn registry() -> &'static Mutex<Vec<Arc<CellBlock>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<CellBlock>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Shared block for increments that arrive while a thread's TLS is already
/// torn down (counters flushed from `Drop` impls during thread exit land
/// here instead of being lost or panicking).
fn fallback_block() -> &'static Arc<CellBlock> {
    static FALLBACK: OnceLock<Arc<CellBlock>> = OnceLock::new();
    FALLBACK.get_or_init(|| {
        let block = Arc::new(CellBlock::new());
        registry()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(Arc::clone(&block));
        block
    })
}

thread_local! {
    static LOCAL: Arc<CellBlock> = {
        let block = Arc::new(CellBlock::new());
        registry()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(Arc::clone(&block));
        block
    };
}

// `try_with`: safe during thread teardown, where LOCAL may already be gone —
// late increments land in the shared fallback block instead of panicking.
#[inline]
fn with_block_fn(f: impl Fn(&CellBlock)) {
    match LOCAL.try_with(|block| f(block)) {
        Ok(()) => {}
        Err(_) => f(fallback_block()),
    }
}

/// Adds `n` to a counter: one thread-local lookup + one relaxed `fetch_add`.
#[inline]
pub fn add(metric: Metric, n: u64) {
    if n == 0 {
        return;
    }
    with_block_fn(|block| {
        block.counters[metric.0].fetch_add(n, Ordering::Relaxed);
    });
}

/// Increments a counter by one.
#[inline]
pub fn incr(metric: Metric) {
    add(metric, 1);
}

/// Records one nanosecond duration into a histogram (log₂ bucketing).
#[inline]
pub fn observe_ns(hist: Hist, ns: u64) {
    let bucket = (64 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1);
    with_block_fn(|block| {
        let cells = &block.hists[hist.0];
        cells.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        cells.count.fetch_add(1, Ordering::Relaxed);
        cells.sum.fetch_add(ns, Ordering::Relaxed);
    });
}

/// A folded histogram: total count, summed nanoseconds, log₂ buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations in nanoseconds.
    pub sum_ns: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl HistSnapshot {
    const ZERO: HistSnapshot = HistSnapshot {
        count: 0,
        sum_ns: 0,
        buckets: [0; HIST_BUCKETS],
    };

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (`q` in `[0, 1]`). Granularity is a power of two: the true value is
    /// within 2x below the returned bound.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if index >= 63 { u64::MAX } else { 1u64 << index };
            }
        }
        u64::MAX
    }
}

/// A fold of every thread's counter and histogram cells at one moment.
///
/// Folding is monotone per counter (each cell only grows), so two snapshots
/// bracket an interval: `later.delta_since(&earlier)` is the activity in
/// between. There is no cross-counter consistency guarantee — a fold taken
/// while threads increment may see counter A's update but not B's.
#[derive(Debug, Clone)]
pub struct Snapshot {
    counters: [u64; N_COUNTERS],
    hists: [HistSnapshot; N_HISTS],
}

impl Snapshot {
    /// The folded value of one counter.
    pub fn get(&self, metric: Metric) -> u64 {
        self.counters[metric.0]
    }

    /// The folded state of one histogram.
    pub fn hist(&self, hist: Hist) -> &HistSnapshot {
        &self.hists[hist.0]
    }

    /// Counter-wise difference from an earlier snapshot (saturating, so a
    /// mismatched pair degrades to zeros instead of nonsense).
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let mut counters = [0u64; N_COUNTERS];
        for (index, slot) in counters.iter_mut().enumerate() {
            *slot = self.counters[index].saturating_sub(earlier.counters[index]);
        }
        let mut hists = [HistSnapshot::ZERO; N_HISTS];
        for (index, slot) in hists.iter_mut().enumerate() {
            slot.count = self.hists[index]
                .count
                .saturating_sub(earlier.hists[index].count);
            slot.sum_ns = self.hists[index]
                .sum_ns
                .saturating_sub(earlier.hists[index].sum_ns);
            for b in 0..HIST_BUCKETS {
                slot.buckets[b] =
                    self.hists[index].buckets[b].saturating_sub(earlier.hists[index].buckets[b]);
            }
        }
        Snapshot { counters, hists }
    }

    /// Iterates `(definition, value)` over counters with non-zero values,
    /// in catalogue order.
    pub fn non_zero(&self) -> impl Iterator<Item = (&'static MetricDef, u64)> + '_ {
        CATALOG
            .iter()
            .zip(self.counters.iter())
            .filter(|(_, &value)| value != 0)
            .map(|(def, &value)| (def, value))
    }

    /// Iterates `(definition, histogram)` over histograms with observations,
    /// in catalogue order.
    pub fn non_zero_hists(&self) -> impl Iterator<Item = (&'static MetricDef, &HistSnapshot)> + '_ {
        HIST_CATALOG
            .iter()
            .zip(self.hists.iter())
            .filter(|(_, hist)| hist.count != 0)
    }
}

/// Folds every registered thread's cells into one [`Snapshot`].
pub fn fold() -> Snapshot {
    let mut counters = [0u64; N_COUNTERS];
    let mut hists = [HistSnapshot::ZERO; N_HISTS];
    let blocks = registry()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    for block in blocks.iter() {
        for (slot, cell) in counters.iter_mut().zip(block.counters.iter()) {
            *slot += cell.load(Ordering::Relaxed);
        }
        for (slot, cells) in hists.iter_mut().zip(block.hists.iter()) {
            slot.count += cells.count.load(Ordering::Relaxed);
            slot.sum_ns += cells.sum.load(Ordering::Relaxed);
            for (b, bucket) in cells.buckets.iter().enumerate() {
                slot.buckets[b] += bucket.load(Ordering::Relaxed);
            }
        }
    }
    Snapshot { counters, hists }
}

/// Looks up the catalogue definition of a counter.
pub fn def(metric: Metric) -> &'static MetricDef {
    &CATALOG[metric.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique() {
        let mut names: Vec<&str> = CATALOG
            .iter()
            .chain(HIST_CATALOG.iter())
            .map(|def| def.name)
            .collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate metric name in catalogue");
    }

    #[test]
    fn every_metric_has_a_caveat() {
        for def in CATALOG.iter().chain(HIST_CATALOG.iter()) {
            assert!(
                !def.caveat.is_empty(),
                "metric {} is missing its caveat",
                def.name
            );
        }
    }

    #[test]
    fn quantiles_bracket_observations() {
        let before = fold();
        for _ in 0..100 {
            observe_ns(HIST_GC_PARK_NS, 1000);
        }
        let delta = fold().delta_since(&before);
        let hist = delta.hist(HIST_GC_PARK_NS);
        assert_eq!(hist.count, 100);
        assert_eq!(hist.sum_ns, 100_000);
        assert_eq!(hist.mean_ns(), 1000);
        let p50 = hist.quantile_ns(0.5);
        assert!((1000..=2048).contains(&p50), "p50 bound was {p50}");
    }
}
