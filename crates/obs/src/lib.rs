//! Zero-dependency observability for the workspace: a lock-free metrics
//! registry and a structured JSON-lines tracer.
//!
//! The crate exists so the hot layers (`dd`, `portfolio`) can answer *why*
//! questions — why is the shared store slower on small miters, where does a
//! barrier GC spend its time, which scheme actually won — without paying for
//! the answer when nobody is asking. Two halves:
//!
//! * [`metrics`] — process-wide counters and log₂ histograms with static IDs.
//!   Each thread increments its own cache-line-private cells with relaxed
//!   atomics; [`metrics::fold`] sums every thread's cells on demand. An
//!   increment is one thread-local lookup plus one relaxed `fetch_add` — no
//!   locks, no allocation, safe from `Drop` impls during thread teardown.
//! * [`trace`] — a span/event tracer writing one JSON object per line to an
//!   installed sink (`verify --trace-file`). Every line carries a monotonic
//!   `ts_us` timestamp, a stable per-thread ID and the ambient correlation
//!   [`trace::Context`] (pair, scheme, parent span). When no sink is
//!   installed the entire layer is one relaxed atomic load and a branch —
//!   [`trace::enabled`] — so instrumented hot paths cost nothing measurable
//!   with tracing off.
//!
//! The crate deliberately depends on nothing (not even the vendored serde):
//! `dd` sits at the bottom of the workspace graph and everything above it
//! links `obs`, so this crate must stay a leaf.

#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{fold, Metric, MetricDef, Snapshot, Unit};
pub use trace::{enabled, event, span, Context, FieldValue, Span};
