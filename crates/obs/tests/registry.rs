//! Counter-registry semantics under concurrency: folds must be exact once
//! the incrementing threads have quiesced, including counts from threads
//! that have already exited.

use obs::metrics::{self, BATCH_PAIRS, DD_GC_RUNS, HIST_GC_PARK_NS, PF_RACES};

#[test]
fn fold_is_deterministic_after_concurrent_increments() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;

    let before = metrics::fold();
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            std::thread::spawn(|| {
                for _ in 0..PER_THREAD {
                    metrics::incr(DD_GC_RUNS);
                    metrics::add(PF_RACES, 2);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    // The incrementing threads have exited: their cell blocks must still be
    // part of the fold.
    let delta = metrics::fold().delta_since(&before);
    assert_eq!(delta.get(DD_GC_RUNS), THREADS as u64 * PER_THREAD);
    assert_eq!(delta.get(PF_RACES), 2 * THREADS as u64 * PER_THREAD);

    // Repeated folds with no intervening activity agree exactly.
    let again = metrics::fold().delta_since(&before);
    assert_eq!(again.get(DD_GC_RUNS), delta.get(DD_GC_RUNS));
    assert_eq!(again.get(PF_RACES), delta.get(PF_RACES));
}

#[test]
fn histograms_fold_across_threads() {
    let before = metrics::fold();
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..100u64 {
                    metrics::observe_ns(HIST_GC_PARK_NS, (t as u64 + 1) * 1000 + i);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let delta = metrics::fold().delta_since(&before);
    let hist = delta.hist(HIST_GC_PARK_NS);
    assert_eq!(hist.count, 400);
    assert!(hist.mean_ns() >= 1000 && hist.mean_ns() <= 5000);
    assert!(hist.quantile_ns(1.0) >= 4000, "max bucket bound too low");
}

#[test]
fn zero_counters_are_skipped_by_non_zero_iteration() {
    let before = metrics::fold();
    metrics::incr(BATCH_PAIRS);
    let delta = metrics::fold().delta_since(&before);
    let touched: Vec<&str> = delta.non_zero().map(|(def, _)| def.name).collect();
    assert!(touched.contains(&"batch.pairs"));
    // Only metrics this process actually incremented appear; the full
    // catalogue does not leak zeros into summaries. (Other tests in this
    // binary increment too, so assert absence of a metric nothing here uses.)
    assert!(!touched.contains(&"dd.ctab.compacted"));
}
