//! Tracer semantics: emitted lines are valid JSON with the required fields,
//! spans nest and restore the ambient parent, context propagates across an
//! explicit thread handoff, and a disabled tracer writes nothing.
//!
//! Tracing state is process-global, so every test serialises on `TEST_LOCK`.

use obs::trace::{self, Context};
use serde_json::Value;
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

fn test_lock() -> MutexGuard<'static, ()> {
    static TEST_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    TEST_LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

#[derive(Clone, Default)]
struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    fn lines(&self) -> Vec<Value> {
        let bytes = self.0.lock().unwrap();
        let text = String::from_utf8(bytes.clone()).expect("trace output is UTF-8");
        text.lines()
            .map(|line| {
                serde_json::from_str(line).unwrap_or_else(|e| {
                    panic!("unparseable trace line {line:?}: {e}");
                })
            })
            .collect()
    }

    fn is_empty(&self) -> bool {
        self.0.lock().unwrap().is_empty()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn capture(body: impl FnOnce()) -> Vec<Value> {
    let buffer = SharedBuffer::default();
    trace::install_writer(Box::new(buffer.clone()));
    body();
    trace::uninstall();
    buffer.lines()
}

#[test]
fn every_line_carries_the_required_fields() {
    let _guard = test_lock();
    let lines = capture(|| {
        let _ctx = trace::with_context(Context {
            pair: Some(3),
            pair_name: Some("qft_08".into()),
            scheme: None,
            parent: None,
        });
        let span = trace::span("race", &[("schemes", 4u64.into())]);
        trace::event("scheme.launch", &[("wave", "primary".into())]);
        span.end(&[("verdict", "equivalent".into())]);
    });
    assert_eq!(lines.len(), 3);
    for line in &lines {
        for key in ["ts_us", "thread", "ev", "kind"] {
            assert!(line.get(key).is_some(), "line missing {key}: {line:?}");
        }
        assert_eq!(line.get("pair").and_then(Value::as_f64), Some(3.0));
        assert_eq!(
            line.get("pair_name").and_then(Value::as_str),
            Some("qft_08")
        );
    }
    assert_eq!(
        lines[0].get("ev").and_then(Value::as_str),
        Some("span_start")
    );
    assert_eq!(lines[1].get("ev").and_then(Value::as_str), Some("event"));
    assert_eq!(lines[2].get("ev").and_then(Value::as_str), Some("span_end"));
    // The event nests under the span; the span_end reports its duration.
    let span_id = lines[0].get("span").and_then(Value::as_f64).unwrap();
    assert_eq!(
        lines[1].get("parent").and_then(Value::as_f64),
        Some(span_id)
    );
    assert!(lines[2].get("dur_us").and_then(Value::as_f64).unwrap() >= 0.0);
}

#[test]
fn spans_nest_and_restore_the_parent() {
    let _guard = test_lock();
    let lines = capture(|| {
        let outer = trace::span("pair", &[]);
        {
            let _inner = trace::span("gc.barrier", &[]);
            trace::event("gc.park", &[]);
        }
        trace::event("after.inner", &[]);
        outer.end(&[]);
    });
    let by_kind = |kind: &str, ev: &str| -> Value {
        lines
            .iter()
            .find(|l| {
                l.get("kind").and_then(Value::as_str) == Some(kind)
                    && l.get("ev").and_then(Value::as_str) == Some(ev)
            })
            .unwrap_or_else(|| panic!("no {ev} line for kind {kind}"))
            .clone()
    };
    let pair_id = by_kind("pair", "span_start").get("span").unwrap().as_f64();
    let inner_start = by_kind("gc.barrier", "span_start");
    let inner_id = inner_start.get("span").unwrap().as_f64();
    assert_eq!(inner_start.get("parent").and_then(Value::as_f64), pair_id);
    assert_eq!(
        by_kind("gc.park", "event")
            .get("parent")
            .and_then(Value::as_f64),
        inner_id
    );
    // After the inner span drops, events re-attach to the outer span.
    assert_eq!(
        by_kind("after.inner", "event")
            .get("parent")
            .and_then(Value::as_f64),
        pair_id
    );
    // Timestamp containment: the inner span's window lies within the outer's.
    let ts = |line: &Value| line.get("ts_us").unwrap().as_f64().unwrap();
    assert!(ts(&inner_start) >= ts(&by_kind("pair", "span_start")));
    assert!(ts(&by_kind("gc.barrier", "span_end")) <= ts(&by_kind("pair", "span_end")));
}

#[test]
fn context_propagates_across_an_explicit_thread_handoff() {
    let _guard = test_lock();
    let lines = capture(|| {
        let _ctx = trace::with_context(Context {
            pair: Some(7),
            pair_name: Some("handoff".into()),
            scheme: None,
            parent: None,
        });
        let race = trace::span("race", &[]);
        let worker_ctx = trace::current_context().with_scheme("G -> G'");
        let handle = std::thread::spawn(move || {
            let _g = trace::with_context(worker_ctx);
            trace::event("scheme.launch", &[]);
        });
        handle.join().unwrap();
        race.end(&[]);
    });
    let launch = lines
        .iter()
        .find(|l| l.get("kind").and_then(Value::as_str) == Some("scheme.launch"))
        .expect("worker emitted its launch event");
    assert_eq!(launch.get("pair").and_then(Value::as_f64), Some(7.0));
    assert_eq!(
        launch.get("scheme").and_then(Value::as_str),
        Some("G -> G'")
    );
    let race_id = lines
        .iter()
        .find(|l| l.get("kind").and_then(Value::as_str) == Some("race"))
        .unwrap()
        .get("span")
        .and_then(Value::as_f64);
    assert_eq!(launch.get("parent").and_then(Value::as_f64), race_id);
    // The worker runs on a different thread and says so.
    let race_thread = lines[0].get("thread").and_then(Value::as_f64);
    assert_ne!(launch.get("thread").and_then(Value::as_f64), race_thread);
}

#[test]
fn disabled_tracing_writes_nothing() {
    let _guard = test_lock();
    // Install a sink to prove the buffer *would* receive output, then
    // uninstall and verify the instrumentation goes quiet.
    let buffer = SharedBuffer::default();
    trace::install_writer(Box::new(buffer.clone()));
    trace::event("while.enabled", &[]);
    trace::uninstall();
    let lines_enabled = buffer.lines().len();
    assert_eq!(lines_enabled, 1);

    assert!(!trace::enabled());
    trace::event("while.disabled", &[("n", 1u64.into())]);
    let span = trace::span("disabled.span", &[]);
    assert_eq!(span.id(), 0);
    drop(span);
    assert_eq!(
        buffer.lines().len(),
        lines_enabled,
        "disabled tracer wrote output"
    );

    // A fresh buffer sees nothing at all from a disabled tracer.
    let untouched = SharedBuffer::default();
    assert!(untouched.is_empty());
}
