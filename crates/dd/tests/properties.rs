//! Property-based tests validating the decision-diagram algebra against
//! straightforward dense linear algebra on small registers.

use dd::{gates, Budget, Complex, Control, DdPackage, GateMatrix, MemoryConfig};
use proptest::prelude::*;

/// A randomly chosen (controlled) single-qubit gate description.
#[derive(Debug, Clone)]
struct RandomGate {
    kind: u8,
    angle: f64,
    target: usize,
    control: Option<(usize, bool)>,
}

impl RandomGate {
    fn matrix(&self) -> GateMatrix {
        match self.kind {
            0 => gates::h(),
            1 => gates::x(),
            2 => gates::y(),
            3 => gates::z(),
            4 => gates::s(),
            5 => gates::t(),
            6 => gates::phase(self.angle),
            7 => gates::rx(self.angle),
            8 => gates::ry(self.angle),
            _ => gates::rz(self.angle),
        }
    }

    fn controls(&self) -> Vec<Control> {
        match self.control {
            Some((q, true)) => vec![Control::pos(q)],
            Some((q, false)) => vec![Control::neg(q)],
            None => vec![],
        }
    }
}

fn random_gate(n_qubits: usize) -> impl Strategy<Value = RandomGate> {
    (
        0u8..10,
        -3.2f64..3.2,
        0..n_qubits,
        proptest::option::of((0..n_qubits, any::<bool>())),
    )
        .prop_map(move |(kind, angle, target, control)| {
            let control = control.filter(|(q, _)| *q != target);
            RandomGate {
                kind,
                angle,
                target,
                control,
            }
        })
}

fn random_circuit(n_qubits: usize, max_len: usize) -> impl Strategy<Value = Vec<RandomGate>> {
    proptest::collection::vec(random_gate(n_qubits), 1..max_len)
}

/// Dense matrix helpers (row-major `Vec<Vec<Complex>>`).
mod dense {
    use super::*;

    pub fn identity(dim: usize) -> Vec<Vec<Complex>> {
        let mut m = vec![vec![Complex::ZERO; dim]; dim];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = Complex::ONE;
        }
        m
    }

    pub fn matmul(a: &[Vec<Complex>], b: &[Vec<Complex>]) -> Vec<Vec<Complex>> {
        let dim = a.len();
        let mut out = vec![vec![Complex::ZERO; dim]; dim];
        for i in 0..dim {
            for k in 0..dim {
                if a[i][k].is_zero() {
                    continue;
                }
                for j in 0..dim {
                    out[i][j] += a[i][k] * b[k][j];
                }
            }
        }
        out
    }

    pub fn matvec(a: &[Vec<Complex>], v: &[Complex]) -> Vec<Complex> {
        let dim = a.len();
        let mut out = vec![Complex::ZERO; dim];
        for (i, out_i) in out.iter_mut().enumerate() {
            for (j, vj) in v.iter().enumerate() {
                *out_i += a[i][j] * *vj;
            }
        }
        out
    }

    /// Full-register matrix of a (controlled) single-qubit gate.
    pub fn gate_matrix(n: usize, g: &super::RandomGate) -> Vec<Vec<Complex>> {
        let dim = 1 << n;
        let u = g.matrix();
        let mut out = vec![vec![Complex::ZERO; dim]; dim];
        #[allow(clippy::needless_range_loop)]
        for col in 0..dim {
            let control_ok = match g.control {
                Some((q, positive)) => (((col >> q) & 1) == 1) == positive,
                None => true,
            };
            if !control_ok {
                out[col][col] += Complex::ONE;
                continue;
            }
            let bit = (col >> g.target) & 1;
            for (row_bit, _) in [0usize, 1].iter().enumerate() {
                let amp = u[row_bit][bit];
                if amp.is_zero() {
                    continue;
                }
                let row = (col & !(1 << g.target)) | (row_bit << g.target);
                out[row][col] += amp;
            }
        }
        out
    }
}

fn approx_vec_eq(a: &[Complex], b: &[Complex]) -> bool {
    a.iter()
        .zip(b.iter())
        .all(|(x, y)| x.approx_eq_with(*y, 1e-8))
}

fn approx_mat_eq(a: &[Vec<Complex>], b: &[Vec<Complex>]) -> bool {
    a.iter().zip(b.iter()).all(|(ra, rb)| approx_vec_eq(ra, rb))
}

const N: usize = 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Simulating a random circuit through decision diagrams agrees with the
    /// dense state-vector simulation.
    #[test]
    fn dd_simulation_matches_dense(circuit in random_circuit(N, 12)) {
        let mut p = DdPackage::new(N);
        let mut state = p.zero_state();
        let mut dense_state = vec![Complex::ZERO; 1 << N];
        dense_state[0] = Complex::ONE;
        for g in &circuit {
            state = p.apply_gate(state, &g.matrix(), g.target, &g.controls());
            let m = dense::gate_matrix(N, g);
            dense_state = dense::matvec(&m, &dense_state);
        }
        let amps = p.amplitudes(state);
        prop_assert!(approx_vec_eq(&amps, &dense_state));
    }

    /// The matrix diagram of a whole circuit equals the dense product of its
    /// gate matrices.
    #[test]
    fn dd_matrix_product_matches_dense(circuit in random_circuit(N, 8)) {
        let mut p = DdPackage::new(N);
        let mut u = p.identity();
        let mut dense_u = dense::identity(1 << N);
        for g in &circuit {
            let gd = p.make_gate(&g.matrix(), g.target, &g.controls());
            u = p.mul_matrices(gd, u);
            dense_u = dense::matmul(&dense::gate_matrix(N, g), &dense_u);
        }
        prop_assert!(approx_mat_eq(&p.to_matrix(u), &dense_u));
    }

    /// U†U is always the identity for circuits of unitary gates.
    #[test]
    fn circuit_unitary_times_adjoint_is_identity(circuit in random_circuit(N, 10)) {
        let mut p = DdPackage::new(N);
        let mut u = p.identity();
        for g in &circuit {
            let gd = p.make_gate(&g.matrix(), g.target, &g.controls());
            u = p.mul_matrices(gd, u);
        }
        let udag = p.conjugate_transpose(u);
        let product = p.mul_matrices(udag, u);
        prop_assert!((p.identity_fidelity(product) - 1.0).abs() < 1e-8);
        prop_assert!(p.is_identity(product, true));
    }

    /// Norm is preserved by unitary evolution.
    #[test]
    fn norm_is_preserved(circuit in random_circuit(N, 12)) {
        let mut p = DdPackage::new(N);
        let mut state = p.zero_state();
        for g in &circuit {
            state = p.apply_gate(state, &g.matrix(), g.target, &g.controls());
        }
        prop_assert!((p.norm_sqr(state) - 1.0).abs() < 1e-8);
    }

    /// Measurement probabilities of each qubit sum to one and match the dense
    /// marginals.
    #[test]
    fn probabilities_match_dense(circuit in random_circuit(N, 10), qubit in 0..N) {
        let mut p = DdPackage::new(N);
        let mut state = p.zero_state();
        let mut dense_state = vec![Complex::ZERO; 1 << N];
        dense_state[0] = Complex::ONE;
        for g in &circuit {
            state = p.apply_gate(state, &g.matrix(), g.target, &g.controls());
            let m = dense::gate_matrix(N, g);
            dense_state = dense::matvec(&m, &dense_state);
        }
        let (p0, p1) = p.probabilities(state, qubit);
        let mut d0 = 0.0;
        let mut d1 = 0.0;
        for (i, amp) in dense_state.iter().enumerate() {
            if (i >> qubit) & 1 == 0 {
                d0 += amp.norm_sqr();
            } else {
                d1 += amp.norm_sqr();
            }
        }
        prop_assert!((p0 - d0).abs() < 1e-8);
        prop_assert!((p1 - d1).abs() < 1e-8);
        prop_assert!((p0 + p1 - 1.0).abs() < 1e-8);
    }

    /// Collapsing onto an outcome yields a normalised state supported only on
    /// that outcome.
    #[test]
    fn collapse_produces_normalised_projection(circuit in random_circuit(N, 10), qubit in 0..N) {
        let mut p = DdPackage::new(N);
        let mut state = p.zero_state();
        for g in &circuit {
            state = p.apply_gate(state, &g.matrix(), g.target, &g.controls());
        }
        let (p0, p1) = p.probabilities(state, qubit);
        for (outcome, prob) in [(false, p0), (true, p1)] {
            let (collapsed, reported) = p.collapse(state, qubit, outcome, true);
            prop_assert!((reported - prob).abs() < 1e-8);
            if prob > 1e-9 {
                prop_assert!((p.norm_sqr(collapsed) - 1.0).abs() < 1e-8);
                let amps = p.amplitudes(collapsed);
                for (i, amp) in amps.iter().enumerate() {
                    let bit = (i >> qubit) & 1 == 1;
                    if bit != outcome {
                        prop_assert!(amp.abs() < 1e-9);
                    }
                }
            }
        }
    }

    /// Vector addition is commutative and matches dense addition.
    #[test]
    fn vector_addition_is_commutative(c1 in random_circuit(N, 8), c2 in random_circuit(N, 8)) {
        let mut p = DdPackage::new(N);
        let mut a = p.zero_state();
        for g in &c1 {
            a = p.apply_gate(a, &g.matrix(), g.target, &g.controls());
        }
        let mut b = p.zero_state();
        for g in &c2 {
            b = p.apply_gate(b, &g.matrix(), g.target, &g.controls());
        }
        let ab = p.add_vectors(a, b);
        let ba = p.add_vectors(b, a);
        let amps_ab = p.amplitudes(ab);
        let amps_ba = p.amplitudes(ba);
        prop_assert!(approx_vec_eq(&amps_ab, &amps_ba));
        let amps_a = p.amplitudes(a);
        let amps_b = p.amplitudes(b);
        let expected: Vec<Complex> = amps_a.iter().zip(amps_b.iter()).map(|(x, y)| *x + *y).collect();
        prop_assert!(approx_vec_eq(&amps_ab, &expected));
    }

    /// The inner product is conjugate-symmetric and bounded by one for
    /// normalised states.
    #[test]
    fn inner_product_properties(c1 in random_circuit(N, 8), c2 in random_circuit(N, 8)) {
        let mut p = DdPackage::new(N);
        let mut a = p.zero_state();
        for g in &c1 {
            a = p.apply_gate(a, &g.matrix(), g.target, &g.controls());
        }
        let mut b = p.zero_state();
        for g in &c2 {
            b = p.apply_gate(b, &g.matrix(), g.target, &g.controls());
        }
        let ab = p.inner_product(a, b);
        let ba = p.inner_product(b, a);
        prop_assert!(ab.approx_eq_with(ba.conj(), 1e-8));
        prop_assert!(p.fidelity(a, b) <= 1.0 + 1e-8);
        prop_assert!((p.fidelity(a, a) - 1.0).abs() < 1e-8);
    }

    /// Interning merges numerically identical values regardless of the
    /// construction route.
    #[test]
    fn intern_is_stable(re in -1.0f64..1.0, im in -1.0f64..1.0) {
        let mut p = DdPackage::new(1);
        let a = p.intern(Complex::new(re, im));
        let b = p.intern(Complex::new(re, im));
        prop_assert_eq!(a, b);
    }

    /// Garbage collection preserves canonicity: after protecting the final
    /// state and collecting, re-interning the same circuit (through recycled
    /// arena slots) reproduces the *identical* edge, and the amplitudes
    /// match an untouched package's.
    #[test]
    fn gc_preserves_canonicity(circuit in random_circuit(N, 12)) {
        let mut p = DdPackage::new(N);
        let mut state = p.zero_state();
        for g in &circuit {
            state = p.apply_gate(state, &g.matrix(), g.target, &g.controls());
        }
        p.protect_vector(state);
        p.garbage_collect();
        let mut rebuilt = p.zero_state();
        for g in &circuit {
            rebuilt = p.apply_gate(rebuilt, &g.matrix(), g.target, &g.controls());
        }
        prop_assert_eq!(state, rebuilt);

        let mut reference = DdPackage::new(N);
        let mut ref_state = reference.zero_state();
        for g in &circuit {
            ref_state = reference.apply_gate(ref_state, &g.matrix(), g.target, &g.controls());
        }
        prop_assert!(approx_vec_eq(&p.amplitudes(state), &reference.amplitudes(ref_state)));
    }

    /// Lossy compute-table eviction never changes results: a package whose
    /// caches are at the minimum size (maximum eviction pressure) computes
    /// the same amplitudes as one with default-sized caches.
    #[test]
    fn lossy_eviction_preserves_results(circuit in random_circuit(N, 12)) {
        let tiny = MemoryConfig {
            binary_cache_bits: 1,
            unary_cache_bits: 1,
            gate_cache_bits: 1,
            gc_threshold: None,
            ..MemoryConfig::default()
        };
        let mut small = DdPackage::with_config(N, Budget::unlimited(), tiny);
        let mut large = DdPackage::new(N);
        let mut small_state = small.zero_state();
        let mut large_state = large.zero_state();
        for g in &circuit {
            small_state = small.apply_gate(small_state, &g.matrix(), g.target, &g.controls());
            large_state = large.apply_gate(large_state, &g.matrix(), g.target, &g.controls());
        }
        prop_assert!(approx_vec_eq(&small.amplitudes(small_state), &large.amplitudes(large_state)));
        prop_assert!((small.norm_sqr(small_state) - 1.0).abs() < 1e-8);
    }
}

/// Regression: a long repeated-gate circuit's peak node count stays bounded
/// with GC enabled, at least 4x below the unbounded no-GC arena.
#[test]
fn repeated_gate_circuit_peak_nodes_stay_bounded() {
    const QUBITS: usize = 8;
    const ROUNDS: usize = 60;
    let run = |gc_threshold: Option<usize>| {
        let config = MemoryConfig {
            gc_threshold,
            ..Default::default()
        };
        let mut p = DdPackage::with_config(QUBITS, Budget::unlimited(), config);
        let mut state = p.zero_state();
        for q in 0..QUBITS {
            state = p.apply_gate(state, &gates::h(), q, &[]);
        }
        for round in 0..ROUNDS {
            for q in 1..QUBITS {
                let angle = 0.1 + 0.37 * (round * QUBITS + q) as f64;
                state = p.apply_gate(state, &gates::phase(angle), q, &[Control::pos(q - 1)]);
                state = p.apply_gate(state, &gates::ry(angle), q, &[]);
            }
        }
        assert!((p.norm_sqr(state) - 1.0).abs() < 1e-8);
        p.memory_stats()
    };
    let without_gc = run(None);
    let with_gc = run(Some(2048));
    assert_eq!(without_gc.gc_runs, 0);
    assert!(with_gc.gc_runs > 0, "threshold should have triggered GC");
    assert!(
        with_gc.peak_nodes * 4 <= without_gc.peak_nodes,
        "GC peak {} should be at least 4x below the no-GC peak {}",
        with_gc.peak_nodes,
        without_gc.peak_nodes
    );
}

// ---------------------------------------------------------------------
// Batched interning parity
// ---------------------------------------------------------------------

/// A value jittered around a bucket-grid corner: `jr`/`ji` in `(-1, 1)`
/// place it up to one full bucket away from the corner in each component,
/// the adversarial zone where the scalar probe's neighbour-bucket search
/// and tolerance merge decisions all fire.
fn boundary_value(kr: i64, ki: i64, jr: f64, ji: f64) -> Complex {
    Complex::new(
        0.5 + (kr as f64 + jr) * dd::TOLERANCE,
        0.25 + (ki as f64 + ji) * dd::TOLERANCE,
    )
}

/// Interns `values` one-by-one in a fresh table (the scalar reference) and
/// as chunked batches in another, asserting identical index sequences and
/// identical final table sizes.
fn assert_batch_matches_scalar(values: &[Complex], chunk: usize) {
    let mut scalar_table = dd::ComplexTable::new();
    let want: Vec<dd::CIdx> = values.iter().map(|&v| scalar_table.lookup(v)).collect();
    let mut batch_table = dd::ComplexTable::new();
    let mut got = Vec::new();
    for part in values.chunks(chunk.max(1)) {
        batch_table.lookup_batch(part, &mut got);
    }
    assert_eq!(got, want, "batched CIdx sequence diverged from scalar");
    assert_eq!(
        batch_table.len(),
        scalar_table.len(),
        "batched interning created a different number of slots"
    );
}

proptest! {
    /// `lookup_batch` returns exactly the index sequence the scalar
    /// `lookup` loop produces on random inputs, for any batch chunking.
    #[test]
    fn batch_interning_matches_scalar_random(
        raw in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 1..200),
        chunk in 1usize..64,
    ) {
        let values: Vec<Complex> = raw.into_iter().map(|(re, im)| Complex::new(re, im)).collect();
        assert_batch_matches_scalar(&values, chunk);
    }

    /// Same parity on adversarial inputs: clusters of values straddling
    /// bucket-grid boundaries within (and just outside) the merge
    /// tolerance, where first-match order decides which index wins.
    #[test]
    fn batch_interning_matches_scalar_near_bucket_boundaries(
        corners in proptest::collection::vec((-40i64..40, -40i64..40), 1..8),
        jitters in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..64),
        chunk in 1usize..32,
    ) {
        let mut values = Vec::new();
        for &(kr, ki) in &corners {
            for &(jr, ji) in &jitters {
                values.push(boundary_value(kr, ki, jr, ji));
            }
        }
        assert_batch_matches_scalar(&values, chunk);
    }
}

/// Deterministic adversarial cases: exact-boundary offsets (differences of
/// exactly one tolerance, which must NOT merge under the strict `<`
/// predicate) and repeats interleaved with near-misses.
#[test]
fn batch_interning_exact_boundary_cases() {
    let t = dd::TOLERANCE;
    let values = vec![
        Complex::real(0.5),
        Complex::real(0.5 + t),       // exactly one tolerance away: distinct
        Complex::real(0.5 + 0.5 * t), // within tolerance of both neighbours
        Complex::real(0.5 - 0.5 * t),
        Complex::new(0.5, t),
        Complex::new(0.5, 0.999 * t),
        Complex::ZERO,
        Complex::new(0.4 * t, 0.0), // inside the zero shortcut's tolerance
        Complex::ONE,
        Complex::new(1.0 + 0.4 * t, 0.0),
        Complex::real(0.5), // repeat of the first entry
    ];
    for chunk in [1, 2, 3, values.len()] {
        assert_batch_matches_scalar(&values, chunk);
    }
}
