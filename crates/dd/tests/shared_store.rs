//! Threaded stress tests of the shared decision-diagram store: several
//! workspaces interning overlapping QFT/QPE gate sequences concurrently must
//! agree on *pointer-identical* canonical edges, and a final collection once
//! the racers detach must leave the store clean and consistent.

use dd::{gates, Control, DdPackage, MEdge, SharedStore, VEdge};
use std::sync::Arc;

const QUBITS: usize = 8;

/// A QFT-style state preparation: Hadamards plus the controlled-phase
/// ladder. Every thread builds the identical sequence, so every intermediate
/// node and gate diagram overlaps across threads.
fn qft_state(package: &mut DdPackage) -> VEdge {
    let mut state = package.zero_state();
    for j in (0..QUBITS).rev() {
        state = package.apply_gate(state, &gates::h(), j, &[]);
        for k in 0..j {
            let angle = std::f64::consts::PI / (1u64 << (j - k)) as f64;
            state = package.apply_gate(state, &gates::phase(angle), j, &[Control::pos(k)]);
        }
    }
    state
}

/// A QPE-style controlled-rotation block as a matrix diagram.
fn qpe_gate_block(package: &mut DdPackage) -> MEdge {
    let mut block = package.identity();
    for q in 1..QUBITS {
        let angle = 3.0 * std::f64::consts::PI / (1u64 << q) as f64;
        let gate = package.make_gate(&gates::phase(angle), q, &[Control::pos(0)]);
        block = package.mul_matrices(gate, block);
    }
    block
}

#[test]
fn concurrent_interning_yields_pointer_identical_edges() {
    let store = SharedStore::new();
    let threads = 6;

    let results: Vec<(VEdge, MEdge, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    let mut workspace = store.workspace(QUBITS);
                    let state = qft_state(&mut workspace);
                    let block = qpe_gate_block(&mut workspace);
                    let norm = workspace.norm_sqr(state);
                    (state, block, norm)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    // Canonicity across threads: every workspace ended up with the *same*
    // (NodeId, CIdx) handles, not merely equivalent diagrams.
    let (first_state, first_block, _) = results[0];
    for (state, block, norm) in &results {
        assert_eq!(*state, first_state, "state edges diverged across threads");
        assert_eq!(*block, first_block, "gate blocks diverged across threads");
        assert!((norm - 1.0).abs() < 1e-9, "norm drifted: {norm}");
    }

    let stats = store.stats();
    assert_eq!(stats.attached, 0, "all workspaces detached");
    assert!(
        stats.cross_thread_hits > 0,
        "overlapping sequences must share nodes across threads: {stats:?}"
    );
    assert!(stats.cross_thread_hit_rate().unwrap() > 0.0);
    // Sharing bound: the store holds one copy of the common structure, far
    // fewer nodes than the sum of six private packages would.
    assert!(
        (stats.allocated_nodes as usize) < threads * stats.peak_nodes,
        "allocations should be sublinear in the thread count: {stats:?}"
    );
}

#[test]
fn final_collection_after_detach_is_clean() {
    let store = SharedStore::new();

    // Race a few workspaces, then drop them all.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                let mut workspace = store.workspace(QUBITS);
                let state = qft_state(&mut workspace);
                workspace.norm_sqr(state)
            });
        }
    });
    let before = store.stats();
    assert!(before.live_nodes > 0);

    // A sole fresh workspace may collect: with no protected roots, the
    // whole race's heap is garbage (minus the shared gate cache's diagrams).
    let mut collector = store.workspace(QUBITS);
    let reclaimed = collector.garbage_collect();
    assert!(reclaimed > 0, "the race's heap should be collectable");
    let after = store.stats();
    assert!(after.live_nodes < before.live_nodes);
    assert_eq!(after.gc_runs, 1);

    // The store stays fully usable: rebuilding the same sequence yields a
    // normalised state again, and a rebuilt diagram is self-consistent.
    let rebuilt = qft_state(&mut collector);
    assert!((collector.norm_sqr(rebuilt) - 1.0).abs() < 1e-9);
    let again = qft_state(&mut collector);
    assert_eq!(rebuilt, again, "post-GC interning lost canonicity");
    // Compaction telemetry: the collection reclaimed complex entries too.
    assert!(collector.memory_stats().complex_reclaimed > 0);
}

#[test]
fn collection_falls_back_to_deferral_when_a_racer_never_parks() {
    let store = SharedStore::new();
    let mut a = store.workspace(QUBITS);
    let _b = store.workspace(QUBITS);
    let state = qft_state(&mut a);
    a.protect_vector(state);
    // Two workspaces attached but `_b` never executes an operation, so it
    // never reaches a safe point: the barrier request must time out and
    // fall back to deferral — nothing is reclaimed, nothing deadlocks and
    // the diagram stays intact.
    assert_eq!(a.garbage_collect(), 0);
    let deferred = store.stats();
    assert_eq!(deferred.gc_barrier_runs, 0);
    // The fallback is no longer silent: every BARRIER_PATIENCE timeout is
    // counted, so the batch report can attribute "GC never ran" stalls.
    assert_eq!(
        deferred.barrier_deferrals, 1,
        "a patience timeout must be recorded: {deferred:?}"
    );
    // The aborted round still cost the collector its patience wait; that
    // time is barrier wait time, not free.
    assert!(
        deferred.barrier_wait_ns >= 50_000_000,
        "the collector's abandoned wait must be accounted: {deferred:?}"
    );
    assert!((a.norm_sqr(state) - 1.0).abs() < 1e-9);
    drop(_b);
    // Sole attachment: collection proceeds; the protected state survives.
    assert!(a.garbage_collect() > 0);
    assert!((a.norm_sqr(state) - 1.0).abs() < 1e-9);
    assert_eq!(
        store.stats().barrier_deferrals,
        1,
        "a successful collection must not add deferrals"
    );
}

#[test]
fn barrier_collection_runs_mid_race_and_preserves_parked_diagrams() {
    use dd::{Budget, MemoryConfig};
    let store = SharedStore::new();
    let threads = 4;
    // A threshold low enough that the racers' churn trips it while all of
    // them are still attached and polling safe points.
    let config = MemoryConfig {
        gc_threshold: Some(1_500),
        ..MemoryConfig::default()
    };
    let go = std::sync::Barrier::new(threads);

    let results: Vec<VEdge> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let store = Arc::clone(&store);
                let go = &go;
                scope.spawn(move || {
                    let mut ws = store.workspace_with(QUBITS, Budget::unlimited(), config);
                    // Every thread protects the identical reference diagram…
                    let reference = qft_state(&mut ws);
                    ws.protect_vector(reference);
                    go.wait();
                    // …then churns through garbage states: the gate angles
                    // differ per round, so fresh nodes keep piling up until
                    // someone's threshold requests a barrier collection
                    // while everyone is attached and mid-race.
                    let mut state = ws.zero_state();
                    for round in 0..160u32 {
                        for q in 0..QUBITS {
                            let angle = 0.13 + (round as usize * QUBITS + q) as f64;
                            state = ws.apply_gate(state, &gates::ry(angle), q, &[]);
                        }
                        // The protected reference must survive every
                        // collection pointer-identically.
                        assert!(
                            (ws.norm_sqr(reference) - 1.0).abs() < 1e-9,
                            "protected diagram damaged in round {round}"
                        );
                    }
                    // Re-interning the reference sequence after the barrier
                    // collections must reproduce the identical edge.
                    let rebuilt = qft_state(&mut ws);
                    assert_eq!(rebuilt, reference, "post-barrier canonicity lost");
                    reference
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("racer panicked"))
            .collect()
    });

    // Pointer-identical canonical edges across every parked workspace.
    for state in &results {
        assert_eq!(*state, results[0], "reference edges diverged");
    }
    let stats = store.stats();
    assert!(
        stats.gc_barrier_runs >= 1,
        "the race should have collected at a barrier: {stats:?}"
    );
    assert!(stats.reclaimed_nodes > 0, "{stats:?}");
}

#[test]
fn node_budgets_stay_per_workspace_on_a_shared_store() {
    use dd::{Budget, LimitExceeded, MemoryConfig};
    // Fill the store with one unbudgeted workspace, then attach a tightly
    // budgeted one: hits on existing canonical nodes must cost it nothing,
    // so the identical (fully shared) sequence fits in a tiny budget...
    let store = SharedStore::new();
    let mut filler = store.workspace(QUBITS);
    let warm = qft_state(&mut filler);
    filler.protect_vector(warm);

    let budget = Budget::unlimited().with_node_limit(64);
    let mut frugal = store.workspace_with(QUBITS, budget.clone(), MemoryConfig::default());
    let state = qft_state(&mut frugal);
    assert_eq!(frugal.limit_exceeded(), None, "shared hits must be free");
    assert_eq!(state, warm);

    // ...while a workspace forced to allocate fresh structure still trips
    // its own per-workspace limit.
    let mut fresh = store.workspace_with(QUBITS, budget, MemoryConfig::default());
    let mut state = fresh.zero_state();
    for round in 0..32 {
        for q in 0..QUBITS {
            let angle = 0.17 + (round * QUBITS + q) as f64;
            state = fresh.apply_gate(state, &gates::ry(angle), q, &[]);
        }
        if fresh.limit_exceeded().is_some() {
            break;
        }
    }
    assert_eq!(fresh.limit_exceeded(), Some(LimitExceeded::NodeLimit));
}

#[test]
fn snapshot_reads_keep_mirror_invalidations_at_zero_under_gc_pressure() {
    use dd::{Budget, MemoryConfig};
    // The epoch-snapshot acceptance stress: racers churn hard enough to
    // force repeated mid-race barrier collections, every one of which used
    // to flush each workspace's read mirror. Under epoch pins there is no
    // mirror left to flush — workspaces re-pin the freshly published
    // generation instead — so the invalidation counter must stay exactly
    // zero no matter how many collections run.
    let store = SharedStore::new();
    let threads = 4;
    let config = MemoryConfig {
        gc_threshold: Some(1_500),
        ..MemoryConfig::default()
    };
    let go = std::sync::Barrier::new(threads);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let store = Arc::clone(&store);
            let go = &go;
            scope.spawn(move || {
                let mut ws = store.workspace_with(QUBITS, Budget::unlimited(), config);
                let reference = qft_state(&mut ws);
                ws.protect_vector(reference);
                go.wait();
                let mut state = ws.zero_state();
                for round in 0..120u32 {
                    for q in 0..QUBITS {
                        let angle = 0.29 + (round as usize * QUBITS + q) as f64;
                        state = ws.apply_gate(state, &gates::ry(angle), q, &[]);
                    }
                    assert!((ws.norm_sqr(reference) - 1.0).abs() < 1e-9);
                }
            });
        }
    });

    let stats = store.stats();
    assert!(
        stats.gc_runs >= 1,
        "the churn must actually trigger collections: {stats:?}"
    );
    assert_eq!(
        stats.mirror_invalidations, 0,
        "epoch-snapshot reads must never invalidate a mirror: {stats:?}"
    );
    // Every completed shared collection retires the superseded generation…
    assert_eq!(
        stats.retired_generations, stats.gc_runs as u64,
        "each collection publishes (and thus retires) one generation: {stats:?}"
    );
    // …and every workspace pinned once at attach plus once per collection
    // it crossed, so pins strictly exceed the attach count.
    assert!(
        stats.epoch_pins > threads as u64,
        "collections crossed mid-race must show up as re-pins: {stats:?}"
    );
}

#[test]
fn protected_edges_stay_pointer_identical_across_a_snapshot_swap() {
    // A collection publishes a new generation (snapshot swap) while the
    // survivors keep their arena slots: the protected edge held from before
    // the swap must stay valid *as the same (NodeId, CIdx) handle*, reads
    // through the new pin must produce bit-identical amplitudes, and
    // re-interning the sequence must find the surviving nodes instead of
    // rebuilding them.
    let store = SharedStore::new();
    let mut ws = store.workspace(QUBITS);
    let state = qft_state(&mut ws);
    ws.protect_vector(state);
    let norm_before = ws.norm_sqr(state);
    let amplitude_before = ws.amplitude(state, 0);

    // Churn garbage so the sweep has something to reclaim, then collect:
    // sole attachment, so this sweeps immediately and swaps the snapshot.
    let mut garbage = ws.zero_state();
    for q in 0..QUBITS {
        garbage = ws.apply_gate(garbage, &gates::ry(0.37 + q as f64), q, &[]);
    }
    let reclaimed = ws.garbage_collect();
    assert!(reclaimed > 0, "the garbage state should be collectable");
    assert_eq!(store.stats().retired_generations, 1);

    // Same handle, same values — the swap moved the snapshot, not the edge.
    assert_eq!(ws.norm_sqr(state).to_bits(), norm_before.to_bits());
    assert_eq!(
        ws.amplitude(state, 0).re.to_bits(),
        amplitude_before.re.to_bits()
    );
    let rebuilt = qft_state(&mut ws);
    assert_eq!(
        rebuilt, state,
        "survivors must be found pointer-identically after the swap"
    );
    drop(ws);
    assert_eq!(store.stats().mirror_invalidations, 0);
    // One attach pin plus at least the collection's re-pin.
    assert!(store.stats().epoch_pins >= 2, "{:?}", store.stats());
}

mod pinned_reads_property {
    use super::*;
    use dd::VEdge;
    use proptest::prelude::*;

    /// Random single-qubit rotation walks: enough variety to populate the
    /// store differently every case, cheap enough to run many cases.
    fn walk(max_len: usize) -> impl Strategy<Value = Vec<(usize, f64)>> {
        proptest::collection::vec((0..QUBITS, -3.0f64..3.0), 1..max_len)
    }

    fn build(ws: &mut DdPackage, ops: &[(usize, f64)]) -> VEdge {
        let mut state = ws.zero_state();
        for &(q, angle) in ops {
            state = ws.apply_gate(state, &gates::ry(angle), q, &[]);
        }
        state
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Epoch-pinned reads never observe a reclaimed generation: across
        /// arbitrary build/collect interleavings, a protected diagram read
        /// through its workspace's pin keeps returning bit-identical
        /// amplitudes, and a workspace attaching *after* the swap (pinned
        /// to the new generation) reproduces the identical canonical edge.
        /// A read escaping into a reclaimed slot would surface as a NaN
        /// weight, a freed node or a diverged edge — all asserted against.
        #[test]
        fn pinned_reads_never_observe_a_reclaimed_generation(
            kept in walk(24),
            garbage in proptest::collection::vec(walk(16), 1..4),
        ) {
            let store = SharedStore::new();
            let mut ws = store.workspace(QUBITS);
            let reference = build(&mut ws, &kept);
            ws.protect_vector(reference);
            let norm = ws.norm_sqr(reference);
            prop_assert!(norm.is_finite());

            // Interleave garbage churn with collections; every collection
            // retires the pinned generation and recycles freed slots.
            for ops in &garbage {
                let _ = build(&mut ws, ops);
                ws.garbage_collect();
                prop_assert_eq!(ws.norm_sqr(reference).to_bits(), norm.to_bits());
                let rebuilt = build(&mut ws, &kept);
                prop_assert_eq!(rebuilt, reference);
            }
            drop(ws);

            let stats = store.stats();
            prop_assert_eq!(stats.mirror_invalidations, 0);
            prop_assert_eq!(stats.retired_generations, garbage.len() as u64);

            // A late workspace pins the *current* generation and must see
            // exactly the canonical survivors, never a recycled slot.
            let mut late = store.workspace(QUBITS);
            let rebuilt = build(&mut late, &kept);
            prop_assert_eq!(rebuilt, reference);
            prop_assert_eq!(late.norm_sqr(rebuilt).to_bits(), norm.to_bits());
        }
    }
}

#[test]
fn workspaces_of_different_sizes_share_low_level_structure() {
    // A miter-sized workspace and a wider reconstruction workspace share
    // the store: identical low-level gate diagrams intern to the same edge.
    let store = SharedStore::new();
    let mut small = store.workspace(4);
    let gate_small = small.make_gate(&gates::h(), 1, &[Control::pos(0)]);
    drop(small);
    let mut wide = store.workspace(6);
    // Same gate in the lower levels of a wider register: the wrapped levels
    // above differ, but the shared store still serves the common subpart —
    // observable as cross-thread hits once both workspaces are gone.
    let state = wide.zero_state();
    let state = wide.apply_gate(state, &gates::h(), 1, &[Control::pos(0)]);
    assert!((wide.norm_sqr(state) - 1.0).abs() < 1e-12);
    drop(wide);
    let stats = store.stats();
    assert!(stats.cross_thread_hits > 0, "{stats:?}");
    // The 4-qubit gate diagram itself is still canonical and reusable.
    let mut third = store.workspace(4);
    assert_eq!(
        third.make_gate(&gates::h(), 1, &[Control::pos(0)]),
        gate_small
    );
}
