//! Data-parallel kernels over structure-of-arrays complex lanes.
//!
//! The decision-diagram hot paths (dense terminal-case apply, batched weight
//! interning, dense inner products) operate on complex vectors stored as two
//! separate `f64` lanes (`re`, `im`) — the structure-of-arrays layout the
//! [`ComplexTable`](crate::ComplexTable) itself uses. This module provides
//! the batched arithmetic over those lanes with two backends:
//!
//! * **AVX2 intrinsics** (4 × `f64` per vector register), selected at
//!   runtime via `is_x86_feature_detected!("avx2")`;
//! * an **autovectorizable scalar fallback**, always compiled, and forced by
//!   building the `dd` crate with the `scalar-kernels` cargo feature.
//!
//! The backend is resolved once per process by [`backend`]; the choice is
//! recorded in the `obs` metrics (`dd.kernels.backend_avx2` /
//! `dd.kernels.backend_scalar`) and as a `kernels.backend` trace event, so
//! traces and bench reports say which kernel actually ran.
//!
//! **Bit parity.** Both backends evaluate the same expression tree per lane
//! (no FMA contraction) and the reductions use the same fixed four-
//! accumulator association, so a computation produces bit-identical results
//! under either backend. Tests and the CI kernel-bench smoke assert this —
//! it is what makes equivalence verdicts independent of the machine the
//! check ran on.

use crate::complex::Complex;
use std::sync::OnceLock;

/// Which kernel implementation [`backend`] resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// AVX2 intrinsics, 4 double lanes per operation.
    Avx2,
    /// The autovectorizable scalar fallback.
    Scalar,
}

impl Backend {
    /// Stable lower-case name (`"avx2"` / `"scalar"`), used in traces and
    /// bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Avx2 => "avx2",
            Backend::Scalar => "scalar",
        }
    }
}

/// The kernel backend used by this process, resolved once.
///
/// `scalar-kernels` builds always resolve to [`Backend::Scalar`]; otherwise
/// AVX2 is used when the CPU supports it. The first call records the choice
/// in the `obs` metrics and emits a `kernels.backend` trace event.
pub fn backend() -> Backend {
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(|| {
        let chosen = detect();
        match chosen {
            Backend::Avx2 => obs::metrics::incr(obs::metrics::DD_KERNEL_BACKEND_AVX2),
            Backend::Scalar => obs::metrics::incr(obs::metrics::DD_KERNEL_BACKEND_SCALAR),
        }
        obs::trace::event("kernels.backend", &[("backend", chosen.name().into())]);
        chosen
    })
}

#[cfg(feature = "scalar-kernels")]
fn detect() -> Backend {
    Backend::Scalar
}

#[cfg(not(feature = "scalar-kernels"))]
fn detect() -> Backend {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Backend::Avx2;
        }
    }
    Backend::Scalar
}

/// Asserts that every lane slice of one kernel call has the same length.
macro_rules! check_lanes {
    ($first:expr $(, $rest:expr)*) => {
        let n = $first.len();
        $(debug_assert_eq!($rest.len(), n, "kernel lane length mismatch");)*
        let _ = n;
    };
}

// ---------------------------------------------------------------------
// Batched complex multiply: out = a * b, lane-wise
// ---------------------------------------------------------------------

/// `out[i] = a[i] * b[i]` over complex lanes, dispatched backend.
pub fn mul_lanes(ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64], or: &mut [f64], oi: &mut [f64]) {
    check_lanes!(ar, ai, br, bi, or, oi);
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { mul_lanes_avx2(ar, ai, br, bi, or, oi) },
        _ => mul_lanes_scalar(ar, ai, br, bi, or, oi),
    }
}

/// The scalar fallback of [`mul_lanes`] (public so benches can compare
/// backends on the same machine).
pub fn mul_lanes_scalar(
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    or: &mut [f64],
    oi: &mut [f64],
) {
    for i in 0..ar.len() {
        or[i] = ar[i] * br[i] - ai[i] * bi[i];
        oi[i] = ar[i] * bi[i] + ai[i] * br[i];
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mul_lanes_avx2(
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    or: &mut [f64],
    oi: &mut [f64],
) {
    use std::arch::x86_64::*;
    let n = ar.len();
    let mut i = 0;
    // Two independent 4-lane blocks per iteration: the second block's loads
    // don't wait on the first block's stores, which matters more than width
    // on this port-limited (4 loads + 2 stores per 4 lanes) kernel.
    while i + 8 <= n {
        let are0 = _mm256_loadu_pd(ar.as_ptr().add(i));
        let aim0 = _mm256_loadu_pd(ai.as_ptr().add(i));
        let bre0 = _mm256_loadu_pd(br.as_ptr().add(i));
        let bim0 = _mm256_loadu_pd(bi.as_ptr().add(i));
        let are1 = _mm256_loadu_pd(ar.as_ptr().add(i + 4));
        let aim1 = _mm256_loadu_pd(ai.as_ptr().add(i + 4));
        let bre1 = _mm256_loadu_pd(br.as_ptr().add(i + 4));
        let bim1 = _mm256_loadu_pd(bi.as_ptr().add(i + 4));
        let re0 = _mm256_sub_pd(_mm256_mul_pd(are0, bre0), _mm256_mul_pd(aim0, bim0));
        let im0 = _mm256_add_pd(_mm256_mul_pd(are0, bim0), _mm256_mul_pd(aim0, bre0));
        let re1 = _mm256_sub_pd(_mm256_mul_pd(are1, bre1), _mm256_mul_pd(aim1, bim1));
        let im1 = _mm256_add_pd(_mm256_mul_pd(are1, bim1), _mm256_mul_pd(aim1, bre1));
        _mm256_storeu_pd(or.as_mut_ptr().add(i), re0);
        _mm256_storeu_pd(oi.as_mut_ptr().add(i), im0);
        _mm256_storeu_pd(or.as_mut_ptr().add(i + 4), re1);
        _mm256_storeu_pd(oi.as_mut_ptr().add(i + 4), im1);
        i += 8;
    }
    while i + 4 <= n {
        let are = _mm256_loadu_pd(ar.as_ptr().add(i));
        let aim = _mm256_loadu_pd(ai.as_ptr().add(i));
        let bre = _mm256_loadu_pd(br.as_ptr().add(i));
        let bim = _mm256_loadu_pd(bi.as_ptr().add(i));
        let re = _mm256_sub_pd(_mm256_mul_pd(are, bre), _mm256_mul_pd(aim, bim));
        let im = _mm256_add_pd(_mm256_mul_pd(are, bim), _mm256_mul_pd(aim, bre));
        _mm256_storeu_pd(or.as_mut_ptr().add(i), re);
        _mm256_storeu_pd(oi.as_mut_ptr().add(i), im);
        i += 4;
    }
    while i < n {
        or[i] = ar[i] * br[i] - ai[i] * bi[i];
        oi[i] = ar[i] * bi[i] + ai[i] * br[i];
        i += 1;
    }
}

// ---------------------------------------------------------------------
// Batched complex add: out = a + b, lane-wise
// ---------------------------------------------------------------------

/// `out[i] = a[i] + b[i]` over complex lanes, dispatched backend.
pub fn add_lanes(ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64], or: &mut [f64], oi: &mut [f64]) {
    check_lanes!(ar, ai, br, bi, or, oi);
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { add_lanes_avx2(ar, ai, br, bi, or, oi) },
        _ => add_lanes_scalar(ar, ai, br, bi, or, oi),
    }
}

/// The scalar fallback of [`add_lanes`].
pub fn add_lanes_scalar(
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    or: &mut [f64],
    oi: &mut [f64],
) {
    for i in 0..ar.len() {
        or[i] = ar[i] + br[i];
        oi[i] = ai[i] + bi[i];
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn add_lanes_avx2(
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    or: &mut [f64],
    oi: &mut [f64],
) {
    use std::arch::x86_64::*;
    let n = ar.len();
    let mut i = 0;
    while i + 4 <= n {
        let re = _mm256_add_pd(
            _mm256_loadu_pd(ar.as_ptr().add(i)),
            _mm256_loadu_pd(br.as_ptr().add(i)),
        );
        let im = _mm256_add_pd(
            _mm256_loadu_pd(ai.as_ptr().add(i)),
            _mm256_loadu_pd(bi.as_ptr().add(i)),
        );
        _mm256_storeu_pd(or.as_mut_ptr().add(i), re);
        _mm256_storeu_pd(oi.as_mut_ptr().add(i), im);
        i += 4;
    }
    while i < n {
        or[i] = ar[i] + br[i];
        oi[i] = ai[i] + bi[i];
        i += 1;
    }
}

// ---------------------------------------------------------------------
// Batched complex divide: out = a / b, lane-wise
// ---------------------------------------------------------------------

/// `out[i] = a[i] / b[i]` over complex lanes, dispatched backend.
///
/// Uses the direct `(a · conj b) / |b|²` form in both backends (bit parity
/// between backends, not with the scalar [`Complex`] `Div` operator).
pub fn div_lanes(ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64], or: &mut [f64], oi: &mut [f64]) {
    check_lanes!(ar, ai, br, bi, or, oi);
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { div_lanes_avx2(ar, ai, br, bi, or, oi) },
        _ => div_lanes_scalar(ar, ai, br, bi, or, oi),
    }
}

/// The scalar fallback of [`div_lanes`].
pub fn div_lanes_scalar(
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    or: &mut [f64],
    oi: &mut [f64],
) {
    for i in 0..ar.len() {
        let d = br[i] * br[i] + bi[i] * bi[i];
        or[i] = (ar[i] * br[i] + ai[i] * bi[i]) / d;
        oi[i] = (ai[i] * br[i] - ar[i] * bi[i]) / d;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn div_lanes_avx2(
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    or: &mut [f64],
    oi: &mut [f64],
) {
    use std::arch::x86_64::*;
    let n = ar.len();
    let mut i = 0;
    while i + 4 <= n {
        let are = _mm256_loadu_pd(ar.as_ptr().add(i));
        let aim = _mm256_loadu_pd(ai.as_ptr().add(i));
        let bre = _mm256_loadu_pd(br.as_ptr().add(i));
        let bim = _mm256_loadu_pd(bi.as_ptr().add(i));
        let d = _mm256_add_pd(_mm256_mul_pd(bre, bre), _mm256_mul_pd(bim, bim));
        let re = _mm256_div_pd(
            _mm256_add_pd(_mm256_mul_pd(are, bre), _mm256_mul_pd(aim, bim)),
            d,
        );
        let im = _mm256_div_pd(
            _mm256_sub_pd(_mm256_mul_pd(aim, bre), _mm256_mul_pd(are, bim)),
            d,
        );
        _mm256_storeu_pd(or.as_mut_ptr().add(i), re);
        _mm256_storeu_pd(oi.as_mut_ptr().add(i), im);
        i += 4;
    }
    while i < n {
        let d = br[i] * br[i] + bi[i] * bi[i];
        or[i] = (ar[i] * br[i] + ai[i] * bi[i]) / d;
        oi[i] = (ai[i] * br[i] - ar[i] * bi[i]) / d;
        i += 1;
    }
}

// ---------------------------------------------------------------------
// Batched conjugate: out = conj(a), lane-wise
// ---------------------------------------------------------------------

/// `out[i] = conj(a[i])` over complex lanes, dispatched backend.
pub fn conj_lanes(ar: &[f64], ai: &[f64], or: &mut [f64], oi: &mut [f64]) {
    check_lanes!(ar, ai, or, oi);
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { conj_lanes_avx2(ar, ai, or, oi) },
        _ => conj_lanes_scalar(ar, ai, or, oi),
    }
}

/// The scalar fallback of [`conj_lanes`].
pub fn conj_lanes_scalar(ar: &[f64], ai: &[f64], or: &mut [f64], oi: &mut [f64]) {
    for i in 0..ar.len() {
        or[i] = ar[i];
        oi[i] = -ai[i];
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn conj_lanes_avx2(ar: &[f64], ai: &[f64], or: &mut [f64], oi: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = ar.len();
    let sign = _mm256_set1_pd(-0.0);
    let mut i = 0;
    while i + 4 <= n {
        _mm256_storeu_pd(or.as_mut_ptr().add(i), _mm256_loadu_pd(ar.as_ptr().add(i)));
        _mm256_storeu_pd(
            oi.as_mut_ptr().add(i),
            _mm256_xor_pd(_mm256_loadu_pd(ai.as_ptr().add(i)), sign),
        );
        i += 4;
    }
    while i < n {
        or[i] = ar[i];
        oi[i] = -ai[i];
        i += 1;
    }
}

// ---------------------------------------------------------------------
// Scale-accumulate: out += s * x, lane-wise (the dense-apply butterfly step)
// ---------------------------------------------------------------------

/// `out[i] += s * x[i]` over complex lanes, dispatched backend.
///
/// This is the per-column step of the dense terminal-case apply: a matrix
/// column (contiguous SoA lanes) scaled by one amplitude and accumulated
/// into the output block.
pub fn axpy_lanes(or: &mut [f64], oi: &mut [f64], xr: &[f64], xi: &[f64], s: Complex) {
    check_lanes!(or, oi, xr, xi);
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { axpy_lanes_avx2(or, oi, xr, xi, s) },
        _ => axpy_lanes_scalar(or, oi, xr, xi, s),
    }
}

/// The scalar fallback of [`axpy_lanes`].
pub fn axpy_lanes_scalar(or: &mut [f64], oi: &mut [f64], xr: &[f64], xi: &[f64], s: Complex) {
    for i in 0..xr.len() {
        or[i] += s.re * xr[i] - s.im * xi[i];
        oi[i] += s.re * xi[i] + s.im * xr[i];
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_lanes_avx2(or: &mut [f64], oi: &mut [f64], xr: &[f64], xi: &[f64], s: Complex) {
    use std::arch::x86_64::*;
    let n = xr.len();
    let sre = _mm256_set1_pd(s.re);
    let sim = _mm256_set1_pd(s.im);
    let mut i = 0;
    while i + 4 <= n {
        let xre = _mm256_loadu_pd(xr.as_ptr().add(i));
        let xim = _mm256_loadu_pd(xi.as_ptr().add(i));
        let re = _mm256_add_pd(
            _mm256_loadu_pd(or.as_ptr().add(i)),
            _mm256_sub_pd(_mm256_mul_pd(sre, xre), _mm256_mul_pd(sim, xim)),
        );
        let im = _mm256_add_pd(
            _mm256_loadu_pd(oi.as_ptr().add(i)),
            _mm256_add_pd(_mm256_mul_pd(sre, xim), _mm256_mul_pd(sim, xre)),
        );
        _mm256_storeu_pd(or.as_mut_ptr().add(i), re);
        _mm256_storeu_pd(oi.as_mut_ptr().add(i), im);
        i += 4;
    }
    while i < n {
        or[i] += s.re * xr[i] - s.im * xi[i];
        oi[i] += s.re * xi[i] + s.im * xr[i];
        i += 1;
    }
}

// ---------------------------------------------------------------------
// Conjugated dot product: sum conj(a[i]) * b[i] (dense fidelity)
// ---------------------------------------------------------------------

/// `Σ conj(a[i]) · b[i]` over complex lanes, dispatched backend.
///
/// Both backends accumulate into the same four partial sums (lane `i` goes
/// to accumulator `i mod 4`) and reduce them as `(s0+s2)+(s1+s3)`, so the
/// result is bit-identical across backends.
pub fn dot_conj_lanes(ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64]) -> Complex {
    check_lanes!(ar, ai, br, bi);
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { dot_conj_lanes_avx2(ar, ai, br, bi) },
        _ => dot_conj_lanes_scalar(ar, ai, br, bi),
    }
}

/// The scalar fallback of [`dot_conj_lanes`] (same accumulator structure as
/// the AVX2 path; see [`dot_conj_lanes`]).
pub fn dot_conj_lanes_scalar(ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64]) -> Complex {
    let mut sre = [0.0f64; 4];
    let mut sim = [0.0f64; 4];
    for i in 0..ar.len() {
        let j = i & 3;
        sre[j] += ar[i] * br[i] + ai[i] * bi[i];
        sim[j] += ar[i] * bi[i] - ai[i] * br[i];
    }
    Complex::new(
        (sre[0] + sre[2]) + (sre[1] + sre[3]),
        (sim[0] + sim[2]) + (sim[1] + sim[3]),
    )
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_conj_lanes_avx2(ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64]) -> Complex {
    use std::arch::x86_64::*;
    let n = ar.len();
    let mut accre = _mm256_setzero_pd();
    let mut accim = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        let are = _mm256_loadu_pd(ar.as_ptr().add(i));
        let aim = _mm256_loadu_pd(ai.as_ptr().add(i));
        let bre = _mm256_loadu_pd(br.as_ptr().add(i));
        let bim = _mm256_loadu_pd(bi.as_ptr().add(i));
        accre = _mm256_add_pd(
            accre,
            _mm256_add_pd(_mm256_mul_pd(are, bre), _mm256_mul_pd(aim, bim)),
        );
        accim = _mm256_add_pd(
            accim,
            _mm256_sub_pd(_mm256_mul_pd(are, bim), _mm256_mul_pd(aim, bre)),
        );
        i += 4;
    }
    let mut sre = [0.0f64; 4];
    let mut sim = [0.0f64; 4];
    _mm256_storeu_pd(sre.as_mut_ptr(), accre);
    _mm256_storeu_pd(sim.as_mut_ptr(), accim);
    while i < n {
        let j = i & 3;
        sre[j] += ar[i] * br[i] + ai[i] * bi[i];
        sim[j] += ar[i] * bi[i] - ai[i] * br[i];
        i += 1;
    }
    Complex::new(
        (sre[0] + sre[2]) + (sre[1] + sre[3]),
        (sim[0] + sim[2]) + (sim[1] + sim[3]),
    )
}

// ---------------------------------------------------------------------
// Tolerance probe over gathered bucket candidates (batched interning)
// ---------------------------------------------------------------------

/// Position of the first candidate whose components are both within `tol`
/// of `target` — the batched form of the interning tolerance probe.
///
/// Candidates are a dense SoA gather of every value in the neighbouring
/// lookup buckets, in probe order, so "first match" means the same entry the
/// scalar probe would have returned.
pub fn first_within_tolerance(
    cre: &[f64],
    cim: &[f64],
    target: Complex,
    tol: f64,
) -> Option<usize> {
    check_lanes!(cre, cim);
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { first_within_tolerance_avx2(cre, cim, target, tol) },
        _ => first_within_tolerance_scalar(cre, cim, target, tol),
    }
}

/// The scalar fallback of [`first_within_tolerance`].
pub fn first_within_tolerance_scalar(
    cre: &[f64],
    cim: &[f64],
    target: Complex,
    tol: f64,
) -> Option<usize> {
    (0..cre.len()).find(|&i| (cre[i] - target.re).abs() < tol && (cim[i] - target.im).abs() < tol)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn first_within_tolerance_avx2(
    cre: &[f64],
    cim: &[f64],
    target: Complex,
    tol: f64,
) -> Option<usize> {
    use std::arch::x86_64::*;
    let n = cre.len();
    let tre = _mm256_set1_pd(target.re);
    let tim = _mm256_set1_pd(target.im);
    let eps = _mm256_set1_pd(tol);
    let abs_mask = _mm256_set1_pd(f64::from_bits(0x7fff_ffff_ffff_ffff));
    let mut i = 0;
    while i + 4 <= n {
        let dre = _mm256_and_pd(
            _mm256_sub_pd(_mm256_loadu_pd(cre.as_ptr().add(i)), tre),
            abs_mask,
        );
        let dim = _mm256_and_pd(
            _mm256_sub_pd(_mm256_loadu_pd(cim.as_ptr().add(i)), tim),
            abs_mask,
        );
        let hit = _mm256_and_pd(
            _mm256_cmp_pd::<_CMP_LT_OQ>(dre, eps),
            _mm256_cmp_pd::<_CMP_LT_OQ>(dim, eps),
        );
        let mask = _mm256_movemask_pd(hit);
        if mask != 0 {
            return Some(i + mask.trailing_zeros() as usize);
        }
        i += 4;
    }
    while i < n {
        if (cre[i] - target.re).abs() < tol && (cim[i] - target.im).abs() < tol {
            return Some(i);
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lanes(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        // Deterministic pseudo-random lanes via splitmix64.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z = z ^ (z >> 31);
            (z as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let re = (0..n).map(|_| next()).collect();
        let im = (0..n).map(|_| next()).collect();
        (re, im)
    }

    #[test]
    fn dispatched_mul_matches_scalar_bitwise() {
        for n in [0usize, 1, 3, 4, 7, 64, 129] {
            let (ar, ai) = lanes(n, 1);
            let (br, bi) = lanes(n, 2);
            let (mut or1, mut oi1) = (vec![0.0; n], vec![0.0; n]);
            let (mut or2, mut oi2) = (vec![0.0; n], vec![0.0; n]);
            mul_lanes(&ar, &ai, &br, &bi, &mut or1, &mut oi1);
            mul_lanes_scalar(&ar, &ai, &br, &bi, &mut or2, &mut oi2);
            assert_eq!(or1, or2, "re lanes differ at n={n}");
            assert_eq!(oi1, oi2, "im lanes differ at n={n}");
        }
    }

    #[test]
    fn dispatched_add_div_conj_match_scalar_bitwise() {
        let n = 101;
        let (ar, ai) = lanes(n, 3);
        let (mut br, bi) = lanes(n, 4);
        // Keep divisors away from zero.
        for x in &mut br {
            *x += 2.0_f64.copysign(*x);
        }
        for (kernel, fallback) in [
            (
                add_lanes as fn(&[f64], &[f64], &[f64], &[f64], &mut [f64], &mut [f64]),
                add_lanes_scalar as fn(&[f64], &[f64], &[f64], &[f64], &mut [f64], &mut [f64]),
            ),
            (div_lanes, div_lanes_scalar),
        ] {
            let (mut or1, mut oi1) = (vec![0.0; n], vec![0.0; n]);
            let (mut or2, mut oi2) = (vec![0.0; n], vec![0.0; n]);
            kernel(&ar, &ai, &br, &bi, &mut or1, &mut oi1);
            fallback(&ar, &ai, &br, &bi, &mut or2, &mut oi2);
            assert_eq!(or1, or2);
            assert_eq!(oi1, oi2);
        }
        let (mut or1, mut oi1) = (vec![0.0; n], vec![0.0; n]);
        let (mut or2, mut oi2) = (vec![0.0; n], vec![0.0; n]);
        conj_lanes(&ar, &ai, &mut or1, &mut oi1);
        conj_lanes_scalar(&ar, &ai, &mut or2, &mut oi2);
        assert_eq!(or1, or2);
        assert_eq!(oi1, oi2);
    }

    #[test]
    fn dispatched_axpy_and_dot_match_scalar_bitwise() {
        let n = 77;
        let (xr, xi) = lanes(n, 5);
        let (ar, ai) = lanes(n, 6);
        let s = Complex::new(0.3, -1.7);
        let (mut or1, mut oi1) = (ar.clone(), ai.clone());
        let (mut or2, mut oi2) = (ar.clone(), ai.clone());
        axpy_lanes(&mut or1, &mut oi1, &xr, &xi, s);
        axpy_lanes_scalar(&mut or2, &mut oi2, &xr, &xi, s);
        assert_eq!(or1, or2);
        assert_eq!(oi1, oi2);

        let d1 = dot_conj_lanes(&ar, &ai, &xr, &xi);
        let d2 = dot_conj_lanes_scalar(&ar, &ai, &xr, &xi);
        assert_eq!(d1.re.to_bits(), d2.re.to_bits());
        assert_eq!(d1.im.to_bits(), d2.im.to_bits());
    }

    #[test]
    fn mul_matches_complex_operator() {
        let n = 33;
        let (ar, ai) = lanes(n, 7);
        let (br, bi) = lanes(n, 8);
        let (mut or, mut oi) = (vec![0.0; n], vec![0.0; n]);
        mul_lanes(&ar, &ai, &br, &bi, &mut or, &mut oi);
        for i in 0..n {
            let want = Complex::new(ar[i], ai[i]) * Complex::new(br[i], bi[i]);
            assert_eq!(or[i].to_bits(), want.re.to_bits());
            assert_eq!(oi[i].to_bits(), want.im.to_bits());
        }
    }

    #[test]
    fn tolerance_probe_finds_first_match() {
        let cre = vec![1.0, 2.0, 3.0, 3.0 + 1e-14, 5.0, 3.0];
        let cim = vec![0.0; 6];
        let hit = first_within_tolerance(&cre, &cim, Complex::real(3.0), 1e-12);
        assert_eq!(hit, Some(2));
        let scalar = first_within_tolerance_scalar(&cre, &cim, Complex::real(3.0), 1e-12);
        assert_eq!(hit, scalar);
        assert_eq!(
            first_within_tolerance(&cre, &cim, Complex::real(9.0), 1e-12),
            None
        );
        // Boundary: a difference of exactly `tol` must NOT match (strict <),
        // same as `Complex::approx_eq`.
        let exact = vec![3.0 + 1e-12];
        assert_eq!(
            first_within_tolerance(&exact, &[0.0], Complex::real(3.0), 1e-12),
            first_within_tolerance_scalar(&exact, &[0.0], Complex::real(3.0), 1e-12),
        );
    }

    #[test]
    fn backend_is_stable_and_named() {
        let b = backend();
        assert_eq!(b, backend());
        assert!(b.name() == "avx2" || b.name() == "scalar");
        if cfg!(feature = "scalar-kernels") {
            assert_eq!(b, Backend::Scalar);
        }
    }
}
