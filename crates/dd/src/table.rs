//! Interning table for complex edge weights.
//!
//! Every edge weight appearing in a decision diagram is stored exactly once
//! in a [`ComplexTable`] and referred to by a compact index ([`CIdx`]). Two
//! values within [`TOLERANCE`](crate::complex::TOLERANCE) of each other are
//! mapped onto the same index, which makes node equality (and therefore
//! hash-consing in the unique table) an exact integer comparison even in the
//! presence of floating-point round-off.
//!
//! Storage is structure-of-arrays: the real and imaginary components live in
//! two separate `f64` lanes so the batched paths ([`lookup_batch`]
//! (ComplexTable::lookup_batch), dense terminal-case apply, mirror syncs)
//! stream contiguous same-typed data through the [`kernels`](crate::kernels)
//! layer instead of gathering interleaved pairs.

use crate::complex::{Complex, TOLERANCE};
use crate::hash::FxHashMap;
use crate::kernels;

/// Index of an interned complex value inside a [`ComplexTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CIdx(pub(crate) u32);

impl CIdx {
    /// Index of the interned value `0`.
    pub const ZERO: CIdx = CIdx(0);
    /// Index of the interned value `1`.
    pub const ONE: CIdx = CIdx(1);

    /// Returns `true` when the index refers to the canonical zero value.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == CIdx::ZERO
    }

    /// Returns `true` when the index refers to the canonical one value.
    #[inline]
    pub fn is_one(self) -> bool {
        self == CIdx::ONE
    }

    /// Raw table offset, mainly useful for diagnostics.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Grid spacing used for bucketing values during lookup. Values whose
/// components fall into the same or adjacent buckets are candidates for
/// being considered equal.
const BUCKET: f64 = TOLERANCE;

/// Interning table mapping complex values to stable indices.
///
/// # Examples
///
/// ```
/// use dd::{Complex, ComplexTable};
///
/// let mut table = ComplexTable::new();
/// let a = table.lookup(Complex::new(0.5, 0.0));
/// let b = table.lookup(Complex::new(0.5 + 1e-14, 0.0));
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct ComplexTable {
    /// Real components of the value slots (same length as `im`).
    re: Vec<f64>,
    /// Imaginary components of the value slots.
    im: Vec<f64>,
    buckets: FxHashMap<(i64, i64), Vec<u32>>,
    /// Slots freed by [`retain_marked`](Self::retain_marked), recycled by the
    /// next inserts. Freed slots hold a NaN sentinel and are absent from the
    /// buckets, so lookups can never resolve to them.
    free: Vec<u32>,
    /// Scratch for [`lookup_batch`](Self::lookup_batch): bucket keys of the
    /// whole batch (phase 1) and the SoA candidate gather per value (phase 2).
    batch_keys: Vec<(i64, i64)>,
    cand_re: Vec<f64>,
    cand_im: Vec<f64>,
    cand_idx: Vec<u32>,
}

impl Default for ComplexTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ComplexTable {
    /// Creates a table pre-populated with the canonical constants `0` and `1`.
    pub fn new() -> Self {
        let mut table = ComplexTable {
            re: Vec::with_capacity(1024),
            im: Vec::with_capacity(1024),
            buckets: FxHashMap::default(),
            free: Vec::new(),
            batch_keys: Vec::new(),
            cand_re: Vec::new(),
            cand_im: Vec::new(),
            cand_idx: Vec::new(),
        };
        let zero = table.insert(Complex::ZERO);
        let one = table.insert(Complex::ONE);
        debug_assert_eq!(zero, CIdx::ZERO);
        debug_assert_eq!(one, CIdx::ONE);
        table
    }

    fn bucket_key(value: Complex) -> (i64, i64) {
        (
            (value.re / BUCKET).round() as i64,
            (value.im / BUCKET).round() as i64,
        )
    }

    fn insert(&mut self, value: Complex) -> CIdx {
        let idx = match self.free.pop() {
            Some(slot) => {
                self.re[slot as usize] = value.re;
                self.im[slot as usize] = value.im;
                slot
            }
            None => {
                let idx = self.re.len() as u32;
                self.re.push(value.re);
                self.im.push(value.im);
                idx
            }
        };
        self.buckets
            .entry(Self::bucket_key(value))
            .or_default()
            .push(idx);
        CIdx(idx)
    }

    /// Interns `value`, returning the index of an existing entry within
    /// tolerance if one exists and inserting a new entry otherwise.
    pub fn lookup(&mut self, value: Complex) -> CIdx {
        if value.is_zero() {
            return CIdx::ZERO;
        }
        if value.is_one() {
            return CIdx::ONE;
        }
        let (kr, ki) = Self::bucket_key(value);
        for dr in -1..=1 {
            for di in -1..=1 {
                if let Some(candidates) = self.buckets.get(&(kr + dr, ki + di)) {
                    for &idx in candidates {
                        let slot = Complex::new(self.re[idx as usize], self.im[idx as usize]);
                        if slot.approx_eq(value) {
                            return CIdx(idx);
                        }
                    }
                }
            }
        }
        self.insert(value)
    }

    /// Interns a whole slice of values in one pass, appending one [`CIdx`]
    /// per value to `out` (in order).
    ///
    /// Equivalent to calling [`lookup`](Self::lookup) on each value in
    /// sequence — same shortcuts, same probe order, same insertion order, so
    /// the returned index sequence is identical — but the bucket keys for
    /// the batch are hashed in one pass and each value's candidate set is
    /// gathered into contiguous SoA lanes and compared with one vectorized
    /// tolerance probe instead of a pointer-chasing scan.
    pub fn lookup_batch(&mut self, values: &[Complex], out: &mut Vec<CIdx>) {
        out.reserve(values.len());
        // Phase 1: one hashing pass over the batch.
        let mut batch_keys = std::mem::take(&mut self.batch_keys);
        batch_keys.clear();
        batch_keys.extend(values.iter().map(|&v| Self::bucket_key(v)));
        // Phase 2: probe (vectorized) or insert, in order. Inserts must be
        // visible to later values of the same batch, exactly as if the
        // scalar path had run value-by-value.
        for (&value, &(kr, ki)) in values.iter().zip(batch_keys.iter()) {
            if value.is_zero() {
                out.push(CIdx::ZERO);
                continue;
            }
            if value.is_one() {
                out.push(CIdx::ONE);
                continue;
            }
            self.cand_re.clear();
            self.cand_im.clear();
            self.cand_idx.clear();
            for dr in -1..=1 {
                for di in -1..=1 {
                    if let Some(candidates) = self.buckets.get(&(kr + dr, ki + di)) {
                        for &idx in candidates {
                            self.cand_re.push(self.re[idx as usize]);
                            self.cand_im.push(self.im[idx as usize]);
                            self.cand_idx.push(idx);
                        }
                    }
                }
            }
            match kernels::first_within_tolerance(&self.cand_re, &self.cand_im, value, TOLERANCE) {
                Some(pos) => out.push(CIdx(self.cand_idx[pos])),
                None => out.push(self.insert(value)),
            }
        }
        self.batch_keys = batch_keys;
        obs::metrics::add(obs::metrics::DD_BATCH_INTERNED, values.len() as u64);
    }

    /// Returns the value stored at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` was not produced by this table.
    #[inline]
    pub fn value(&self, idx: CIdx) -> Complex {
        Complex::new(self.re[idx.0 as usize], self.im[idx.0 as usize])
    }

    /// Number of value slots (live entries plus compaction-freed slots).
    #[inline]
    pub fn len(&self) -> usize {
        self.re.len()
    }

    /// Number of *live* interned values (slots minus freed slots).
    #[inline]
    pub fn live_len(&self) -> usize {
        self.re.len() - self.free.len()
    }

    /// Returns `true` when only the canonical constants are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live_len() <= 2
    }

    /// The raw value in slot `i` (freed slots hold a NaN sentinel). Used by
    /// shared workspaces to refresh one mirror entry; the NaN sentinel is
    /// what lets a mirror detect a slot that was freed (and possibly
    /// recycled) by a compaction it did not witness.
    #[inline]
    pub(crate) fn slot(&self, i: usize) -> Complex {
        Complex::new(self.re[i], self.im[i])
    }

    /// Compacts the table: every slot whose index is *not* marked is freed
    /// for reuse and removed from the lookup buckets, so long runs stop
    /// accumulating weights that no live diagram references. Indices of
    /// marked entries are stable across the compaction. Returns the number
    /// of freed slots.
    ///
    /// On a shared store this runs behind the GC barrier with every other
    /// workspace parked; the parked workspaces invalidate their value
    /// mirrors on release (the mark set spans *all* workspaces' roots, so
    /// every index they can still reach stays stable).
    ///
    /// The canonical constants `0` and `1` are always kept, and indices
    /// beyond `marked.len()` are treated as unmarked.
    pub fn retain_marked(&mut self, marked: &[bool]) -> usize {
        let mut freed = 0;
        self.buckets.clear();
        for idx in 0..self.re.len() {
            let keep = idx <= 1 || marked.get(idx).copied().unwrap_or(false);
            if keep {
                if !self.re[idx].is_nan() {
                    self.buckets
                        .entry(Self::bucket_key(self.slot(idx)))
                        .or_default()
                        .push(idx as u32);
                }
            } else if !self.re[idx].is_nan() {
                self.re[idx] = f64::NAN;
                self.im[idx] = f64::NAN;
                self.free.push(idx as u32);
                freed += 1;
            }
        }
        freed
    }

    /// Interns the product of two interned values.
    pub fn mul(&mut self, a: CIdx, b: CIdx) -> CIdx {
        if a.is_zero() || b.is_zero() {
            return CIdx::ZERO;
        }
        if a.is_one() {
            return b;
        }
        if b.is_one() {
            return a;
        }
        let product = self.value(a) * self.value(b);
        self.lookup(product)
    }

    /// Interns the sum of two interned values.
    pub fn add(&mut self, a: CIdx, b: CIdx) -> CIdx {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let sum = self.value(a) + self.value(b);
        self.lookup(sum)
    }

    /// Interns the quotient `a / b`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `b` is the zero value.
    pub fn div(&mut self, a: CIdx, b: CIdx) -> CIdx {
        debug_assert!(!b.is_zero(), "division of interned values by zero");
        if a.is_zero() {
            return CIdx::ZERO;
        }
        if b.is_one() {
            return a;
        }
        let quotient = self.value(a) / self.value(b);
        self.lookup(quotient)
    }

    /// Interns the complex conjugate of `a`.
    pub fn conj(&mut self, a: CIdx) -> CIdx {
        if a.is_zero() || a.is_one() {
            return a;
        }
        let conj = self.value(a).conj();
        self.lookup(conj)
    }

    /// Interns the negation of `a`.
    pub fn neg(&mut self, a: CIdx) -> CIdx {
        if a.is_zero() {
            return a;
        }
        let neg = -self.value(a);
        self.lookup(neg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_constants() {
        let mut t = ComplexTable::new();
        assert_eq!(t.lookup(Complex::ZERO), CIdx::ZERO);
        assert_eq!(t.lookup(Complex::ONE), CIdx::ONE);
        assert_eq!(t.value(CIdx::ZERO), Complex::ZERO);
        assert_eq!(t.value(CIdx::ONE), Complex::ONE);
    }

    #[test]
    fn nearby_values_are_merged() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::new(std::f64::consts::FRAC_1_SQRT_2, 0.0));
        let b = t.lookup(Complex::new(0.5f64.sqrt(), 1e-15));
        assert_eq!(a, b);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn distinct_values_get_distinct_indices() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.25, 0.0));
        let b = t.lookup(Complex::new(0.5, 0.0));
        let c = t.lookup(Complex::new(0.25, 0.25));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn arithmetic_on_indices() {
        let mut t = ComplexTable::new();
        let half = t.lookup(Complex::real(0.5));
        let i = t.lookup(Complex::I);
        assert_eq!(t.mul(half, CIdx::ZERO), CIdx::ZERO);
        assert_eq!(t.mul(half, CIdx::ONE), half);
        let half_i = t.mul(half, i);
        assert!(t.value(half_i).approx_eq(Complex::new(0.0, 0.5)));
        let one = t.add(half, half);
        assert_eq!(one, CIdx::ONE);
        let back = t.div(half_i, i);
        assert_eq!(back, half);
        let conj_i = t.conj(i);
        assert!(t.value(conj_i).approx_eq(Complex::new(0.0, -1.0)));
        let neg_half = t.neg(half);
        assert!(t.value(neg_half).approx_eq(Complex::real(-0.5)));
    }

    #[test]
    fn lookup_near_bucket_boundary() {
        let mut t = ComplexTable::new();
        // Two values straddling a bucket boundary but within tolerance of
        // each other must be merged via the neighbour-bucket search.
        let base = 0.123456789;
        let a = t.lookup(Complex::real(base));
        let b = t.lookup(Complex::real(base + 0.4 * TOLERANCE));
        assert_eq!(a, b);
    }

    #[test]
    fn batch_lookup_matches_scalar_sequence() {
        let values: Vec<Complex> = (0..64)
            .map(|k| {
                let theta = k as f64 * 0.1;
                Complex::from_polar(0.5 + (k % 7) as f64 * 0.01, theta)
            })
            // Repeats, shortcuts and near-duplicates inside the same batch.
            .chain([
                Complex::ZERO,
                Complex::ONE,
                Complex::real(0.5),
                Complex::real(0.5 + 1e-14),
                Complex::real(0.5 + 0.4 * TOLERANCE),
            ])
            .collect();
        let mut scalar = ComplexTable::new();
        let want: Vec<CIdx> = values.iter().map(|&v| scalar.lookup(v)).collect();
        let mut batched = ComplexTable::new();
        let mut got = Vec::new();
        batched.lookup_batch(&values, &mut got);
        assert_eq!(got, want);
        assert_eq!(batched.len(), scalar.len());
    }

    #[test]
    fn batch_lookup_sees_earlier_batch_inserts() {
        let mut t = ComplexTable::new();
        let v = Complex::new(0.25, -0.75);
        let mut out = Vec::new();
        t.lookup_batch(&[v, v, Complex::new(0.25 + 1e-14, -0.75)], &mut out);
        assert_eq!(out[0], out[1]);
        assert_eq!(out[0], out[2]);
        assert_eq!(t.live_len(), 3);
    }

    #[test]
    fn batch_lookup_reuses_freed_slots() {
        let mut t = ComplexTable::new();
        let dead = t.lookup(Complex::real(0.9));
        t.retain_marked(&[true, true]);
        let mut out = Vec::new();
        t.lookup_batch(&[Complex::real(0.3)], &mut out);
        // The freed slot is recycled, and the old value is gone.
        assert_eq!(out[0], dead);
        assert!(t.value(out[0]).approx_eq(Complex::real(0.3)));
    }
}
