//! A small, fast, deterministic hasher for the package-internal tables.
//!
//! The unique and compute tables of the decision-diagram package perform a
//! very large number of lookups keyed on small tuples of integers. The
//! default SipHash implementation in the standard library is unnecessarily
//! expensive for that access pattern, so the package uses an FxHash-style
//! multiply-xor hasher (the same construction used by rustc's `FxHashMap`).

use std::hash::{BuildHasherDefault, Hasher};

/// Seed constant of the FxHash construction (64-bit variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher specialised for small integer keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Hashes any `Hash` value with the package-internal FxHasher.
///
/// Used by the open-addressed unique tables and lossy compute caches, which
/// manage their own slot arrays instead of going through `HashMap`.
#[inline]
pub(crate) fn fx_hash<T: std::hash::Hash>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

/// A `HashMap` using the package-internal fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a: FxHashMap<u64, u32> = FxHashMap::default();
        a.insert(42, 1);
        a.insert(7, 2);
        assert_eq!(a.get(&42), Some(&1));
        assert_eq!(a.get(&7), Some(&2));
        assert_eq!(a.get(&8), None);
    }

    #[test]
    fn hasher_distinguishes_values() {
        use std::hash::BuildHasher;
        let bh = FxBuildHasher::default();
        let hash = |v: u64| bh.hash_one(v);
        assert_ne!(hash(1), hash(2));
        assert_ne!(hash(0), hash(u64::MAX));
    }
}
