//! Cooperative cancellation and resource budgets.
//!
//! The portfolio verification engine races several schemes against each other
//! and cancels the losers; long-running single checks need node and leaf
//! budgets so one pathological instance cannot take a worker down. Both
//! concerns share one vocabulary defined here:
//!
//! * [`CancelToken`] — a cheaply clonable flag, set once, observed
//!   cooperatively by every hot loop (decision-diagram operations, the miter
//!   construction, branching extraction).
//! * [`Budget`] — a cancel token plus optional hard limits on decision-diagram
//!   node allocations and extraction leaves. This is the *single* resource
//!   limit type used by every entry point (the `qcec` checks, the extraction
//!   scheme, the `table1` harness and the portfolio engine).
//! * [`LimitExceeded`] — why a computation stopped early.
//!
//! The [`DdPackage`](crate::DdPackage) observes its budget inside node
//! allocation (the one place every diagram operation funnels through) and —
//! for the wall-clock deadline — additionally at every operation safe
//! point, so a cancelled worker unwinds within a few hundred allocations
//! and a deadline trips even across allocation-free cache-hit stretches,
//! all without any per-recursion atomic traffic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared, one-way cancellation flag.
///
/// Clones observe the same flag; cancelling is idempotent and cannot be
/// undone. The flag is checked with relaxed ordering — cancellation is a
/// latency optimisation, not a synchronisation point.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation of every computation observing this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Returns `true` once [`cancel`](Self::cancel) has been called.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Why a budgeted computation stopped before producing a verdict.
///
/// The budget's *leaf* cap is enforced by the extraction itself and is
/// reported as `SimError::BranchLimitExceeded` (it is a property of the
/// branching walk, not of the decision-diagram package), so it has no
/// variant here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitExceeded {
    /// The [`CancelToken`] was triggered (typically: another portfolio
    /// scheme finished first).
    Cancelled,
    /// The decision-diagram package allocated more nodes than the budget
    /// allows.
    NodeLimit,
    /// The budget's wall-clock deadline passed.
    Deadline,
}

impl std::fmt::Display for LimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LimitExceeded::Cancelled => write!(f, "cancelled"),
            LimitExceeded::NodeLimit => write!(f, "decision-diagram node budget exhausted"),
            LimitExceeded::Deadline => write!(f, "wall-clock deadline exceeded"),
        }
    }
}

/// A resource budget shared by all verification entry points.
///
/// Cloning is cheap and keeps the cancel token shared, so one budget can be
/// handed to many workers and cancelled centrally.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    cancel: CancelToken,
    /// An outer cancellation scope (e.g. a service client's request token)
    /// observed *in addition to* the budget's own token. Keeping the two
    /// separate lets an engine cancel its race losers without tripping the
    /// client-visible token, while a client disconnect still unwinds every
    /// scheme of the request.
    parent: Option<CancelToken>,
    max_nodes: Option<usize>,
    max_leaves: Option<usize>,
    deadline: Option<Instant>,
}

impl Budget {
    /// A budget with no limits and a fresh cancel token.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Replaces the cancel token (builder style).
    #[must_use]
    pub fn with_cancel_token(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Caps decision-diagram node allocations (builder style).
    #[must_use]
    pub fn with_node_limit(mut self, max_nodes: usize) -> Self {
        self.max_nodes = Some(max_nodes);
        self
    }

    /// Caps extraction leaves (builder style). `None` removes the cap.
    #[must_use]
    pub fn with_leaf_limit(mut self, max_leaves: impl Into<Option<usize>>) -> Self {
        self.max_leaves = max_leaves.into();
        self
    }

    /// Sets a wall-clock deadline `timeout` from now (builder style).
    ///
    /// The [`DdPackage`](crate::DdPackage) polls the deadline on its
    /// node-allocation path (at the same reduced cadence as the cancel
    /// flag) *and* at every operation safe point, so even allocation-free
    /// stretches — cache-hit-heavy phases, or waiting out a shared-store
    /// GC barrier — stop promptly after the deadline passes and report
    /// [`LimitExceeded::Deadline`].
    #[must_use]
    pub fn with_deadline(self, timeout: Duration) -> Self {
        self.with_deadline_at(Instant::now() + timeout)
    }

    /// Sets an absolute wall-clock deadline (builder style).
    #[must_use]
    pub fn with_deadline_at(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Chains an outer cancellation scope (builder style): the budget
    /// counts as cancelled when *either* its own token or the parent token
    /// trips. The portfolio engine uses this to stack a client's request
    /// token on top of the race-internal winner-cancels-losers token.
    #[must_use]
    pub fn with_parent_token(mut self, parent: CancelToken) -> Self {
        self.parent = Some(parent);
        self
    }

    /// The budget's cancel token.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The chained outer cancellation token, if any.
    pub fn parent_token(&self) -> Option<&CancelToken> {
        self.parent.as_ref()
    }

    /// Returns `true` once the budget's own token *or* its chained parent
    /// token has been cancelled. Every budget observation point (node
    /// allocation, operation safe points, the simulative sweeps) funnels
    /// through this, so a cancelled parent unwinds the computation exactly
    /// like the race token does.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled() || self.parent.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Requests cancellation of every computation using this budget.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Node-allocation cap, if any.
    pub fn max_nodes(&self) -> Option<usize> {
        self.max_nodes
    }

    /// Extraction-leaf cap, if any.
    pub fn max_leaves(&self) -> Option<usize> {
        self.max_leaves
    }

    /// The wall-clock deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Returns `true` once the deadline (if any) has passed.
    #[inline]
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_shared_between_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        token.cancel(); // idempotent
        assert!(token.is_cancelled());
    }

    #[test]
    fn budget_builder_and_shared_cancel() {
        let budget = Budget::unlimited()
            .with_node_limit(1000)
            .with_leaf_limit(64);
        assert_eq!(budget.max_nodes(), Some(1000));
        assert_eq!(budget.max_leaves(), Some(64));
        let clone = budget.clone();
        budget.cancel();
        assert!(clone.cancel_token().is_cancelled());
        let uncapped = Budget::unlimited().with_leaf_limit(None);
        assert_eq!(uncapped.max_leaves(), None);
    }

    #[test]
    fn parent_token_cancels_without_tripping_the_race_token() {
        let request = CancelToken::new();
        let budget = Budget::unlimited().with_parent_token(request.clone());
        assert!(!budget.is_cancelled());
        request.cancel();
        assert!(budget.is_cancelled(), "parent cancellation is observed");
        assert!(
            !budget.cancel_token().is_cancelled(),
            "the race-internal token stays independent of the parent"
        );
        let race_only = Budget::unlimited().with_parent_token(CancelToken::new());
        race_only.cancel();
        assert!(race_only.is_cancelled(), "own token still cancels");
        assert_eq!(
            budget.parent_token().map(CancelToken::is_cancelled),
            Some(true)
        );
    }

    #[test]
    fn limit_display() {
        assert_eq!(LimitExceeded::Cancelled.to_string(), "cancelled");
        assert!(LimitExceeded::NodeLimit.to_string().contains("node"));
        assert!(LimitExceeded::Deadline.to_string().contains("deadline"));
    }

    #[test]
    fn deadline_observation() {
        let unlimited = Budget::unlimited();
        assert_eq!(unlimited.deadline(), None);
        assert!(!unlimited.deadline_exceeded());
        let expired = Budget::unlimited().with_deadline(Duration::ZERO);
        assert!(expired.deadline().is_some());
        assert!(expired.deadline_exceeded());
        let generous = Budget::unlimited().with_deadline(Duration::from_secs(3600));
        assert!(!generous.deadline_exceeded());
    }
}
