//! Graphviz export of decision diagrams for debugging and documentation.

use crate::node::{MEdge, NodeId, VEdge};
use crate::DdPackage;
use std::collections::HashSet;
use std::fmt::Write as _;

impl DdPackage {
    /// Renders a vector decision diagram as a Graphviz `dot` digraph.
    ///
    /// # Examples
    ///
    /// ```
    /// use dd::{DdPackage, gates};
    /// let mut p = DdPackage::new(2);
    /// let mut state = p.zero_state();
    /// state = p.apply_gate(state, &gates::h(), 0, &[]);
    /// let dot = p.vector_to_dot(state);
    /// assert!(dot.starts_with("digraph"));
    /// ```
    pub fn vector_to_dot(&self, root: VEdge) -> String {
        let mut out = String::from("digraph vdd {\n  rankdir=TB;\n  node [shape=circle];\n");
        let _ = writeln!(
            out,
            "  root [shape=point]; root -> {} [label=\"{}\"];",
            node_name(root.node),
            self.vweight(root)
        );
        let mut seen = HashSet::new();
        self.vdot_rec(root, &mut seen, &mut out);
        out.push_str("}\n");
        out
    }

    fn vdot_rec(&self, e: VEdge, seen: &mut HashSet<NodeId>, out: &mut String) {
        if e.is_zero() || e.is_terminal() || !seen.insert(e.node) {
            return;
        }
        let node = self.vnode(e.node);
        let _ = writeln!(out, "  {} [label=\"q{}\"];", node_name(e.node), node.var);
        for (i, child) in node.children.iter().enumerate() {
            if child.is_zero() {
                continue;
            }
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{}: {}\"];",
                node_name(e.node),
                node_name(child.node),
                i,
                self.vweight(*child)
            );
            self.vdot_rec(*child, seen, out);
        }
    }

    /// Renders a matrix decision diagram as a Graphviz `dot` digraph.
    pub fn matrix_to_dot(&self, root: MEdge) -> String {
        let mut out = String::from("digraph mdd {\n  rankdir=TB;\n  node [shape=square];\n");
        let _ = writeln!(
            out,
            "  root [shape=point]; root -> {} [label=\"{}\"];",
            node_name(root.node),
            self.mweight(root)
        );
        let mut seen = HashSet::new();
        self.mdot_rec(root, &mut seen, &mut out);
        out.push_str("}\n");
        out
    }

    fn mdot_rec(&self, e: MEdge, seen: &mut HashSet<NodeId>, out: &mut String) {
        if e.is_zero() || e.is_terminal() || !seen.insert(e.node) {
            return;
        }
        let node = self.mnode(e.node);
        let _ = writeln!(out, "  {} [label=\"q{}\"];", node_name(e.node), node.var);
        for (i, child) in node.children.iter().enumerate() {
            if child.is_zero() {
                continue;
            }
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{}{}: {}\"];",
                node_name(e.node),
                node_name(child.node),
                i / 2,
                i % 2,
                self.mweight(*child)
            );
            self.mdot_rec(*child, seen, out);
        }
    }
}

fn node_name(id: NodeId) -> String {
    if id.is_terminal() {
        "terminal".to_string()
    } else {
        format!("n{}", id.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    #[test]
    fn vector_dot_contains_all_levels() {
        let mut p = DdPackage::new(3);
        let state = p.zero_state();
        let dot = p.vector_to_dot(state);
        assert!(dot.contains("q0"));
        assert!(dot.contains("q1"));
        assert!(dot.contains("q2"));
        assert!(dot.contains("terminal"));
    }

    #[test]
    fn dot_export_works_on_shared_workspaces() {
        // Regression: the exporter must read nodes through the shared-store
        // dispatchers, not the (empty) private arenas of a workspace.
        let store = crate::SharedStore::new();
        let mut ws = store.workspace(2);
        let mut state = ws.zero_state();
        state = ws.apply_gate(state, &gates::h(), 0, &[]);
        assert!(ws.vector_to_dot(state).starts_with("digraph"));
        let cx = ws.make_gate(&gates::x(), 1, &[crate::Control::pos(0)]);
        assert!(ws.matrix_to_dot(cx).contains("q1"));
    }

    #[test]
    fn matrix_dot_is_well_formed() {
        let mut p = DdPackage::new(2);
        let cx = p.make_gate(&gates::x(), 1, &[crate::Control::pos(0)]);
        let dot = p.matrix_to_dot(cx);
        assert!(dot.starts_with("digraph mdd {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("q1"));
    }
}
