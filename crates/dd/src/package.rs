//! The decision-diagram package: arenas, unique tables, compute tables and
//! all operations on vector and matrix decision diagrams.
//!
//! A [`DdPackage`] owns every node and interned complex value of the diagrams
//! built through it. Edges ([`VEdge`], [`MEdge`]) are plain copyable handles
//! that are only meaningful together with the package that created them.
//!
//! # Examples
//!
//! Applying a Hadamard gate to |0⟩ and reading the outcome probabilities:
//!
//! ```
//! use dd::{DdPackage, gates};
//!
//! let mut p = DdPackage::new(1);
//! let state = p.zero_state();
//! let state = p.apply_gate(state, &gates::h(), 0, &[]);
//! let (p0, p1) = p.probabilities(state, 0);
//! assert!((p0 - 0.5).abs() < 1e-12);
//! assert!((p1 - 0.5).abs() < 1e-12);
//! ```

use crate::cache::{CacheCounters, LossyCache, UniqueTable};
use crate::complex::{Complex, TOLERANCE};
use crate::gates::{self, GateMatrix};
use crate::hash::{fx_hash, FxHashMap};
use crate::kernels;
use crate::limits::{Budget, LimitExceeded};
use crate::node::{MEdge, MNode, NodeId, VEdge, VNode};
use crate::store::{SharedHandle, SharedStore};
use crate::table::{CIdx, ComplexTable};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a barrier-GC collector waits for every other attached workspace
/// to park at a safe point before abandoning the round (falling back to
/// deferral). Bounds the stall an idle attachment — or one stuck inside a
/// single very long operation — can impose on a collection request.
const BARRIER_PATIENCE: Duration = Duration::from_millis(100);

/// What a shared-store collection attempt did (see
/// [`DdPackage::collect_garbage`] for the public `usize` view).
enum SharedGcOutcome {
    /// A sweep ran and reclaimed this many nodes.
    Collected(usize),
    /// Another workspace holds the collector role; nothing was swept here.
    Contended,
    /// The barrier timed out waiting for an attachment to reach a safe
    /// point; the request was abandoned (deferral fallback).
    Aborted,
}

/// RAII scope of one barrier-GC round: raises `gc_requested` on `begin` and
/// guarantees the round is closed on *every* exit path — via
/// [`complete`](Self::complete) after a successful sweep (bumps the
/// generation so parked workspaces re-pin the freshly published snapshot),
/// or via `Drop` on abort and on collector panic (no generation bump; parked
/// workspaces resume on their existing pin instead of waiting forever on a
/// dead round).
struct BarrierRound<'a> {
    store: &'a crate::store::SharedStore,
    completed: bool,
}

impl<'a> BarrierRound<'a> {
    fn begin(store: &'a crate::store::SharedStore) -> Self {
        let mut barrier = crate::store::lock(&store.barrier);
        barrier.request += 1;
        store.gc_requested.store(true, Ordering::Release);
        drop(barrier);
        BarrierRound {
            store,
            completed: false,
        }
    }

    /// Closes the round after a successful sweep: parked workspaces wake,
    /// see the generation advance and re-pin the new snapshot (their memos
    /// survive — the sweep marked their weight roots).
    fn complete(mut self) {
        let mut barrier = crate::store::lock(&self.store.barrier);
        barrier.generation += 1;
        self.completed = true;
        self.store.gc_requested.store(false, Ordering::Release);
        self.store.barrier_cv.notify_all();
    }
}

impl Drop for BarrierRound<'_> {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        let mut barrier = crate::store::lock(&self.store.barrier);
        // Invalidate the round id so any workspace parked on it stops
        // waiting — whether the collector gave up (abort) or died mid-sweep
        // (panic), a request that will never finish must not hold parkers.
        barrier.request += 1;
        barrier.published.clear();
        self.store.gc_requested.store(false, Ordering::Release);
        self.store.barrier_cv.notify_all();
    }
}

/// A control qubit of a multi-qubit gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Control {
    /// The controlling qubit.
    pub qubit: usize,
    /// `true` for a regular (positive) control, `false` for a negative
    /// control that triggers on |0⟩.
    pub positive: bool,
}

impl Control {
    /// Positive control on `qubit`.
    pub const fn pos(qubit: usize) -> Self {
        Control {
            qubit,
            positive: true,
        }
    }

    /// Negative control on `qubit`.
    pub const fn neg(qubit: usize) -> Self {
        Control {
            qubit,
            positive: false,
        }
    }
}

/// Statistics about the current contents of a [`DdPackage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PackageStats {
    /// Number of distinct *live* vector nodes (allocated minus collected).
    pub vector_nodes: usize,
    /// Number of distinct *live* matrix nodes (allocated minus collected).
    pub matrix_nodes: usize,
    /// Number of distinct interned complex values.
    pub complex_values: usize,
}

/// Sizing and garbage-collection knobs of a [`DdPackage`].
///
/// The compute tables are *lossy*: direct-mapped, overwriting on collision.
/// All sizes are powers of two given as the bit count of the table's
/// *bound*: a table starts at 256 slots (or the bound, when smaller) and
/// quadruples under insert pressure up to the bound, so bigger bounds trade
/// memory for fewer recomputations while short-lived packages stay small.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MemoryConfig {
    /// log2 slots of the binary compute tables (mat·vec, mat·mat, add).
    pub binary_cache_bits: u32,
    /// log2 slots of the unary compute tables (transpose, inner product,
    /// trace, norm).
    pub unary_cache_bits: u32,
    /// log2 slots of the gate-diagram cache keyed by
    /// `(GateMatrix, target, controls)`.
    pub gate_cache_bits: u32,
    /// Live-node count that triggers automatic garbage collection at the
    /// next operation safe point; `None` disables automatic collection
    /// (explicit [`DdPackage::garbage_collect`] still works). When a run
    /// reclaims less than a quarter of the threshold the threshold doubles,
    /// so workloads with mostly-live diagrams do not thrash.
    pub gc_threshold: Option<usize>,
    /// Level at or below which the *vector* recursions (mat·vec apply and
    /// vector add) drop out of node-at-a-time recursion into the dense
    /// terminal-case kernel ([`kernels`](crate::kernels)): subtrees spanning
    /// at most this many qubit levels are expanded to contiguous SoA
    /// amplitude blocks, the operation runs as batched lane arithmetic, and
    /// the result is re-interned in one batch. Matrix·matrix and matrix-add
    /// recursions stay node-at-a-time: their dense blocks are 4^levels wide,
    /// and measurement showed the expand/re-intern round trip losing ~3x to
    /// recursion on structured miters. `0` disables the dense path entirely;
    /// values above [`DENSE_CUTOFF_MAX`] are clamped at package
    /// construction.
    pub dense_cutoff: u32,
}

/// Default automatic-GC trigger (live nodes across both arenas).
pub const DEFAULT_GC_THRESHOLD: usize = 1 << 18;

/// Default dense terminal-case cutoff (levels; 8 amplitudes / 64 matrix
/// entries per dense block).
pub const DEFAULT_DENSE_CUTOFF: u32 = 3;

/// Largest honoured [`MemoryConfig::dense_cutoff`]. Blocks above 2^6
/// amplitudes lose more to expansion and re-interning than the lane
/// arithmetic saves, and the per-package dense scratch grows as 4^cutoff.
pub const DENSE_CUTOFF_MAX: u32 = 6;

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            binary_cache_bits: 16,
            unary_cache_bits: 14,
            gate_cache_bits: 12,
            gc_threshold: Some(DEFAULT_GC_THRESHOLD),
            dense_cutoff: DEFAULT_DENSE_CUTOFF,
        }
    }
}

/// Memory-system telemetry of a [`DdPackage`].
///
/// Counters are cumulative over the package's lifetime; garbage collection
/// and [`DdPackage::clear_compute_tables`] never reset them.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemoryStats {
    /// Live vector nodes right now.
    pub live_vector_nodes: usize,
    /// Live matrix nodes right now.
    pub live_matrix_nodes: usize,
    /// Highest live node count (both arenas) ever observed.
    pub peak_nodes: usize,
    /// Nodes ever allocated (unique-table misses).
    pub allocated_nodes: u64,
    /// Nodes reclaimed by garbage collection.
    pub reclaimed_nodes: u64,
    /// Completed garbage-collection runs.
    pub gc_runs: usize,
    /// Complex-table slots (live entries plus compaction-freed slots).
    pub complex_values: usize,
    /// *Live* interned complex weights (slots minus compaction-freed ones).
    pub complex_entries: usize,
    /// Complex-table entries reclaimed by garbage-collection compaction.
    pub complex_reclaimed: u64,
    /// Live nodes in the attached [`SharedStore`](crate::SharedStore)
    /// (`0` for a private package).
    pub shared_nodes: usize,
    /// Shared-store canonical lookups (unique tables and the shared gate
    /// cache) answered by an existing entry. `0` for a private package.
    pub intern_hits: u64,
    /// Subset of [`intern_hits`](Self::intern_hits) where the entry was
    /// created by a *different* workspace of the same shared store.
    pub cross_thread_hits: u64,
    /// Compute-table lookups across all eight tables.
    pub compute_lookups: u64,
    /// Compute-table lookups answered from cache.
    pub compute_hits: u64,
    /// Gate-diagram cache lookups.
    pub gate_lookups: u64,
    /// Gate-diagram cache hits.
    pub gate_hits: u64,
}

impl MemoryStats {
    /// Fraction of compute-table lookups served from cache, or `None` before
    /// the first lookup.
    pub fn compute_hit_rate(&self) -> Option<f64> {
        if self.compute_lookups == 0 {
            None
        } else {
            Some(self.compute_hits as f64 / self.compute_lookups as f64)
        }
    }

    /// Fraction of gate-diagram builds avoided by the gate cache.
    pub fn gate_hit_rate(&self) -> Option<f64> {
        if self.gate_lookups == 0 {
            None
        } else {
            Some(self.gate_hits as f64 / self.gate_lookups as f64)
        }
    }

    /// Fraction of shared-store canonical hits served by an entry another
    /// workspace created, or `None` for private packages (no shared hits).
    pub fn cross_thread_hit_rate(&self) -> Option<f64> {
        if self.intern_hits == 0 {
            None
        } else {
            Some(self.cross_thread_hits as f64 / self.intern_hits as f64)
        }
    }

    /// Aggregates telemetry of several packages (e.g. the two simulators of
    /// a simulative check): counters add up, gauges take the maximum.
    #[must_use]
    pub fn merged_with(&self, other: &MemoryStats) -> MemoryStats {
        MemoryStats {
            live_vector_nodes: self.live_vector_nodes.max(other.live_vector_nodes),
            live_matrix_nodes: self.live_matrix_nodes.max(other.live_matrix_nodes),
            peak_nodes: self.peak_nodes.max(other.peak_nodes),
            allocated_nodes: self.allocated_nodes + other.allocated_nodes,
            reclaimed_nodes: self.reclaimed_nodes + other.reclaimed_nodes,
            gc_runs: self.gc_runs + other.gc_runs,
            complex_values: self.complex_values.max(other.complex_values),
            complex_entries: self.complex_entries.max(other.complex_entries),
            complex_reclaimed: self.complex_reclaimed + other.complex_reclaimed,
            shared_nodes: self.shared_nodes.max(other.shared_nodes),
            intern_hits: self.intern_hits + other.intern_hits,
            cross_thread_hits: self.cross_thread_hits + other.cross_thread_hits,
            compute_lookups: self.compute_lookups + other.compute_lookups,
            compute_hits: self.compute_hits + other.compute_hits,
            gate_lookups: self.gate_lookups + other.gate_lookups,
            gate_hits: self.gate_hits + other.gate_hits,
        }
    }
}

/// Cache key of a gate diagram: exact matrix bit patterns plus placement
/// *and register size* — the diagram wraps identity levels up to the
/// package's qubit count, so the same gate in registers of different widths
/// is a different diagram.
///
/// Shared between each package's lossy L1 gate cache and the
/// [`SharedStore`](crate::SharedStore)'s exact L2 map (where workspaces of
/// different sizes coexist).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct GateKey {
    matrix: [u64; 8],
    n_qubits: u32,
    target: u32,
    controls: Vec<Control>,
}

/// Decision-diagram package for up to `n_qubits` qubits.
///
/// All diagram-producing methods take `&mut self` because they may allocate
/// nodes or interned weights.
///
/// # Memory model
///
/// Nodes live in per-kind arenas with free lists and are hash-consed through
/// one open-addressed unique table per qubit level. Memoisation goes through
/// fixed-size lossy caches (see [`MemoryConfig`]). A mark-and-sweep
/// [`garbage_collect`](Self::garbage_collect) reclaims nodes unreachable
/// from the *roots*:
///
/// * edges registered via [`protect_vector`](Self::protect_vector) /
///   [`protect_matrix`](Self::protect_matrix) (reference counted),
/// * the identity cache and the gate-diagram cache,
/// * the operand edges of the operation that triggered an automatic run
///   (collection only ever happens at the entry of a top-level operation,
///   never in the middle of a recursion).
///
/// Reusable buffers of the dense terminal-case kernels: operand/output SoA
/// lanes plus the interleave + interning staging areas. Taken out of the
/// package (`std::mem::take`) for the duration of one dense apply — the
/// dense paths never nest, so one set suffices.
#[derive(Debug, Default)]
struct DenseScratch {
    a_re: Vec<f64>,
    a_im: Vec<f64>,
    b_re: Vec<f64>,
    b_im: Vec<f64>,
    vals: Vec<Complex>,
    idxs: Vec<CIdx>,
}

/// **Contract for callers:** an edge merely held in a variable across *other*
/// package operations is not a root. On a package that may collect (the
/// default), protect such edges and unprotect them when done; edges passed
/// as operands to the current operation are protected automatically. After a
/// collection, unprotected edges may dangle — using one is not memory-unsafe
/// (arena slots are recycled, not freed) but yields meaningless diagrams.
#[derive(Debug)]
pub struct DdPackage {
    n_qubits: usize,
    ctab: ComplexTable,
    pub(crate) vnodes: Vec<VNode>,
    vfree: Vec<u32>,
    vunique: Vec<UniqueTable>,
    pub(crate) mnodes: Vec<MNode>,
    mfree: Vec<u32>,
    munique: Vec<UniqueTable>,
    ct_mat_vec: LossyCache<(NodeId, NodeId), VEdge>,
    ct_mat_mat: LossyCache<(NodeId, NodeId), MEdge>,
    ct_add_vec: LossyCache<(NodeId, NodeId, CIdx), VEdge>,
    ct_add_mat: LossyCache<(NodeId, NodeId, CIdx), MEdge>,
    ct_transpose: LossyCache<NodeId, MEdge>,
    ct_inner: LossyCache<(NodeId, NodeId), Complex>,
    ct_trace: LossyCache<NodeId, Complex>,
    vnorm_cache: LossyCache<NodeId, f64>,
    gate_cache: LossyCache<GateKey, MEdge>,
    ident_cache: Vec<MEdge>,
    /// Effective dense terminal-case cutoff in levels (`0` = disabled; see
    /// [`MemoryConfig::dense_cutoff`]).
    dense_cutoff: usize,
    /// Dense SoA expansions of matrix node functions, keyed by the node the
    /// recursion met — the same id the gate cache hands out, so repeated
    /// applications of one gate expand its block (twiddles included) once.
    /// Node-keyed like the compute tables, so cleared with them after GC.
    ct_dense_mat: LossyCache<NodeId, u32>,
    /// Pool behind `ct_dense_mat`: column-major `(re, im)` lanes.
    dense_mats: Vec<(Vec<f64>, Vec<f64>)>,
    dense_scratch: DenseScratch,
    dense_applies: u64,
    vroots: FxHashMap<u32, u32>,
    mroots: FxHashMap<u32, u32>,
    /// Weight indices of protected edges (refcounted): roots of the
    /// complex-table compaction, the same way `vroots`/`mroots` are roots of
    /// the node sweep.
    wroots: FxHashMap<u32, u32>,
    gc_threshold: Option<usize>,
    gc_runs: usize,
    allocated_nodes: u64,
    reclaimed_nodes: u64,
    complex_reclaimed: u64,
    /// Node-budget meter of a shared workspace: fresh allocations into the
    /// store, re-snapped to the store's live count after a sole-attachment
    /// collection (see `charge_allocation`). Unused in private mode.
    charged_nodes: usize,
    peak_nodes: usize,
    budget: Budget,
    exceeded: Option<LimitExceeded>,
    allocs_since_check: u32,
    /// Present when this package is a workspace of a [`SharedStore`]; all
    /// node/weight canonicalisation then goes through the store.
    shared: Option<SharedHandle>,
}

impl DdPackage {
    /// Creates a package for diagrams over `n_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` exceeds `u16::MAX` (the level encoding width).
    pub fn new(n_qubits: usize) -> Self {
        DdPackage::with_budget(n_qubits, Budget::unlimited())
    }

    /// Creates a package whose operations observe `budget`: cancellation via
    /// the budget's [`CancelToken`](crate::CancelToken), the wall-clock
    /// deadline and the node limit are checked inside node allocation, the
    /// one funnel every diagram operation passes through.
    ///
    /// Once a limit trips, [`limit_exceeded`](Self::limit_exceeded) reports
    /// it, in-flight recursive operations unwind quickly by returning zero
    /// edges, and no further compute-table entries are recorded (so the
    /// memoisation is never poisoned by partial results). A package in this
    /// state must be discarded; results obtained after the trip are
    /// meaningless.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` exceeds `u16::MAX` (the level encoding width).
    pub fn with_budget(n_qubits: usize, budget: Budget) -> Self {
        DdPackage::with_config(n_qubits, budget, MemoryConfig::default())
    }

    /// Creates a package with explicit [`MemoryConfig`] sizing.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` exceeds `u16::MAX` (the level encoding width).
    pub fn with_config(n_qubits: usize, budget: Budget, config: MemoryConfig) -> Self {
        assert!(
            n_qubits <= u16::MAX as usize,
            "qubit count {n_qubits} exceeds the supported maximum"
        );
        let binary = config.binary_cache_bits;
        let unary = config.unary_cache_bits;
        DdPackage {
            n_qubits,
            ctab: ComplexTable::new(),
            vnodes: Vec::new(),
            vfree: Vec::new(),
            vunique: (0..n_qubits).map(|_| UniqueTable::new()).collect(),
            mnodes: Vec::new(),
            mfree: Vec::new(),
            munique: (0..n_qubits).map(|_| UniqueTable::new()).collect(),
            ct_mat_vec: LossyCache::new("mat_vec", binary),
            ct_mat_mat: LossyCache::new("mat_mat", binary),
            ct_add_vec: LossyCache::new("add_vec", binary),
            ct_add_mat: LossyCache::new("add_mat", binary),
            ct_transpose: LossyCache::new("transpose", unary),
            ct_inner: LossyCache::new("inner", unary),
            ct_trace: LossyCache::new("trace", unary),
            vnorm_cache: LossyCache::new("vnorm", unary),
            gate_cache: LossyCache::new("gate", config.gate_cache_bits),
            ident_cache: vec![MEdge::ONE],
            dense_cutoff: config.dense_cutoff.min(DENSE_CUTOFF_MAX) as usize,
            ct_dense_mat: LossyCache::new("dense_mat", 10),
            dense_mats: Vec::new(),
            dense_scratch: DenseScratch::default(),
            dense_applies: 0,
            vroots: FxHashMap::default(),
            mroots: FxHashMap::default(),
            wroots: FxHashMap::default(),
            gc_threshold: config.gc_threshold,
            gc_runs: 0,
            allocated_nodes: 0,
            reclaimed_nodes: 0,
            complex_reclaimed: 0,
            charged_nodes: 0,
            peak_nodes: 0,
            budget,
            exceeded: None,
            allocs_since_check: 0,
            shared: None,
        }
    }

    /// Creates a workspace attached to `store` (see
    /// [`SharedStore::workspace_with`]): node and weight canonicalisation go
    /// through the store's concurrent tables, while the lossy compute caches,
    /// the budget and all telemetry stay thread-local.
    pub(crate) fn attached(
        store: &Arc<SharedStore>,
        n_qubits: usize,
        budget: Budget,
        config: MemoryConfig,
    ) -> Self {
        let mut package = DdPackage::with_config(n_qubits, budget, config);
        package.shared = Some(SharedHandle::new(store));
        package
    }

    /// Creates either a workspace attached to `store` or a private package:
    /// the one-liner the verification schemes use to honour an optional
    /// shared store without duplicating construction logic.
    pub fn with_store(store: Option<&Arc<SharedStore>>, n_qubits: usize, budget: Budget) -> Self {
        DdPackage::with_store_config(store, n_qubits, budget, MemoryConfig::default())
    }

    /// [`with_store`](Self::with_store) with explicit [`MemoryConfig`]
    /// sizing: the portfolio scheduler uses this to hand each verification
    /// scheme a garbage-collection threshold tuned from recorded peak-node
    /// telemetry instead of the static default.
    pub fn with_store_config(
        store: Option<&Arc<SharedStore>>,
        n_qubits: usize,
        budget: Budget,
        config: MemoryConfig,
    ) -> Self {
        match store {
            Some(store) => store.workspace_with(n_qubits, budget, config),
            None => DdPackage::with_config(n_qubits, budget, config),
        }
    }

    /// The shared store this package is attached to, if any.
    pub fn shared_store(&self) -> Option<&Arc<SharedStore>> {
        self.shared.as_ref().map(|handle| &handle.store)
    }

    /// Number of qubits this package was created for.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The budget this package observes.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Returns the limit that stopped this package, if any tripped.
    ///
    /// Callers of diagram operations on a budgeted package must check this
    /// after each operation: once set, operation results are zero edges and
    /// carry no meaning.
    #[inline]
    pub fn limit_exceeded(&self) -> Option<LimitExceeded> {
        self.exceeded
    }

    /// Budget bookkeeping on the node-allocation path.
    ///
    /// The cancel flag is an atomic shared across threads and the deadline
    /// needs a clock read, so both are polled only every 256 allocations; the
    /// node cap is a plain comparison and is checked every time.
    ///
    /// On a shared-store workspace the cap meters `charged_nodes`: the
    /// nodes *this workspace* allocated (store misses it paid for), not the
    /// store-wide live count — budgets keep their per-scheme meaning in a
    /// race, and reusing a node another scheme interned costs nothing; that
    /// reuse is the point of sharing. While collection is deferred (other
    /// workspaces attached) nothing is reclaimed, so the charge is also the
    /// scheme's true live contribution to the store; after a
    /// sole-attachment collection the charge re-snaps to the store's live
    /// count, mirroring how a private package's live meter shrinks under GC.
    #[inline]
    fn charge_allocation(&mut self) {
        if self.exceeded.is_some() {
            return;
        }
        if let Some(max) = self.budget.max_nodes() {
            let metered = match &self.shared {
                None => self.live_nodes(),
                Some(_) => self.charged_nodes,
            };
            if metered > max {
                self.exceeded = Some(LimitExceeded::NodeLimit);
                return;
            }
        }
        self.allocs_since_check = self.allocs_since_check.wrapping_add(1);
        if self.allocs_since_check & 0xFF == 0 {
            if self.budget.is_cancelled() {
                self.exceeded = Some(LimitExceeded::Cancelled);
            } else if self.budget.deadline_exceeded() {
                self.exceeded = Some(LimitExceeded::Deadline);
            }
        }
    }

    /// Returns allocation statistics (live node counts).
    ///
    /// For a workspace of a [`SharedStore`], the counts are store-wide: the
    /// nodes are collectively owned, there is no per-workspace arena.
    pub fn stats(&self) -> PackageStats {
        match &self.shared {
            None => PackageStats {
                vector_nodes: self.vnodes.len() - self.vfree.len(),
                matrix_nodes: self.mnodes.len() - self.mfree.len(),
                complex_values: self.ctab.len(),
            },
            Some(handle) => PackageStats {
                vector_nodes: handle.store.vlive.load(Ordering::Relaxed),
                matrix_nodes: handle.store.mlive.load(Ordering::Relaxed),
                complex_values: handle.store.ctab.len(),
            },
        }
    }

    /// Live nodes across both arenas (store-wide for shared workspaces, so
    /// node budgets meter the collective heap they contribute to).
    #[inline]
    fn live_nodes(&self) -> usize {
        match &self.shared {
            None => self.vnodes.len() - self.vfree.len() + self.mnodes.len() - self.mfree.len(),
            Some(handle) => handle.store.live_nodes(),
        }
    }

    /// Drops all memoisation tables (unique tables and nodes are kept).
    ///
    /// Useful between independent computations to bound memory growth. The
    /// hit/lookup counters survive; the gate-diagram cache is dropped too.
    pub fn clear_compute_tables(&mut self) {
        self.clear_node_keyed_caches();
        self.gate_cache.clear();
    }

    /// Clears the memoisation tables whose entries reference nodes — called
    /// after a collection, when freed arena slots may be recycled under the
    /// same [`NodeId`]s. The gate cache is kept: its entries are collection
    /// roots and therefore stay valid.
    fn clear_node_keyed_caches(&mut self) {
        self.ct_mat_vec.clear();
        self.ct_mat_mat.clear();
        self.ct_add_vec.clear();
        self.ct_add_mat.clear();
        self.ct_transpose.clear();
        self.ct_inner.clear();
        self.ct_trace.clear();
        self.vnorm_cache.clear();
        // Dense expansions are node-keyed too; the cache and its backing
        // pool are cleared together so an index can never dangle.
        self.ct_dense_mat.clear();
        self.dense_mats.clear();
    }

    // ------------------------------------------------------------------
    // Roots, garbage collection and memory telemetry
    // ------------------------------------------------------------------

    /// Refcounts the weight of a protected edge so complex-table compaction
    /// keeps it (terminal edges carry meaningful weights too).
    fn protect_weight(&mut self, weight: CIdx) {
        if !weight.is_zero() && !weight.is_one() {
            *self.wroots.entry(weight.0).or_insert(0) += 1;
        }
    }

    /// Releases one weight protection.
    fn unprotect_weight(&mut self, weight: CIdx) {
        if weight.is_zero() || weight.is_one() {
            return;
        }
        if let Some(count) = self.wroots.get_mut(&weight.0) {
            *count -= 1;
            if *count == 0 {
                self.wroots.remove(&weight.0);
            }
        } else {
            debug_assert!(false, "unprotect of a weight without matching protect");
        }
    }

    /// Registers a vector edge as a garbage-collection root (refcounted);
    /// the edge's node survives the sweep and its weight survives the
    /// complex-table compaction.
    ///
    /// Protect every edge you hold across other package operations; balance
    /// with [`unprotect_vector`](Self::unprotect_vector).
    pub fn protect_vector(&mut self, e: VEdge) {
        if !e.is_terminal() {
            *self.vroots.entry(e.node.0).or_insert(0) += 1;
        }
        self.protect_weight(e.weight);
    }

    /// Releases one protection of a vector edge.
    pub fn unprotect_vector(&mut self, e: VEdge) {
        self.unprotect_weight(e.weight);
        if e.is_terminal() {
            return;
        }
        if let Some(count) = self.vroots.get_mut(&e.node.0) {
            *count -= 1;
            if *count == 0 {
                self.vroots.remove(&e.node.0);
            }
        } else {
            debug_assert!(false, "unprotect_vector without matching protect");
        }
    }

    /// Registers a matrix edge as a garbage-collection root (refcounted).
    pub fn protect_matrix(&mut self, e: MEdge) {
        if !e.is_terminal() {
            *self.mroots.entry(e.node.0).or_insert(0) += 1;
        }
        self.protect_weight(e.weight);
    }

    /// Releases one protection of a matrix edge.
    pub fn unprotect_matrix(&mut self, e: MEdge) {
        self.unprotect_weight(e.weight);
        if e.is_terminal() {
            return;
        }
        if let Some(count) = self.mroots.get_mut(&e.node.0) {
            *count -= 1;
            if *count == 0 {
                self.mroots.remove(&e.node.0);
            }
        } else {
            debug_assert!(false, "unprotect_matrix without matching protect");
        }
    }

    /// The automatic-collection threshold currently in force.
    pub fn gc_threshold(&self) -> Option<usize> {
        self.gc_threshold
    }

    /// Replaces the automatic-collection threshold (`None` disables).
    pub fn set_gc_threshold(&mut self, threshold: Option<usize>) {
        self.gc_threshold = threshold;
    }

    /// Mark-and-sweep collection from the registered roots (plus the
    /// identity and gate caches). Returns the number of reclaimed nodes.
    ///
    /// Node-keyed compute tables are invalidated because freed arena slots
    /// are recycled under the same ids. The complex table is compacted in
    /// the same pass: weights referenced by no surviving node, protected
    /// edge or cached gate diagram are freed for reuse.
    ///
    /// On a workspace of a [`SharedStore`] with other workspaces attached,
    /// this requests a **safe-point barrier** collection: the other
    /// workspaces park at their next operation safe point with their roots
    /// published, and this workspace sweeps on behalf of all of them (see
    /// the `dd::store` module docs). If an attached workspace does not
    /// reach a safe point within the barrier patience (it is idle or stuck
    /// in one very long operation), the request is abandoned and `0` is
    /// returned — the old deferral semantics as a fallback.
    pub fn garbage_collect(&mut self) -> usize {
        self.collect_garbage(&[], &[])
    }

    /// [`garbage_collect`](Self::garbage_collect) with additional temporary
    /// roots — the operand edges of an in-flight operation entry point.
    pub fn collect_garbage(&mut self, keep_vectors: &[VEdge], keep_matrices: &[MEdge]) -> usize {
        if self.shared.is_some() {
            return match self.collect_shared(keep_vectors, keep_matrices) {
                SharedGcOutcome::Collected(reclaimed) => reclaimed,
                SharedGcOutcome::Contended | SharedGcOutcome::Aborted => 0,
            };
        }
        self.collect_private(keep_vectors, keep_matrices)
    }

    /// Private-package mark-and-sweep (the non-shared half of
    /// [`collect_garbage`](Self::collect_garbage)).
    fn collect_private(&mut self, keep_vectors: &[VEdge], keep_matrices: &[MEdge]) -> usize {
        // --- mark ---------------------------------------------------------
        let mut vmark = vec![false; self.vnodes.len()];
        let mut mmark = vec![false; self.mnodes.len()];
        for &id in self.vroots.keys() {
            mark_vector(&self.vnodes, &mut vmark, NodeId(id));
        }
        for e in keep_vectors {
            if !e.is_zero() {
                mark_vector(&self.vnodes, &mut vmark, e.node);
            }
        }
        for &id in self.mroots.keys() {
            mark_matrix(&self.mnodes, &mut mmark, NodeId(id));
        }
        for e in keep_matrices {
            if !e.is_zero() {
                mark_matrix(&self.mnodes, &mut mmark, e.node);
            }
        }
        for e in &self.ident_cache {
            if !e.is_zero() {
                mark_matrix(&self.mnodes, &mut mmark, e.node);
            }
        }
        for (_, e) in self.gate_cache.entries() {
            if !e.is_zero() {
                mark_matrix(&self.mnodes, &mut mmark, e.node);
            }
        }

        // --- sweep --------------------------------------------------------
        let mut reclaimed = 0usize;
        for (idx, marked) in vmark.iter().enumerate() {
            if !marked && !self.vnodes[idx].is_free() {
                self.vnodes[idx] = VNode::FREE;
                self.vfree.push(idx as u32);
                reclaimed += 1;
            }
        }
        for (idx, marked) in mmark.iter().enumerate() {
            if !marked && !self.mnodes[idx].is_free() {
                self.mnodes[idx] = MNode::FREE;
                self.mfree.push(idx as u32);
                reclaimed += 1;
            }
        }

        // --- rebuild the per-level unique tables --------------------------
        let (vnodes, vunique) = (&self.vnodes, &mut self.vunique);
        for table in vunique.iter_mut() {
            table.clear();
        }
        for (idx, node) in vnodes.iter().enumerate() {
            if !node.is_free() {
                vunique[node.var as usize].insert(fx_hash(node), idx as u32, |id| {
                    fx_hash(&vnodes[id as usize])
                });
            }
        }
        let (mnodes, munique) = (&self.mnodes, &mut self.munique);
        for table in munique.iter_mut() {
            table.clear();
        }
        for (idx, node) in mnodes.iter().enumerate() {
            if !node.is_free() {
                munique[node.var as usize].insert(fx_hash(node), idx as u32, |id| {
                    fx_hash(&mnodes[id as usize])
                });
            }
        }

        // --- compact the complex table ------------------------------------
        let root_medges: Vec<MEdge> = keep_matrices
            .iter()
            .chain(&self.ident_cache)
            .copied()
            .chain(self.gate_cache.entries().map(|(_, e)| *e))
            .collect();
        let cmark = mark_weights(
            &self.vnodes,
            &self.mnodes,
            self.wroots.keys().copied(),
            keep_vectors,
            &root_medges,
            self.ctab.len(),
        );
        let compacted = self.ctab.retain_marked(&cmark) as u64;
        self.complex_reclaimed += compacted;

        self.clear_node_keyed_caches();
        self.gc_runs += 1;
        self.reclaimed_nodes += reclaimed as u64;
        obs::metrics::incr(obs::metrics::DD_GC_RUNS);
        obs::metrics::add(obs::metrics::DD_GC_RECLAIMED, reclaimed as u64);
        obs::metrics::add(obs::metrics::DD_CTAB_COMPACTED, compacted);
        obs::trace::event(
            "gc.private",
            &[
                ("reclaimed", reclaimed.into()),
                ("ctab_compacted", compacted.into()),
            ],
        );
        reclaimed
    }

    /// Shared-store collection: elects this workspace the collector (a
    /// non-blocking `try_lock` of the store's GC lock — blocking here while
    /// another collector waits for the world to park would deadlock) and
    /// either sweeps immediately (sole attachment) or runs the safe-point
    /// barrier protocol of the `dd::store` module docs.
    fn collect_shared(
        &mut self,
        keep_vectors: &[VEdge],
        keep_matrices: &[MEdge],
    ) -> SharedGcOutcome {
        let store = Arc::clone(&self.shared.as_ref().expect("shared workspace").store);
        let _guard = match store.gc_lock.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                // Another workspace is collecting (or attaching). If it is
                // waiting at the barrier, park for it; either way our own
                // request is moot — its sweep serves the whole store.
                if store.gc_requested.load(Ordering::Acquire) {
                    self.park_for_barrier(keep_vectors, keep_matrices);
                }
                return SharedGcOutcome::Contended;
            }
        };
        if store.attached.load(Ordering::Acquire) == 1 {
            // Sole attachment: nothing to coordinate with.
            let span = obs::trace::span("gc.sole", &[("live", store.live_nodes().into())]);
            let reclaimed = self.sweep_shared(&store, keep_vectors, keep_matrices, &[]);
            self.finish_shared_collection(&store, reclaimed, false);
            span.end(&[("reclaimed", reclaimed.into())]);
            return SharedGcOutcome::Collected(reclaimed);
        }

        // --- barrier: stop the world at its safe points -------------------
        // The round guard ends the round however this function exits: if
        // the collector panics mid-sweep, the guard's Drop still lowers the
        // flag and advances the request id so parked workspaces wake up
        // instead of waiting on the dead round forever.
        let round_span = obs::trace::span(
            "gc.barrier",
            &[
                ("live", store.live_nodes().into()),
                ("attached", store.attached.load(Ordering::Acquire).into()),
            ],
        );
        let round_start = Instant::now();
        let round = BarrierRound::begin(&store);
        let published = {
            let mut barrier = crate::store::lock(&store.barrier);
            let patience = Instant::now() + BARRIER_PATIENCE;
            loop {
                // Detaching workspaces shrink the quorum (a finished scheme
                // simply leaves); parked workspaces cannot detach, so the
                // published count never overshoots a stale quorum.
                let quorum = store.attached.load(Ordering::Acquire) - 1;
                if barrier.published.len() >= quorum {
                    break std::mem::take(&mut barrier.published);
                }
                if Instant::now() >= patience {
                    // An attached workspace is not reaching safe points
                    // (idle, or inside one very long operation): give up and
                    // fall back to deferral rather than stall its race. The
                    // round guard releases the parked workspaces.
                    let parked = barrier.published.len();
                    drop(barrier);
                    let waited = round_start.elapsed().as_nanos() as u64;
                    store.barrier_wait_ns.fetch_add(waited, Ordering::Relaxed);
                    store.barrier_deferrals.fetch_add(1, Ordering::Relaxed);
                    obs::metrics::incr(obs::metrics::DD_GC_BARRIER_DEFERRALS);
                    round_span.end(&[
                        ("outcome", "deferred".into()),
                        ("parked", parked.into()),
                        (
                            "quorum",
                            (store.attached.load(Ordering::Acquire) - 1).into(),
                        ),
                    ]);
                    return SharedGcOutcome::Aborted;
                }
                let (guard, _) = store
                    .barrier_cv
                    .wait_timeout(barrier, patience - Instant::now())
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                barrier = guard;
            }
            // The barrier mutex drops here; parked workspaces stay blocked
            // (their round's request id is still current and the flag is
            // still up), and no workspace can attach while we hold gc_lock.
        };

        // Request -> park phase is over: every other workspace is parked.
        let all_parked = Instant::now();
        store.barrier_wait_ns.fetch_add(
            (all_parked - round_start).as_nanos() as u64,
            Ordering::Relaxed,
        );
        obs::trace::event(
            "gc.barrier.parked",
            &[
                ("parked", published.len().into()),
                (
                    "wait_us",
                    ((all_parked - round_start).as_micros() as u64).into(),
                ),
            ],
        );

        let reclaimed = self.sweep_shared(&store, keep_vectors, keep_matrices, &published);
        let swept = Instant::now();
        obs::trace::event(
            "gc.barrier.sweep",
            &[("sweep_us", ((swept - all_parked).as_micros() as u64).into())],
        );

        round.complete();
        store.gc_barrier_runs.fetch_add(1, Ordering::Relaxed);
        self.finish_shared_collection(&store, reclaimed, true);
        obs::metrics::incr(obs::metrics::DD_GC_BARRIER_RUNS);
        obs::metrics::observe_ns(
            obs::metrics::HIST_GC_ROUND_NS,
            round_start.elapsed().as_nanos() as u64,
        );
        round_span.end(&[
            ("outcome", "collected".into()),
            ("reclaimed", reclaimed.into()),
            ("parked", published.len().into()),
        ]);
        SharedGcOutcome::Collected(reclaimed)
    }

    /// Parks this workspace at the store's GC barrier: publishes its roots
    /// (protected edges, the in-flight operands, the identity and local
    /// gate caches, the memo-table weight indices) and blocks until the
    /// collector releases the barrier, then re-pins whatever generation a
    /// completed collection published.
    fn park_for_barrier(&mut self, keep_vectors: &[VEdge], keep_matrices: &[MEdge]) {
        let store = Arc::clone(&self.shared.as_ref().expect("shared workspace").store);
        let roots = self.published_roots(keep_vectors, keep_matrices);
        let mut barrier = crate::store::lock(&store.barrier);
        if !store.gc_requested.load(Ordering::Acquire) {
            return; // the round ended before we got here
        }
        let park_start = Instant::now();
        let request = barrier.request;
        let generation = barrier.generation;
        barrier.published.push(roots);
        store.barrier_cv.notify_all();
        while barrier.request == request && store.gc_requested.load(Ordering::Acquire) {
            barrier = store
                .barrier_cv
                .wait(barrier)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        let collected = barrier.generation != generation;
        drop(barrier);
        let parked_ns = park_start.elapsed().as_nanos() as u64;
        store
            .barrier_wait_ns
            .fetch_add(parked_ns, Ordering::Relaxed);
        obs::metrics::observe_ns(obs::metrics::HIST_GC_PARK_NS, parked_ns);
        obs::trace::event(
            "gc.park",
            &[
                ("park_us", (parked_ns / 1_000).into()),
                ("collected", collected.into()),
            ],
        );
        if collected {
            // A new generation was published: re-pin it (dropping the epoch
            // tails/overlays — the weight memos survive, their roots were
            // marked) and clear the node-keyed caches, whose NodeId keys may
            // be recycled from now on. Protected edges kept their ids, so
            // held diagrams stay valid and pointer-identical.
            self.clear_node_keyed_caches();
            self.shared.as_mut().expect("shared workspace").repin();
            self.charged_nodes = self.charged_nodes.min(store.live_nodes());
        }
    }

    /// Snapshot of this workspace's GC roots for publication at the barrier.
    fn published_roots(
        &self,
        keep_vectors: &[VEdge],
        keep_matrices: &[MEdge],
    ) -> crate::store::PublishedRoots {
        let medges: Vec<MEdge> = keep_matrices
            .iter()
            .chain(&self.ident_cache)
            .copied()
            .chain(self.gate_cache.entries().map(|(_, e)| *e))
            .filter(|e| !e.is_zero())
            .collect();
        // The weight memos survive collections, so every index they
        // reference must stay live (and index-stable) across the sweep.
        let mut wroots: Vec<u32> = self.wroots.keys().copied().collect();
        if let Some(handle) = &self.shared {
            wroots.extend(handle.memo_weight_roots());
        }
        crate::store::PublishedRoots {
            vroots: self.vroots.keys().copied().collect(),
            mroots: self.mroots.keys().copied().collect(),
            wroots,
            vedges: keep_vectors
                .iter()
                .copied()
                .filter(|e| !e.is_zero())
                .collect(),
            medges,
        }
    }

    /// Sweeps the shared arenas from this workspace's roots, the operand
    /// edges, every published (parked-workspace) root set and the shared
    /// gate cache; rebuilds the sharded unique tables and compacts the
    /// shared complex table. Caller must hold the store's `gc_lock` with
    /// every other attached workspace parked (or be the sole attachment).
    fn sweep_shared(
        &mut self,
        store: &SharedStore,
        keep_vectors: &[VEdge],
        keep_matrices: &[MEdge],
        published: &[crate::store::PublishedRoots],
    ) -> usize {
        // --- assemble the full root sets ------------------------------
        // The collector's own roots take the exact shape a parked workspace
        // would publish; the shared gate cache is store-wide and marked
        // once on top.
        let own = self.published_roots(keep_vectors, keep_matrices);
        let mut varena = crate::store::write(&store.varena);
        let mut marena = crate::store::write(&store.marena);
        let mut root_vedges: Vec<VEdge> = Vec::new();
        let mut root_medges: Vec<MEdge> = crate::store::lock(&store.gate_cache)
            .values()
            .map(|(e, _)| *e)
            .filter(|e| !e.is_zero())
            .collect();
        let mut vroot_ids: Vec<u32> = Vec::new();
        let mut mroot_ids: Vec<u32> = Vec::new();
        let mut wroot_ids: Vec<u32> = Vec::new();
        for roots in std::iter::once(&own).chain(published) {
            root_vedges.extend(roots.vedges.iter().copied().filter(|e| !e.is_zero()));
            root_medges.extend(roots.medges.iter().copied().filter(|e| !e.is_zero()));
            vroot_ids.extend_from_slice(&roots.vroots);
            mroot_ids.extend_from_slice(&roots.mroots);
            wroot_ids.extend_from_slice(&roots.wroots);
        }

        // --- mark -----------------------------------------------------
        let mut vmark = vec![false; varena.len()];
        let mut mmark = vec![false; marena.len()];
        for &id in &vroot_ids {
            mark_vector(&varena, &mut vmark, NodeId(id));
        }
        for e in &root_vedges {
            mark_vector(&varena, &mut vmark, e.node);
        }
        for &id in &mroot_ids {
            mark_matrix(&marena, &mut mmark, NodeId(id));
        }
        for e in &root_medges {
            mark_matrix(&marena, &mut mmark, e.node);
        }

        // --- sweep ----------------------------------------------------
        let mut reclaimed = 0usize;
        {
            let mut vfree = crate::store::lock(&store.vfree);
            for (idx, marked) in vmark.iter().enumerate() {
                if !marked && !varena[idx].is_free() {
                    varena[idx] = VNode::FREE;
                    vfree.push(idx as u32);
                    reclaimed += 1;
                }
            }
        }
        {
            let mut mfree = crate::store::lock(&store.mfree);
            for (idx, marked) in mmark.iter().enumerate() {
                if !marked && !marena[idx].is_free() {
                    marena[idx] = MNode::FREE;
                    mfree.push(idx as u32);
                    reclaimed += 1;
                }
            }
        }

        // --- rebuild the sharded unique tables ------------------------
        // Take each shard lock exactly once: every other workspace is
        // parked (or absent) and we hold both arena write locks, so nothing
        // contends — per-node locking would just pay 2N uncontended mutex
        // round-trips.
        let ws_id = self.shared.as_ref().expect("shared workspace").ws_id;
        let mut vlive = 0usize;
        {
            let mut shards: Vec<_> = store.vshards.iter().map(crate::store::lock).collect();
            for shard in shards.iter_mut() {
                shard.clear();
            }
            for (idx, node) in varena.iter().enumerate() {
                if !node.is_free() {
                    vlive += 1;
                    let hash = fx_hash(node);
                    shards[(hash as usize) & (crate::store::SHARDS - 1)].insert(
                        *node,
                        crate::store::Interned {
                            id: idx as u32,
                            owner: ws_id,
                        },
                    );
                }
            }
        }
        let mut mlive = 0usize;
        {
            let mut shards: Vec<_> = store.mshards.iter().map(crate::store::lock).collect();
            for shard in shards.iter_mut() {
                shard.clear();
            }
            for (idx, node) in marena.iter().enumerate() {
                if !node.is_free() {
                    mlive += 1;
                    let hash = fx_hash(node);
                    shards[(hash as usize) & (crate::store::SHARDS - 1)].insert(
                        *node,
                        crate::store::Interned {
                            id: idx as u32,
                            owner: ws_id,
                        },
                    );
                }
            }
        }
        store.vlive.store(vlive, Ordering::Relaxed);
        store.mlive.store(mlive, Ordering::Relaxed);

        // --- compact the shared complex table -------------------------
        let cmark = mark_weights(
            &varena,
            &marena,
            wroot_ids.iter().copied(),
            &root_vedges,
            &root_medges,
            store.ctab.len(),
        );
        let compacted = store.ctab.retain_marked(&cmark) as u64;
        self.complex_reclaimed += compacted;
        obs::metrics::add(obs::metrics::DD_CTAB_COMPACTED, compacted);

        // --- publish the post-sweep generation snapshot ---------------
        // Both arena write locks are still held and the table was just
        // compacted, so the snapshot is consistent by construction; parked
        // workspaces re-pin it when the barrier releases.
        store.publish_generation(&varena, &marena);
        reclaimed
    }

    /// Post-sweep bookkeeping of the collecting workspace.
    fn finish_shared_collection(&mut self, store: &SharedStore, reclaimed: usize, barrier: bool) {
        store
            .reclaimed
            .fetch_add(reclaimed as u64, Ordering::Relaxed);
        store.gc_runs.fetch_add(1, Ordering::Relaxed);
        // Freed slots may be recycled under the same ids from now on: clear
        // the node-keyed caches and re-pin the just-published generation
        // (the weight memos survive — the sweep marked their roots).
        self.clear_node_keyed_caches();
        self.shared.as_mut().expect("shared workspace").repin();
        // Re-snap the node-budget meter, mirroring how a private package's
        // live meter shrinks under GC: a sole survivor owns everything still
        // live; after a barrier sweep the survivors are shared between the
        // parked racers, so the charge is only clamped, never re-attributed.
        self.charged_nodes = if barrier {
            self.charged_nodes.min(store.live_nodes())
        } else {
            store.live_nodes()
        };
        self.gc_runs += 1;
        self.reclaimed_nodes += reclaimed as u64;
        obs::metrics::incr(obs::metrics::DD_GC_RUNS);
        obs::metrics::add(obs::metrics::DD_GC_RECLAIMED, reclaimed as u64);
    }

    /// Operation safe point: polls the shared store's barrier request (park
    /// if a collector is waiting), the wall-clock deadline (cache-hit-heavy
    /// stretches allocate nothing, and a barrier park can outlast the
    /// deadline — both must still trip it) and the automatic-GC threshold.
    /// The operands of the operation about to run are passed as temporary
    /// roots.
    fn safe_point(&mut self, keep_vectors: &[VEdge], keep_matrices: &[MEdge]) {
        if let Some(handle) = &self.shared {
            if handle.store.gc_requested.load(Ordering::Acquire) {
                self.park_for_barrier(keep_vectors, keep_matrices);
            }
        }
        if self.exceeded.is_none() && self.budget.deadline_exceeded() {
            self.exceeded = Some(LimitExceeded::Deadline);
        }
        self.maybe_gc(keep_vectors, keep_matrices);
    }

    /// Automatic-collection check at an operation safe point.
    #[inline]
    fn maybe_gc(&mut self, keep_vectors: &[VEdge], keep_matrices: &[MEdge]) {
        let Some(threshold) = self.gc_threshold else {
            return;
        };
        if self.exceeded.is_some() || self.live_nodes() < threshold {
            return;
        }
        let outcome = if self.shared.is_some() {
            self.collect_shared(keep_vectors, keep_matrices)
        } else {
            SharedGcOutcome::Collected(self.collect_private(keep_vectors, keep_matrices))
        };
        match outcome {
            // A competitor is already collecting on behalf of the store;
            // re-check at the next safe point.
            SharedGcOutcome::Contended => {}
            // An uncooperative attachment stalled the barrier: back off so
            // the next safe points do not re-pay the barrier patience.
            SharedGcOutcome::Aborted => {
                self.gc_threshold = Some(threshold.saturating_mul(2));
            }
            SharedGcOutcome::Collected(reclaimed) => {
                // Mostly-live heap: double the threshold instead of
                // thrashing.
                if reclaimed * 4 < threshold {
                    self.gc_threshold = Some(threshold.saturating_mul(2));
                }
            }
        }
    }

    /// Memory-system telemetry (see [`MemoryStats`]).
    pub fn memory_stats(&self) -> MemoryStats {
        let mut compute_lookups = 0;
        let mut compute_hits = 0;
        for counters in self.compute_table_counters() {
            compute_lookups += counters.lookups;
            compute_hits += counters.hits;
        }
        let gate = self.gate_cache.counters();
        let package_stats = self.stats();
        let (complex_values, complex_entries, shared_nodes, intern_hits, cross_thread_hits) =
            match &self.shared {
                None => (self.ctab.len(), self.ctab.live_len(), 0, 0, 0),
                Some(handle) => (
                    handle.store.ctab.len(),
                    handle.store.ctab.live_len(),
                    handle.store.live_nodes(),
                    handle.intern_hits,
                    handle.cross_thread_hits,
                ),
            };
        MemoryStats {
            live_vector_nodes: package_stats.vector_nodes,
            live_matrix_nodes: package_stats.matrix_nodes,
            peak_nodes: self.peak_nodes,
            allocated_nodes: self.allocated_nodes,
            reclaimed_nodes: self.reclaimed_nodes,
            gc_runs: self.gc_runs,
            complex_values,
            complex_entries,
            complex_reclaimed: self.complex_reclaimed,
            shared_nodes,
            intern_hits,
            cross_thread_hits,
            compute_lookups,
            compute_hits,
            gate_lookups: gate.lookups,
            gate_hits: gate.hits,
        }
    }

    /// Per-table hit/lookup counters of the eight compute tables.
    pub fn compute_table_counters(&self) -> [CacheCounters; 8] {
        [
            self.ct_mat_vec.counters(),
            self.ct_mat_mat.counters(),
            self.ct_add_vec.counters(),
            self.ct_add_mat.counters(),
            self.ct_transpose.counters(),
            self.ct_inner.counters(),
            self.ct_trace.counters(),
            self.vnorm_cache.counters(),
        ]
    }

    /// Counters of the gate-diagram cache.
    pub fn gate_cache_counters(&self) -> CacheCounters {
        self.gate_cache.counters()
    }

    /// Folds this package's per-op cache counters into the process-wide
    /// [`obs::metrics`] registry. Called once from `Drop` — the hot paths
    /// keep their existing plain counters and pay nothing extra per op.
    fn fold_cache_counters(&self) {
        let mut lookups = 0;
        let mut hits = 0;
        for counters in self.compute_table_counters() {
            lookups += counters.lookups;
            hits += counters.hits;
        }
        obs::metrics::add(obs::metrics::DD_COMPUTE_LOOKUPS, lookups);
        obs::metrics::add(obs::metrics::DD_COMPUTE_HITS, hits);
        let gate = self.gate_cache.counters();
        obs::metrics::add(obs::metrics::DD_GATE_LOOKUPS, gate.lookups);
        obs::metrics::add(obs::metrics::DD_GATE_HITS, gate.hits);
        obs::metrics::add(obs::metrics::DD_DENSE_APPLIES, self.dense_applies);
    }

    // ------------------------------------------------------------------
    // Complex value access
    // ------------------------------------------------------------------

    /// Interns a complex value and returns its index.
    #[inline]
    pub fn intern(&mut self, value: Complex) -> CIdx {
        match &mut self.shared {
            None => self.ctab.lookup(value),
            Some(handle) => handle.intern(value),
        }
    }

    /// Value behind an interned index, from the private table or the shared
    /// store's mirror. All weight reads funnel through here.
    #[inline]
    fn cval(&self, idx: CIdx) -> Complex {
        match &self.shared {
            None => self.ctab.value(idx),
            Some(handle) => handle.value(idx),
        }
    }

    /// Interns the product of two interned weights.
    #[inline]
    fn cmul(&mut self, a: CIdx, b: CIdx) -> CIdx {
        match &mut self.shared {
            None => self.ctab.mul(a, b),
            Some(handle) => handle.mul(a, b),
        }
    }

    /// Interns the sum of two interned weights.
    #[inline]
    fn cadd(&mut self, a: CIdx, b: CIdx) -> CIdx {
        match &mut self.shared {
            None => self.ctab.add(a, b),
            Some(handle) => handle.add(a, b),
        }
    }

    /// Interns the quotient of two interned weights.
    #[inline]
    fn cdiv(&mut self, a: CIdx, b: CIdx) -> CIdx {
        match &mut self.shared {
            None => self.ctab.div(a, b),
            Some(handle) => handle.div(a, b),
        }
    }

    /// Interns the conjugate of an interned weight.
    #[inline]
    fn cconj(&mut self, a: CIdx) -> CIdx {
        match &mut self.shared {
            None => self.ctab.conj(a),
            Some(handle) => handle.conj(a),
        }
    }

    /// Returns the complex value behind an index.
    #[inline]
    pub fn value(&self, idx: CIdx) -> Complex {
        self.cval(idx)
    }

    /// The complex weight carried by a vector edge.
    #[inline]
    pub fn vweight(&self, e: VEdge) -> Complex {
        self.cval(e.weight)
    }

    /// The complex weight carried by a matrix edge.
    #[inline]
    pub fn mweight(&self, e: MEdge) -> Complex {
        self.cval(e.weight)
    }

    // ------------------------------------------------------------------
    // Node construction (normalisation + hash consing)
    // ------------------------------------------------------------------

    /// Creates (or reuses) a vector node.
    ///
    /// Nodes are normalised so that the sum of the squared magnitudes of the
    /// child weights is one and the largest-magnitude child weight is real
    /// and positive. The extracted factor is returned on the new edge. This
    /// keeps all weights of a normalised state at magnitude at most one,
    /// which avoids the numerical underflow a plain "divide by the first
    /// non-zero child" rule would cause for wide registers.
    pub fn make_vnode(&mut self, var: u16, mut children: [VEdge; 2]) -> VEdge {
        self.charge_allocation();
        for c in &mut children {
            if c.weight.is_zero() {
                *c = VEdge::ZERO;
            }
        }
        if children.iter().all(|c| c.is_zero()) {
            return VEdge::ZERO;
        }
        // Norm of the child weights and the (first) largest-magnitude child.
        let weights: Vec<Complex> = children.iter().map(|c| self.cval(c.weight)).collect();
        let norm = weights.iter().map(|w| w.norm_sqr()).sum::<f64>().sqrt();
        let max_mag = weights.iter().map(|w| w.abs()).fold(0.0f64, f64::max);
        let anchor = weights
            .iter()
            .find(|w| w.abs() >= max_mag - TOLERANCE)
            .copied()
            .expect("at least one non-zero child");
        // The extracted factor restores both the norm and the anchor phase.
        let scale = anchor / anchor.abs() * norm;
        let top = self.intern(scale);
        for c in &mut children {
            if !c.is_zero() {
                let w = self.cval(c.weight) / scale;
                c.weight = self.intern(w);
                if c.weight.is_zero() {
                    *c = VEdge::ZERO;
                }
            }
        }
        let node = VNode { var, children };
        let id = self.intern_vnode(node);
        VEdge::new(id, top)
    }

    /// Hash-conses a vector node: returns the existing id or allocates one
    /// (recycling a freed arena slot when available).
    fn intern_vnode(&mut self, node: VNode) -> NodeId {
        if let Some(handle) = &mut self.shared {
            let (id, fresh) = handle.intern_vnode(node);
            if fresh {
                self.allocated_nodes += 1;
                self.charged_nodes += 1;
                self.peak_nodes = self.peak_nodes.max(handle.store.live_nodes());
            }
            return id;
        }
        let level = node.var as usize;
        let hash = fx_hash(&node);
        let vnodes = &self.vnodes;
        if let Some(id) = self.vunique[level].find(hash, |id| vnodes[id as usize] == node) {
            return NodeId(id);
        }
        let idx = match self.vfree.pop() {
            Some(idx) => {
                self.vnodes[idx as usize] = node;
                idx
            }
            None => {
                let idx = self.vnodes.len() as u32;
                self.vnodes.push(node);
                idx
            }
        };
        self.allocated_nodes += 1;
        self.peak_nodes = self.peak_nodes.max(self.live_nodes());
        let (vnodes, vunique) = (&self.vnodes, &mut self.vunique);
        vunique[level].insert(hash, idx, |id| fx_hash(&vnodes[id as usize]));
        NodeId(idx)
    }

    /// Creates (or reuses) a matrix node.
    ///
    /// Nodes are normalised by the first child weight whose magnitude equals
    /// the maximum over all children (within tolerance); that child weight
    /// becomes exactly one. All child weights therefore have magnitude at
    /// most one, which keeps round-off well below the interning tolerance.
    pub fn make_mnode(&mut self, var: u16, mut children: [MEdge; 4]) -> MEdge {
        self.charge_allocation();
        for c in &mut children {
            if c.weight.is_zero() {
                *c = MEdge::ZERO;
            }
        }
        if children.iter().all(|c| c.is_zero()) {
            return MEdge::ZERO;
        }
        let weights: Vec<Complex> = children.iter().map(|c| self.cval(c.weight)).collect();
        let max_mag = weights.iter().map(|w| w.abs()).fold(0.0f64, f64::max);
        let anchor_idx = weights
            .iter()
            .position(|w| w.abs() >= max_mag - TOLERANCE)
            .expect("at least one non-zero child");
        let top = children[anchor_idx].weight;
        if !top.is_one() {
            for c in &mut children {
                if !c.is_zero() {
                    c.weight = self.cdiv(c.weight, top);
                }
            }
        }
        let node = MNode { var, children };
        let id = self.intern_mnode(node);
        MEdge::new(id, top)
    }

    /// Hash-conses a matrix node; see [`intern_vnode`](Self::intern_vnode).
    fn intern_mnode(&mut self, node: MNode) -> NodeId {
        if let Some(handle) = &mut self.shared {
            let (id, fresh) = handle.intern_mnode(node);
            if fresh {
                self.allocated_nodes += 1;
                self.charged_nodes += 1;
                self.peak_nodes = self.peak_nodes.max(handle.store.live_nodes());
            }
            return id;
        }
        let level = node.var as usize;
        let hash = fx_hash(&node);
        let mnodes = &self.mnodes;
        if let Some(id) = self.munique[level].find(hash, |id| mnodes[id as usize] == node) {
            return NodeId(id);
        }
        let idx = match self.mfree.pop() {
            Some(idx) => {
                self.mnodes[idx as usize] = node;
                idx
            }
            None => {
                let idx = self.mnodes.len() as u32;
                self.mnodes.push(node);
                idx
            }
        };
        self.allocated_nodes += 1;
        self.peak_nodes = self.peak_nodes.max(self.live_nodes());
        let (mnodes, munique) = (&self.mnodes, &mut self.munique);
        munique[level].insert(hash, idx, |id| fx_hash(&mnodes[id as usize]));
        NodeId(idx)
    }

    #[inline]
    pub(crate) fn vnode(&self, id: NodeId) -> VNode {
        match &self.shared {
            None => self.vnodes[id.index()],
            Some(handle) => handle.vnode(id),
        }
    }

    #[inline]
    pub(crate) fn mnode(&self, id: NodeId) -> MNode {
        match &self.shared {
            None => self.mnodes[id.index()],
            Some(handle) => handle.mnode(id),
        }
    }

    /// Successor edges of a non-terminal vector edge.
    ///
    /// # Panics
    ///
    /// Panics when called on a terminal (or zero) edge.
    pub fn vector_children(&self, e: VEdge) -> [VEdge; 2] {
        assert!(!e.is_terminal(), "terminal edges have no children");
        self.vnode(e.node).children
    }

    /// Successor edges of a non-terminal matrix edge in the order
    /// `(row, col) = 00, 01, 10, 11`.
    ///
    /// # Panics
    ///
    /// Panics when called on a terminal (or zero) edge.
    pub fn matrix_children(&self, e: MEdge) -> [MEdge; 4] {
        assert!(!e.is_terminal(), "terminal edges have no children");
        self.mnode(e.node).children
    }

    /// Qubit level of a vector edge, or `None` for terminal edges.
    pub fn vedge_level(&self, e: VEdge) -> Option<u16> {
        if e.is_terminal() {
            None
        } else {
            Some(self.vnode(e.node).var)
        }
    }

    /// Qubit level of a matrix edge, or `None` for terminal edges.
    pub fn medge_level(&self, e: MEdge) -> Option<u16> {
        if e.is_terminal() {
            None
        } else {
            Some(self.mnode(e.node).var)
        }
    }

    // ------------------------------------------------------------------
    // State construction
    // ------------------------------------------------------------------

    /// The all-zeros computational basis state |0...0⟩.
    pub fn zero_state(&mut self) -> VEdge {
        let bits = vec![false; self.n_qubits];
        self.basis_state(&bits)
    }

    /// Computational basis state |b_{n-1} ... b_0⟩ where `bits[q]` is the
    /// value of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the package qubit count.
    pub fn basis_state(&mut self, bits: &[bool]) -> VEdge {
        assert_eq!(bits.len(), self.n_qubits, "basis state length mismatch");
        let mut e = VEdge::ONE;
        for (q, &bit) in bits.iter().enumerate() {
            let children = if bit {
                [VEdge::ZERO, e]
            } else {
                [e, VEdge::ZERO]
            };
            e = self.make_vnode(q as u16, children);
        }
        e
    }

    /// Builds a state-vector decision diagram from dense amplitudes.
    ///
    /// The amplitude at index `i` corresponds to the basis state whose qubit
    /// `q` has value `(i >> q) & 1`.
    ///
    /// # Panics
    ///
    /// Panics if `amplitudes.len() != 2^n`.
    pub fn from_amplitudes(&mut self, amplitudes: &[Complex]) -> VEdge {
        assert_eq!(
            amplitudes.len(),
            1usize << self.n_qubits,
            "amplitude vector has wrong length"
        );
        self.build_amplitudes_rec(amplitudes, self.n_qubits)
    }

    fn build_amplitudes_rec(&mut self, amps: &[Complex], level: usize) -> VEdge {
        if level == 0 {
            let w = self.intern(amps[0]);
            return if w.is_zero() {
                VEdge::ZERO
            } else {
                VEdge::terminal(w)
            };
        }
        let half = amps.len() / 2;
        let lo = self.build_amplitudes_rec(&amps[..half], level - 1);
        let hi = self.build_amplitudes_rec(&amps[half..], level - 1);
        self.make_vnode((level - 1) as u16, [lo, hi])
    }

    /// Expands a vector decision diagram into a dense amplitude vector.
    ///
    /// # Panics
    ///
    /// Panics if the package has more than 24 qubits (the dense vector would
    /// not reasonably fit in memory).
    pub fn amplitudes(&self, v: VEdge) -> Vec<Complex> {
        assert!(
            self.n_qubits <= 24,
            "dense expansion is limited to 24 qubits"
        );
        let mut out = vec![Complex::ZERO; 1usize << self.n_qubits];
        self.amplitudes_rec(v, self.n_qubits, Complex::ONE, 0, &mut out);
        out
    }

    fn amplitudes_rec(
        &self,
        e: VEdge,
        level: usize,
        acc: Complex,
        offset: usize,
        out: &mut [Complex],
    ) {
        if e.is_zero() {
            return;
        }
        let acc = acc * self.cval(e.weight);
        if level == 0 {
            out[offset] = acc;
            return;
        }
        let node = self.vnode(e.node);
        debug_assert_eq!(node.var as usize, level - 1);
        let half = 1usize << (level - 1);
        self.amplitudes_rec(node.children[0], level - 1, acc, offset, out);
        self.amplitudes_rec(node.children[1], level - 1, acc, offset + half, out);
    }

    /// Expands a vector decision diagram into dense structure-of-arrays
    /// amplitude lanes (the layout the [`kernels`](crate::kernels) operate
    /// on). `re`/`im` are cleared and zero-filled to `2^n_qubits` first, so
    /// callers can reuse their buffers across calls.
    ///
    /// # Panics
    ///
    /// Panics if the package has more than 24 qubits (same bound as
    /// [`amplitudes`](Self::amplitudes)).
    pub fn amplitude_lanes(&self, v: VEdge, re: &mut Vec<f64>, im: &mut Vec<f64>) {
        assert!(
            self.n_qubits <= 24,
            "dense expansion is limited to 24 qubits"
        );
        let len = 1usize << self.n_qubits;
        re.clear();
        re.resize(len, 0.0);
        im.clear();
        im.resize(len, 0.0);
        self.expand_vedge_rec(v, self.n_qubits, Complex::ONE, 0, re, im);
    }

    /// Amplitude of a single computational basis state.
    pub fn amplitude(&self, v: VEdge, basis_index: usize) -> Complex {
        let mut acc = Complex::ONE;
        let mut e = v;
        for level in (0..self.n_qubits).rev() {
            if e.is_zero() {
                return Complex::ZERO;
            }
            acc *= self.cval(e.weight);
            let node = self.vnode(e.node);
            debug_assert_eq!(node.var as usize, level);
            let bit = (basis_index >> level) & 1;
            e = node.children[bit];
        }
        if e.is_zero() {
            return Complex::ZERO;
        }
        acc * self.cval(e.weight)
    }

    // ------------------------------------------------------------------
    // Matrix construction
    // ------------------------------------------------------------------

    /// Identity operator on the `k` lowest qubits (levels `0..k`).
    ///
    /// `k == 0` yields the terminal one edge.
    pub fn make_ident(&mut self, k: usize) -> MEdge {
        assert!(k <= self.n_qubits, "identity larger than the package");
        while self.ident_cache.len() <= k {
            let below = *self
                .ident_cache
                .last()
                .expect("identity cache always holds the terminal entry");
            let level = (self.ident_cache.len() - 1) as u16;
            let next = self.make_mnode(level, [below, MEdge::ZERO, MEdge::ZERO, below]);
            self.ident_cache.push(next);
        }
        self.ident_cache[k]
    }

    /// Identity operator on all qubits of the package.
    pub fn identity(&mut self) -> MEdge {
        self.make_ident(self.n_qubits)
    }

    /// Builds the matrix decision diagram of a (multi-)controlled
    /// single-qubit gate acting on `target`.
    ///
    /// Gate diagrams are cached by `(matrix bits, target, controls)`, so the
    /// repeated controlled rotations of QFT/QPE-style circuits build each
    /// diagram once. Cached diagrams are garbage-collection roots and stay
    /// valid across collections.
    ///
    /// # Panics
    ///
    /// Panics if `target` or any control is out of range, or if a control
    /// coincides with the target.
    pub fn make_gate(&mut self, u: &GateMatrix, target: usize, controls: &[Control]) -> MEdge {
        // Hash the borrowed parts so a cache hit allocates nothing; the
        // owned key is only built on a miss.
        let matrix = gates::matrix_bits(u);
        let n_qubits = self.n_qubits as u32;
        let hash = fx_hash(&(&matrix, n_qubits, target as u32, controls));
        let hit = self.gate_cache.get_by(hash, |k| {
            k.matrix == matrix
                && k.n_qubits == n_qubits
                && k.target == target as u32
                && k.controls == controls
        });
        if let Some(cached) = hit {
            return cached;
        }
        // On a shared store, consult the exact L2 map: a diagram another
        // workspace already built is canonical here too, so it can be
        // adopted (and promoted into the lossy L1) without rebuilding.
        if self.shared.is_some() {
            let key = GateKey {
                matrix,
                n_qubits,
                target: target as u32,
                controls: controls.to_vec(),
            };
            if let Some(cached) = self
                .shared
                .as_mut()
                .expect("shared workspace")
                .gate_get(&key)
            {
                self.gate_cache.insert_hashed(hash, key, cached);
                return cached;
            }
            let e = self.build_gate(u, target, controls);
            if self.exceeded.is_none() {
                self.shared
                    .as_mut()
                    .expect("shared workspace")
                    .gate_insert(key.clone(), e);
                self.gate_cache.insert_hashed(hash, key, e);
            }
            return e;
        }
        let e = self.build_gate(u, target, controls);
        if self.exceeded.is_none() {
            let key = GateKey {
                matrix,
                n_qubits,
                target: target as u32,
                controls: controls.to_vec(),
            };
            self.gate_cache.insert_hashed(hash, key, e);
        }
        e
    }

    // The explicit level indices mirror the textbook construction; an
    // enumerate-based rewrite would obscure the wrap-above/wrap-below split.
    #[allow(clippy::needless_range_loop)]
    fn build_gate(&mut self, u: &GateMatrix, target: usize, controls: &[Control]) -> MEdge {
        let n = self.n_qubits;
        assert!(target < n, "gate target {target} out of range");
        let mut ctrl: Vec<Option<bool>> = vec![None; n];
        for c in controls {
            assert!(c.qubit < n, "control qubit {} out of range", c.qubit);
            assert_ne!(c.qubit, target, "control coincides with target");
            ctrl[c.qubit] = Some(c.positive);
        }

        // Entries of the 2x2 gate as (eventually wrapped) matrix edges in the
        // order (row, col) = 00, 01, 10, 11.
        let mut em = [MEdge::ZERO; 4];
        for row in 0..2 {
            for col in 0..2 {
                let w = self.intern(u[row][col]);
                em[row * 2 + col] = if w.is_zero() {
                    MEdge::ZERO
                } else {
                    MEdge::terminal(w)
                };
            }
        }

        // Wrap the levels below the target.
        for z in 0..target {
            let var = z as u16;
            match ctrl[z] {
                None => {
                    for e in em.iter_mut() {
                        *e = self.make_mnode(var, [*e, MEdge::ZERO, MEdge::ZERO, *e]);
                    }
                }
                Some(positive) => {
                    let ident_below = self.make_ident(z);
                    for row in 0..2 {
                        for col in 0..2 {
                            let i = row * 2 + col;
                            let diag = if row == col { ident_below } else { MEdge::ZERO };
                            em[i] = if positive {
                                self.make_mnode(var, [diag, MEdge::ZERO, MEdge::ZERO, em[i]])
                            } else {
                                self.make_mnode(var, [em[i], MEdge::ZERO, MEdge::ZERO, diag])
                            };
                        }
                    }
                }
            }
        }

        // The target level itself.
        let mut e = self.make_mnode(target as u16, em);

        // Wrap the levels above the target.
        for z in (target + 1)..n {
            let var = z as u16;
            e = match ctrl[z] {
                None => self.make_mnode(var, [e, MEdge::ZERO, MEdge::ZERO, e]),
                Some(true) => {
                    let ident_below = self.make_ident(z);
                    self.make_mnode(var, [ident_below, MEdge::ZERO, MEdge::ZERO, e])
                }
                Some(false) => {
                    let ident_below = self.make_ident(z);
                    self.make_mnode(var, [e, MEdge::ZERO, MEdge::ZERO, ident_below])
                }
            };
        }
        e
    }

    /// Builds a matrix decision diagram from a dense row-major matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `2^n x 2^n` for the package qubit count,
    /// or if the package has more than 12 qubits.
    pub fn from_matrix(&mut self, matrix: &[Vec<Complex>]) -> MEdge {
        let dim = 1usize << self.n_qubits;
        assert!(
            self.n_qubits <= 12,
            "dense construction limited to 12 qubits"
        );
        assert_eq!(matrix.len(), dim, "matrix has wrong number of rows");
        assert!(
            matrix.iter().all(|row| row.len() == dim),
            "matrix has wrong number of columns"
        );
        self.build_matrix_rec(matrix, 0, 0, self.n_qubits)
    }

    fn build_matrix_rec(
        &mut self,
        matrix: &[Vec<Complex>],
        row: usize,
        col: usize,
        level: usize,
    ) -> MEdge {
        if level == 0 {
            let w = self.intern(matrix[row][col]);
            return if w.is_zero() {
                MEdge::ZERO
            } else {
                MEdge::terminal(w)
            };
        }
        let half = 1usize << (level - 1);
        let mut children = [MEdge::ZERO; 4];
        for rbit in 0..2 {
            for cbit in 0..2 {
                children[rbit * 2 + cbit] =
                    self.build_matrix_rec(matrix, row + rbit * half, col + cbit * half, level - 1);
            }
        }
        self.make_mnode((level - 1) as u16, children)
    }

    /// Expands a matrix decision diagram into a dense matrix.
    ///
    /// # Panics
    ///
    /// Panics if the package has more than 12 qubits.
    pub fn to_matrix(&self, m: MEdge) -> Vec<Vec<Complex>> {
        assert!(self.n_qubits <= 12, "dense expansion limited to 12 qubits");
        let dim = 1usize << self.n_qubits;
        let mut out = vec![vec![Complex::ZERO; dim]; dim];
        self.to_matrix_rec(m, self.n_qubits, Complex::ONE, 0, 0, &mut out);
        out
    }

    fn to_matrix_rec(
        &self,
        e: MEdge,
        level: usize,
        acc: Complex,
        row: usize,
        col: usize,
        out: &mut [Vec<Complex>],
    ) {
        if e.is_zero() {
            return;
        }
        let acc = acc * self.cval(e.weight);
        if level == 0 {
            out[row][col] = acc;
            return;
        }
        let node = self.mnode(e.node);
        debug_assert_eq!(node.var as usize, level - 1);
        let half = 1usize << (level - 1);
        for rbit in 0..2 {
            for cbit in 0..2 {
                self.to_matrix_rec(
                    node.children[rbit * 2 + cbit],
                    level - 1,
                    acc,
                    row + rbit * half,
                    col + cbit * half,
                    out,
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    // ------------------------------------------------------------------
    // Dense terminal-case kernels
    // ------------------------------------------------------------------

    /// Batch-interns `values`, appending one index per value to `out`.
    ///
    /// Private packages use [`ComplexTable::lookup_batch`]; shared
    /// workspaces publish through the store, paying the table lock once per
    /// batch instead of once per weight. Either way the index sequence is
    /// identical to interning the values one at a time.
    pub fn intern_batch(&mut self, values: &[Complex], out: &mut Vec<CIdx>) {
        match &mut self.shared {
            None => self.ctab.lookup_batch(values, out),
            Some(handle) => handle.intern_batch(values, out),
        }
    }

    /// Expands the *node function* of a vector edge (top weight included)
    /// into zero-initialised SoA lanes.
    fn expand_vedge_rec(
        &self,
        e: VEdge,
        level: usize,
        acc: Complex,
        offset: usize,
        re: &mut [f64],
        im: &mut [f64],
    ) {
        if e.is_zero() {
            return;
        }
        let acc = acc * self.cval(e.weight);
        if level == 0 {
            re[offset] = acc.re;
            im[offset] = acc.im;
            return;
        }
        let node = self.vnode(e.node);
        debug_assert_eq!(node.var as usize, level - 1);
        let half = 1usize << (level - 1);
        self.expand_vedge_rec(node.children[0], level - 1, acc, offset, re, im);
        self.expand_vedge_rec(node.children[1], level - 1, acc, offset + half, re, im);
    }

    /// Column-major matrix expansion into zero-initialised SoA lanes: entry
    /// `(row, col)` lands in lane `col * n + row`, so one matrix column is
    /// one contiguous lane slice (the stride the butterfly accumulation
    /// streams over).
    #[allow(clippy::too_many_arguments)]
    fn expand_medge_rec(
        &self,
        e: MEdge,
        level: usize,
        acc: Complex,
        row: usize,
        col: usize,
        n: usize,
        re: &mut [f64],
        im: &mut [f64],
    ) {
        if e.is_zero() {
            return;
        }
        let acc = acc * self.cval(e.weight);
        if level == 0 {
            re[col * n + row] = acc.re;
            im[col * n + row] = acc.im;
            return;
        }
        let node = self.mnode(e.node);
        debug_assert_eq!(node.var as usize, level - 1);
        let half = 1usize << (level - 1);
        for rbit in 0..2 {
            for cbit in 0..2 {
                self.expand_medge_rec(
                    node.children[rbit * 2 + cbit],
                    level - 1,
                    acc,
                    row + rbit * half,
                    col + cbit * half,
                    n,
                    re,
                    im,
                );
            }
        }
    }

    /// Dense column-major expansion of a matrix *node function*, cached by
    /// node id in a pool the node-keyed cache clear also empties. Repeated
    /// applications of one cached gate diagram (the common case in QFT/QPE
    /// tails) expand its block — phase twiddles included — exactly once.
    fn dense_matrix(&mut self, node: NodeId, level: usize) -> usize {
        if let Some(ix) = self.ct_dense_mat.get(&node) {
            if (ix as usize) < self.dense_mats.len() {
                return ix as usize;
            }
        }
        let n = 1usize << level;
        let mut re = vec![0.0; n * n];
        let mut im = vec![0.0; n * n];
        self.expand_medge_rec(
            MEdge::new(node, CIdx::ONE),
            level,
            Complex::ONE,
            0,
            0,
            n,
            &mut re,
            &mut im,
        );
        let ix = self.dense_mats.len();
        self.dense_mats.push((re, im));
        self.ct_dense_mat.insert(node, ix as u32);
        ix
    }

    /// Interns the scratch's `vals` into its `idxs` in one batch.
    fn intern_scratch(&mut self, s: &mut DenseScratch) {
        let DenseScratch { vals, idxs, .. } = s;
        idxs.clear();
        match &mut self.shared {
            None => self.ctab.lookup_batch(vals, idxs),
            Some(handle) => handle.intern_batch(vals, idxs),
        }
    }

    /// Rebuilds a normalized vector DD from batch-interned amplitudes
    /// (bottom-up, same structure as `build_amplitudes_rec`).
    fn build_vector_from_interned(&mut self, idxs: &[CIdx], level: usize) -> VEdge {
        if level == 0 {
            let w = idxs[0];
            return if w.is_zero() {
                VEdge::ZERO
            } else {
                VEdge::terminal(w)
            };
        }
        let half = idxs.len() / 2;
        let lo = self.build_vector_from_interned(&idxs[..half], level - 1);
        let hi = self.build_vector_from_interned(&idxs[half..], level - 1);
        self.make_vnode((level - 1) as u16, [lo, hi])
    }

    /// Dense terminal-case `m · v` over node functions (top weights are the
    /// caller's business, exactly like the recursion this replaces): expand
    /// both operands to SoA blocks, accumulate matrix columns scaled by the
    /// vector's amplitudes, re-intern the result in one batch.
    fn dense_mul_mat_vec(&mut self, m: NodeId, v: NodeId, level: usize) -> VEdge {
        self.dense_applies += 1;
        let len = 1usize << level;
        let mat = self.dense_matrix(m, level);
        let mut s = std::mem::take(&mut self.dense_scratch);
        s.b_re.clear();
        s.b_re.resize(len, 0.0);
        s.b_im.clear();
        s.b_im.resize(len, 0.0);
        self.expand_vedge_rec(
            VEdge::new(v, CIdx::ONE),
            level,
            Complex::ONE,
            0,
            &mut s.b_re,
            &mut s.b_im,
        );
        s.a_re.clear();
        s.a_re.resize(len, 0.0);
        s.a_im.clear();
        s.a_im.resize(len, 0.0);
        let (mre, mim) = &self.dense_mats[mat];
        for col in 0..len {
            let amp = Complex::new(s.b_re[col], s.b_im[col]);
            if amp.re == 0.0 && amp.im == 0.0 {
                continue;
            }
            let lanes = col * len..(col + 1) * len;
            kernels::axpy_lanes(
                &mut s.a_re,
                &mut s.a_im,
                &mre[lanes.clone()],
                &mim[lanes],
                amp,
            );
        }
        s.vals.clear();
        for i in 0..len {
            s.vals.push(Complex::new(s.a_re[i], s.a_im[i]));
        }
        self.intern_scratch(&mut s);
        let result = self.build_vector_from_interned(&s.idxs, level);
        self.dense_scratch = s;
        result
    }

    /// Dense terminal-case `a + ratio · b` over vector node functions (the
    /// same normalized sum the `ct_add_vec` entry for `(a, b, ratio)`
    /// memoises).
    fn dense_add_vectors(&mut self, a: NodeId, b: NodeId, ratio: CIdx, level: usize) -> VEdge {
        self.dense_applies += 1;
        let len = 1usize << level;
        let ratio_val = self.cval(ratio);
        let mut s = std::mem::take(&mut self.dense_scratch);
        s.a_re.clear();
        s.a_re.resize(len, 0.0);
        s.a_im.clear();
        s.a_im.resize(len, 0.0);
        s.b_re.clear();
        s.b_re.resize(len, 0.0);
        s.b_im.clear();
        s.b_im.resize(len, 0.0);
        self.expand_vedge_rec(
            VEdge::new(a, CIdx::ONE),
            level,
            Complex::ONE,
            0,
            &mut s.a_re,
            &mut s.a_im,
        );
        self.expand_vedge_rec(
            VEdge::new(b, CIdx::ONE),
            level,
            Complex::ONE,
            0,
            &mut s.b_re,
            &mut s.b_im,
        );
        kernels::axpy_lanes(&mut s.a_re, &mut s.a_im, &s.b_re, &s.b_im, ratio_val);
        s.vals.clear();
        for i in 0..len {
            s.vals.push(Complex::new(s.a_re[i], s.a_im[i]));
        }
        self.intern_scratch(&mut s);
        let result = self.build_vector_from_interned(&s.idxs, level);
        self.dense_scratch = s;
        result
    }

    /// Adds two vector decision diagrams.
    ///
    /// This is a garbage-collection safe point: `a` and `b` are protected
    /// for the duration of the operation.
    pub fn add_vectors(&mut self, a: VEdge, b: VEdge) -> VEdge {
        self.safe_point(&[a, b], &[]);
        self.add_vectors_rec(a, b)
    }

    fn add_vectors_rec(&mut self, a: VEdge, b: VEdge) -> VEdge {
        if self.exceeded.is_some() {
            return VEdge::ZERO;
        }
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        if a.is_terminal() && b.is_terminal() {
            let w = self.cadd(a.weight, b.weight);
            return if w.is_zero() {
                VEdge::ZERO
            } else {
                VEdge::terminal(w)
            };
        }
        debug_assert!(!a.is_terminal() && !b.is_terminal());
        let ratio = self.cdiv(b.weight, a.weight);
        let key = (a.node, b.node, ratio);
        if let Some(cached) = self.ct_add_vec.get(&key) {
            let w = self.cmul(cached.weight, a.weight);
            return if w.is_zero() {
                VEdge::ZERO
            } else {
                VEdge::new(cached.node, w)
            };
        }
        let an = self.vnode(a.node);
        let bn = self.vnode(b.node);
        debug_assert_eq!(an.var, bn.var, "vector addition level mismatch");
        let level = an.var as usize + 1;
        let result = if level <= self.dense_cutoff {
            self.dense_add_vectors(a.node, b.node, ratio, level)
        } else {
            let mut children = [VEdge::ZERO; 2];
            for (i, child) in children.iter_mut().enumerate() {
                let bw = self.cmul(bn.children[i].weight, ratio);
                let bc = bn.children[i].with_weight(bw);
                *child = self.add_vectors_rec(an.children[i], bc);
            }
            self.make_vnode(an.var, children)
        };
        if self.exceeded.is_none() {
            self.ct_add_vec.insert(key, result);
        }
        let w = self.cmul(result.weight, a.weight);
        if w.is_zero() {
            VEdge::ZERO
        } else {
            VEdge::new(result.node, w)
        }
    }

    /// Adds two matrix decision diagrams.
    ///
    /// This is a garbage-collection safe point: `a` and `b` are protected
    /// for the duration of the operation.
    pub fn add_matrices(&mut self, a: MEdge, b: MEdge) -> MEdge {
        self.safe_point(&[], &[a, b]);
        self.add_matrices_rec(a, b)
    }

    fn add_matrices_rec(&mut self, a: MEdge, b: MEdge) -> MEdge {
        if self.exceeded.is_some() {
            return MEdge::ZERO;
        }
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        if a.is_terminal() && b.is_terminal() {
            let w = self.cadd(a.weight, b.weight);
            return if w.is_zero() {
                MEdge::ZERO
            } else {
                MEdge::terminal(w)
            };
        }
        debug_assert!(!a.is_terminal() && !b.is_terminal());
        let ratio = self.cdiv(b.weight, a.weight);
        let key = (a.node, b.node, ratio);
        if let Some(cached) = self.ct_add_mat.get(&key) {
            let w = self.cmul(cached.weight, a.weight);
            return if w.is_zero() {
                MEdge::ZERO
            } else {
                MEdge::new(cached.node, w)
            };
        }
        let an = self.mnode(a.node);
        let bn = self.mnode(b.node);
        debug_assert_eq!(an.var, bn.var, "matrix addition level mismatch");
        // Matrix recursions never drop dense (see `MemoryConfig::dense_cutoff`):
        // the 4^level blocks lose to node-at-a-time recursion on structured
        // miters.
        let result = {
            let mut children = [MEdge::ZERO; 4];
            for (i, child) in children.iter_mut().enumerate() {
                let bw = self.cmul(bn.children[i].weight, ratio);
                let bc = bn.children[i].with_weight(bw);
                *child = self.add_matrices_rec(an.children[i], bc);
            }
            self.make_mnode(an.var, children)
        };
        if self.exceeded.is_none() {
            self.ct_add_mat.insert(key, result);
        }
        let w = self.cmul(result.weight, a.weight);
        if w.is_zero() {
            MEdge::ZERO
        } else {
            MEdge::new(result.node, w)
        }
    }

    /// Applies a matrix decision diagram to a vector decision diagram.
    ///
    /// This is a garbage-collection safe point: `m` and `v` are protected
    /// for the duration of the operation.
    pub fn mul_mat_vec(&mut self, m: MEdge, v: VEdge) -> VEdge {
        self.safe_point(&[v], &[m]);
        self.mul_mat_vec_rec(m, v)
    }

    fn mul_mat_vec_rec(&mut self, m: MEdge, v: VEdge) -> VEdge {
        if self.exceeded.is_some() {
            return VEdge::ZERO;
        }
        if m.is_zero() || v.is_zero() {
            return VEdge::ZERO;
        }
        if m.is_terminal() && v.is_terminal() {
            let w = self.cmul(m.weight, v.weight);
            return VEdge::terminal(w);
        }
        debug_assert!(!m.is_terminal() && !v.is_terminal());
        let key = (m.node, v.node);
        let result = if let Some(cached) = self.ct_mat_vec.get(&key) {
            cached
        } else {
            let mn = self.mnode(m.node);
            let vn = self.vnode(v.node);
            debug_assert_eq!(mn.var, vn.var, "matrix-vector level mismatch");
            let level = mn.var as usize + 1;
            let r = if level <= self.dense_cutoff {
                self.dense_mul_mat_vec(m.node, v.node, level)
            } else {
                let mut children = [VEdge::ZERO; 2];
                for (row, child) in children.iter_mut().enumerate() {
                    let mut acc = VEdge::ZERO;
                    for col in 0..2 {
                        let product =
                            self.mul_mat_vec_rec(mn.children[row * 2 + col], vn.children[col]);
                        acc = self.add_vectors_rec(acc, product);
                    }
                    *child = acc;
                }
                self.make_vnode(mn.var, children)
            };
            if self.exceeded.is_none() {
                self.ct_mat_vec.insert(key, r);
            }
            r
        };
        let w = self.cmul(m.weight, v.weight);
        let w = self.cmul(result.weight, w);
        if w.is_zero() {
            VEdge::ZERO
        } else {
            VEdge::new(result.node, w)
        }
    }

    /// Multiplies two matrix decision diagrams (`a · b`).
    ///
    /// This is a garbage-collection safe point: `a` and `b` are protected
    /// for the duration of the operation.
    pub fn mul_matrices(&mut self, a: MEdge, b: MEdge) -> MEdge {
        self.safe_point(&[], &[a, b]);
        self.mul_matrices_rec(a, b)
    }

    fn mul_matrices_rec(&mut self, a: MEdge, b: MEdge) -> MEdge {
        if self.exceeded.is_some() {
            return MEdge::ZERO;
        }
        if a.is_zero() || b.is_zero() {
            return MEdge::ZERO;
        }
        if a.is_terminal() && b.is_terminal() {
            let w = self.cmul(a.weight, b.weight);
            return MEdge::terminal(w);
        }
        debug_assert!(!a.is_terminal() && !b.is_terminal());
        let key = (a.node, b.node);
        let result = if let Some(cached) = self.ct_mat_mat.get(&key) {
            cached
        } else {
            let an = self.mnode(a.node);
            let bn = self.mnode(b.node);
            debug_assert_eq!(an.var, bn.var, "matrix-matrix level mismatch");
            // Matrix recursions never drop dense (see
            // `MemoryConfig::dense_cutoff`): the 4^level blocks lose to
            // node-at-a-time recursion on structured miters.
            let r = {
                let mut children = [MEdge::ZERO; 4];
                for row in 0..2 {
                    for col in 0..2 {
                        let mut acc = MEdge::ZERO;
                        for k in 0..2 {
                            let product = self.mul_matrices_rec(
                                an.children[row * 2 + k],
                                bn.children[k * 2 + col],
                            );
                            acc = self.add_matrices_rec(acc, product);
                        }
                        children[row * 2 + col] = acc;
                    }
                }
                self.make_mnode(an.var, children)
            };
            if self.exceeded.is_none() {
                self.ct_mat_mat.insert(key, r);
            }
            r
        };
        let w = self.cmul(a.weight, b.weight);
        let w = self.cmul(result.weight, w);
        if w.is_zero() {
            MEdge::ZERO
        } else {
            MEdge::new(result.node, w)
        }
    }

    /// Complex-conjugate transpose of a matrix decision diagram.
    ///
    /// This is a garbage-collection safe point: `m` is protected for the
    /// duration of the operation.
    pub fn conjugate_transpose(&mut self, m: MEdge) -> MEdge {
        self.safe_point(&[], &[m]);
        self.conjugate_transpose_rec(m)
    }

    fn conjugate_transpose_rec(&mut self, m: MEdge) -> MEdge {
        if self.exceeded.is_some() {
            return MEdge::ZERO;
        }
        if m.is_terminal() {
            let w = self.cconj(m.weight);
            return if w.is_zero() {
                MEdge::ZERO
            } else {
                MEdge::terminal(w)
            };
        }
        let result = if let Some(cached) = self.ct_transpose.get(&m.node) {
            cached
        } else {
            let node = self.mnode(m.node);
            let transposed = [
                node.children[0],
                node.children[2],
                node.children[1],
                node.children[3],
            ];
            let mut children = [MEdge::ZERO; 4];
            for (i, child) in children.iter_mut().enumerate() {
                *child = self.conjugate_transpose_rec(transposed[i]);
            }
            let r = self.make_mnode(node.var, children);
            if self.exceeded.is_none() {
                self.ct_transpose.insert(m.node, r);
            }
            r
        };
        let w = self.cconj(m.weight);
        let w = self.cmul(result.weight, w);
        if w.is_zero() {
            MEdge::ZERO
        } else {
            MEdge::new(result.node, w)
        }
    }

    /// Convenience: applies a (controlled) single-qubit gate to a state.
    pub fn apply_gate(
        &mut self,
        state: VEdge,
        u: &GateMatrix,
        target: usize,
        controls: &[Control],
    ) -> VEdge {
        let gate = self.make_gate(u, target, controls);
        self.mul_mat_vec(gate, state)
    }

    // ------------------------------------------------------------------
    // Inner products, traces and identity checks
    // ------------------------------------------------------------------

    /// Hermitian inner product `⟨a|b⟩`.
    pub fn inner_product(&mut self, a: VEdge, b: VEdge) -> Complex {
        if a.is_zero() || b.is_zero() {
            return Complex::ZERO;
        }
        let scale = self.cval(a.weight).conj() * self.cval(b.weight);
        if a.is_terminal() && b.is_terminal() {
            return scale;
        }
        debug_assert!(!a.is_terminal() && !b.is_terminal());
        let key = (a.node, b.node);
        let inner = if let Some(cached) = self.ct_inner.get(&key) {
            cached
        } else {
            let an = self.vnode(a.node);
            let bn = self.vnode(b.node);
            debug_assert_eq!(an.var, bn.var, "inner product level mismatch");
            let mut acc = Complex::ZERO;
            for k in 0..2 {
                acc += self.inner_product(an.children[k], bn.children[k]);
            }
            self.ct_inner.insert(key, acc);
            acc
        };
        scale * inner
    }

    /// Fidelity `|⟨a|b⟩|^2` between two states.
    pub fn fidelity(&mut self, a: VEdge, b: VEdge) -> f64 {
        self.inner_product(a, b).norm_sqr()
    }

    /// Squared norm `⟨v|v⟩` of a state.
    pub fn norm_sqr(&mut self, v: VEdge) -> f64 {
        if v.is_zero() {
            return 0.0;
        }
        let w = self.cval(v.weight).norm_sqr();
        w * self.node_norm_sqr(v.node)
    }

    fn node_norm_sqr(&mut self, node: NodeId) -> f64 {
        if node.is_terminal() {
            return 1.0;
        }
        if let Some(cached) = self.vnorm_cache.get(&node) {
            return cached;
        }
        let n = self.vnode(node);
        let mut total = 0.0;
        for child in n.children {
            if child.is_zero() {
                continue;
            }
            let w = self.cval(child.weight).norm_sqr();
            total += w * self.node_norm_sqr(child.node);
        }
        self.vnorm_cache.insert(node, total);
        total
    }

    /// Trace of a matrix decision diagram.
    pub fn trace(&mut self, m: MEdge) -> Complex {
        if m.is_zero() {
            return Complex::ZERO;
        }
        let scale = self.cval(m.weight);
        if m.is_terminal() {
            return scale;
        }
        let inner = if let Some(cached) = self.ct_trace.get(&m.node) {
            cached
        } else {
            let node = self.mnode(m.node);
            let t0 = self.trace(node.children[0]);
            let t3 = self.trace(node.children[3]);
            let acc = t0 + t3;
            self.ct_trace.insert(m.node, acc);
            acc
        };
        scale * inner
    }

    /// Normalised identity fidelity `|tr(M)| / 2^n` of a matrix diagram.
    ///
    /// The value is 1 exactly when `M` is the identity up to a global phase,
    /// making it a numerically robust equivalence criterion.
    pub fn identity_fidelity(&mut self, m: MEdge) -> f64 {
        let dim = 2f64.powi(self.n_qubits as i32);
        self.trace(m).abs() / dim
    }

    /// Structural identity check: `m` equals the identity diagram node-for-node.
    ///
    /// With `up_to_global_phase`, the top weight only needs unit magnitude.
    pub fn is_identity(&mut self, m: MEdge, up_to_global_phase: bool) -> bool {
        let ident = self.identity();
        if m.node != ident.node {
            return false;
        }
        let w = self.cval(m.weight);
        if up_to_global_phase {
            (w.abs() - 1.0).abs() < TOLERANCE
        } else {
            w.is_one()
        }
    }

    // ------------------------------------------------------------------
    // Measurement support
    // ------------------------------------------------------------------

    /// Probabilities of measuring `qubit` as 0 and 1 in state `v`.
    ///
    /// The state does not need to be normalised; the returned values are the
    /// squared norms of the two projections.
    pub fn probabilities(&mut self, v: VEdge, qubit: usize) -> (f64, f64) {
        assert!(qubit < self.n_qubits, "qubit {qubit} out of range");
        let mut cache: FxHashMap<NodeId, (f64, f64)> = FxHashMap::default();
        let (p0, p1) = self.prob_rec(v, qubit, &mut cache);
        (p0, p1)
    }

    fn prob_rec(
        &mut self,
        e: VEdge,
        qubit: usize,
        cache: &mut FxHashMap<NodeId, (f64, f64)>,
    ) -> (f64, f64) {
        if e.is_zero() {
            return (0.0, 0.0);
        }
        debug_assert!(!e.is_terminal(), "probability query below the target qubit");
        let w = self.cval(e.weight).norm_sqr();
        if let Some(&(c0, c1)) = cache.get(&e.node) {
            return (w * c0, w * c1);
        }
        let node = self.vnode(e.node);
        let (n0, n1) = if node.var as usize == qubit {
            let p0 = if node.children[0].is_zero() {
                0.0
            } else {
                let cw = self.cval(node.children[0].weight).norm_sqr();
                cw * self.node_norm_sqr(node.children[0].node)
            };
            let p1 = if node.children[1].is_zero() {
                0.0
            } else {
                let cw = self.cval(node.children[1].weight).norm_sqr();
                cw * self.node_norm_sqr(node.children[1].node)
            };
            (p0, p1)
        } else {
            let (a0, a1) = self.prob_rec(node.children[0], qubit, cache);
            let (b0, b1) = self.prob_rec(node.children[1], qubit, cache);
            (a0 + b0, a1 + b1)
        };
        cache.insert(e.node, (n0, n1));
        (w * n0, w * n1)
    }

    /// Projects `qubit` onto `outcome`, optionally renormalising the result.
    ///
    /// Returns the projected state and the probability of the outcome.
    pub fn collapse(
        &mut self,
        v: VEdge,
        qubit: usize,
        outcome: bool,
        renormalize: bool,
    ) -> (VEdge, f64) {
        let (p0, p1) = self.probabilities(v, qubit);
        let p = if outcome { p1 } else { p0 };
        if p <= TOLERANCE {
            return (VEdge::ZERO, 0.0);
        }
        let mut cache: FxHashMap<NodeId, VEdge> = FxHashMap::default();
        let projected = self.project_rec(v, qubit, outcome, &mut cache);
        let result = if renormalize {
            let scale = self.intern(Complex::real(1.0 / p.sqrt()));
            let w = self.cmul(projected.weight, scale);
            VEdge::new(projected.node, w)
        } else {
            projected
        };
        (result, p)
    }

    fn project_rec(
        &mut self,
        e: VEdge,
        qubit: usize,
        outcome: bool,
        cache: &mut FxHashMap<NodeId, VEdge>,
    ) -> VEdge {
        if e.is_zero() {
            return VEdge::ZERO;
        }
        debug_assert!(!e.is_terminal(), "projection below the target qubit");
        let result = if let Some(&cached) = cache.get(&e.node) {
            cached
        } else {
            let node = self.vnode(e.node);
            let r = if node.var as usize == qubit {
                let mut children = [VEdge::ZERO; 2];
                children[outcome as usize] = node.children[outcome as usize];
                self.make_vnode(node.var, children)
            } else {
                let c0 = self.project_rec(node.children[0], qubit, outcome, cache);
                let c1 = self.project_rec(node.children[1], qubit, outcome, cache);
                self.make_vnode(node.var, [c0, c1])
            };
            cache.insert(e.node, r);
            r
        };
        let w = self.cmul(result.weight, e.weight);
        if w.is_zero() {
            VEdge::ZERO
        } else {
            VEdge::new(result.node, w)
        }
    }

    // ------------------------------------------------------------------
    // Diagram statistics
    // ------------------------------------------------------------------

    /// Number of distinct nodes reachable from a vector edge (excluding the
    /// terminal).
    pub fn vector_size(&self, v: VEdge) -> usize {
        let mut seen = std::collections::HashSet::new();
        self.vsize_rec(v, &mut seen);
        seen.len()
    }

    fn vsize_rec(&self, e: VEdge, seen: &mut std::collections::HashSet<NodeId>) {
        if e.is_zero() || e.is_terminal() || !seen.insert(e.node) {
            return;
        }
        let node = self.vnode(e.node);
        for child in node.children {
            self.vsize_rec(child, seen);
        }
    }

    /// Number of distinct nodes reachable from a matrix edge (excluding the
    /// terminal).
    pub fn matrix_size(&self, m: MEdge) -> usize {
        let mut seen = std::collections::HashSet::new();
        self.msize_rec(m, &mut seen);
        seen.len()
    }

    fn msize_rec(&self, e: MEdge, seen: &mut std::collections::HashSet<NodeId>) {
        if e.is_zero() || e.is_terminal() || !seen.insert(e.node) {
            return;
        }
        let node = self.mnode(e.node);
        for child in node.children {
            self.msize_rec(child, seen);
        }
    }
}

impl Drop for DdPackage {
    fn drop(&mut self) {
        // Fold the lifetime cache counters into the process-wide registry.
        // The SharedHandle (if any) flushes its own counters in its Drop,
        // which runs after this as a field of the package.
        self.fold_cache_counters();
    }
}

/// Marks every vector node reachable from `id` (recursion depth is bounded
/// by the number of qubit levels).
fn mark_vector(nodes: &[VNode], marks: &mut [bool], id: NodeId) {
    if id.is_terminal() {
        return;
    }
    let idx = id.index();
    if marks[idx] {
        return;
    }
    marks[idx] = true;
    for child in nodes[idx].children {
        if !child.is_zero() {
            mark_vector(nodes, marks, child.node);
        }
    }
}

/// Computes the live set of the complex table for compaction: the canonical
/// constants, every weight referenced by a surviving node, the weights of
/// protected edges (`wroots`, possibly merged over several workspaces at a
/// barrier) and the top weights of every root edge (operands, identity and
/// gate caches, published parked-workspace edges).
fn mark_weights(
    vnodes: &[VNode],
    mnodes: &[MNode],
    wroots: impl Iterator<Item = u32>,
    root_vedges: &[VEdge],
    root_medges: &[MEdge],
    table_len: usize,
) -> Vec<bool> {
    let mut marks = vec![false; table_len];
    let mut mark = |idx: CIdx| {
        if let Some(slot) = marks.get_mut(idx.index()) {
            *slot = true;
        }
    };
    mark(CIdx::ZERO);
    mark(CIdx::ONE);
    for node in vnodes {
        if !node.is_free() {
            for child in node.children {
                mark(child.weight);
            }
        }
    }
    for node in mnodes {
        if !node.is_free() {
            for child in node.children {
                mark(child.weight);
            }
        }
    }
    for idx in wroots {
        mark(CIdx(idx));
    }
    for e in root_vedges {
        mark(e.weight);
    }
    for e in root_medges {
        mark(e.weight);
    }
    marks
}

/// Marks every matrix node reachable from `id`.
fn mark_matrix(nodes: &[MNode], marks: &mut [bool], id: NodeId) {
    if id.is_terminal() {
        return;
    }
    let idx = id.index();
    if marks[idx] {
        return;
    }
    marks[idx] = true;
    for child in nodes[idx].children {
        if !child.is_zero() {
            mark_matrix(nodes, marks, child.node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    fn dense_kron(a: &[Vec<Complex>], b: &[Vec<Complex>]) -> Vec<Vec<Complex>> {
        let n = a.len() * b.len();
        let mut out = vec![vec![Complex::ZERO; n]; n];
        for (i, arow) in a.iter().enumerate() {
            for (j, aval) in arow.iter().enumerate() {
                for (k, brow) in b.iter().enumerate() {
                    for (l, bval) in brow.iter().enumerate() {
                        out[i * b.len() + k][j * b.len() + l] = *aval * *bval;
                    }
                }
            }
        }
        out
    }

    fn gate_to_dense(g: &GateMatrix) -> Vec<Vec<Complex>> {
        vec![vec![g[0][0], g[0][1]], vec![g[1][0], g[1][1]]]
    }

    fn ident_dense(n: usize) -> Vec<Vec<Complex>> {
        let dim = 1 << n;
        let mut m = vec![vec![Complex::ZERO; dim]; dim];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = Complex::ONE;
        }
        m
    }

    fn assert_matrix_eq(a: &[Vec<Complex>], b: &[Vec<Complex>]) {
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(b.iter()) {
            for (x, y) in ra.iter().zip(rb.iter()) {
                assert!(x.approx_eq(*y), "{x} != {y}");
            }
        }
    }

    #[test]
    fn basis_state_amplitudes() {
        let mut p = DdPackage::new(3);
        let state = p.basis_state(&[true, false, true]); // |101⟩ = index 5
        let amps = p.amplitudes(state);
        for (i, amp) in amps.iter().enumerate() {
            if i == 0b101 {
                assert!(amp.is_one());
            } else {
                assert!(amp.is_zero());
            }
        }
        assert!((p.norm_sqr(state) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_creates_uniform_superposition() {
        let mut p = DdPackage::new(2);
        let mut state = p.zero_state();
        state = p.apply_gate(state, &gates::h(), 0, &[]);
        state = p.apply_gate(state, &gates::h(), 1, &[]);
        let amps = p.amplitudes(state);
        for amp in amps {
            assert!(amp.approx_eq(Complex::real(0.5)));
        }
    }

    #[test]
    fn bell_state_probabilities() {
        let mut p = DdPackage::new(2);
        let mut state = p.zero_state();
        state = p.apply_gate(state, &gates::h(), 0, &[]);
        state = p.apply_gate(state, &gates::x(), 1, &[Control::pos(0)]);
        let amps = p.amplitudes(state);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!(amps[0b00].approx_eq(Complex::real(s)));
        assert!(amps[0b11].approx_eq(Complex::real(s)));
        assert!(amps[0b01].is_zero());
        assert!(amps[0b10].is_zero());
        let (p0, p1) = p.probabilities(state, 0);
        assert!((p0 - 0.5).abs() < 1e-12);
        assert!((p1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn collapse_bell_state() {
        let mut p = DdPackage::new(2);
        let mut state = p.zero_state();
        state = p.apply_gate(state, &gates::h(), 0, &[]);
        state = p.apply_gate(state, &gates::x(), 1, &[Control::pos(0)]);
        let (collapsed, prob) = p.collapse(state, 0, true, true);
        assert!((prob - 0.5).abs() < 1e-12);
        let amps = p.amplitudes(collapsed);
        assert!(amps[0b11].is_one());
        assert!(amps[0b00].is_zero());
    }

    #[test]
    fn collapse_impossible_outcome_returns_zero() {
        let mut p = DdPackage::new(1);
        let state = p.zero_state();
        let (collapsed, prob) = p.collapse(state, 0, true, true);
        assert!(collapsed.is_zero());
        assert_eq!(prob, 0.0);
    }

    #[test]
    fn gate_dd_matches_dense_kron_no_control() {
        // H on qubit 1 of a 3-qubit register: I ⊗ H ⊗ I (qubit 2 ⊗ 1 ⊗ 0).
        let mut p = DdPackage::new(3);
        let dd = p.make_gate(&gates::h(), 1, &[]);
        let dense = dense_kron(
            &dense_kron(&ident_dense(1), &gate_to_dense(&gates::h())),
            &ident_dense(1),
        );
        assert_matrix_eq(&p.to_matrix(dd), &dense);
    }

    #[test]
    fn gate_dd_matches_dense_cnot() {
        // CNOT with control 0, target 1 in a 2-qubit register.
        let mut p = DdPackage::new(2);
        let dd = p.make_gate(&gates::x(), 1, &[Control::pos(0)]);
        // Basis order: index = q1 q0. CX(control=0, target=1):
        // |00⟩→|00⟩, |01⟩→|11⟩, |10⟩→|10⟩, |11⟩→|01⟩.
        let mut dense = vec![vec![Complex::ZERO; 4]; 4];
        dense[0b00][0b00] = Complex::ONE;
        dense[0b11][0b01] = Complex::ONE;
        dense[0b10][0b10] = Complex::ONE;
        dense[0b01][0b11] = Complex::ONE;
        assert_matrix_eq(&p.to_matrix(dd), &dense);
    }

    #[test]
    fn gate_dd_negative_control() {
        let mut p = DdPackage::new(2);
        let dd = p.make_gate(&gates::x(), 1, &[Control::neg(0)]);
        // X on qubit 1 applied only when qubit 0 is |0⟩.
        let mut dense = vec![vec![Complex::ZERO; 4]; 4];
        dense[0b10][0b00] = Complex::ONE;
        dense[0b00][0b10] = Complex::ONE;
        dense[0b01][0b01] = Complex::ONE;
        dense[0b11][0b11] = Complex::ONE;
        assert_matrix_eq(&p.to_matrix(dd), &dense);
    }

    #[test]
    fn gate_dd_control_above_target() {
        let mut p = DdPackage::new(2);
        let dd = p.make_gate(&gates::x(), 0, &[Control::pos(1)]);
        // CX with control 1, target 0: |10⟩→|11⟩, |11⟩→|10⟩.
        let mut dense = vec![vec![Complex::ZERO; 4]; 4];
        dense[0b00][0b00] = Complex::ONE;
        dense[0b01][0b01] = Complex::ONE;
        dense[0b11][0b10] = Complex::ONE;
        dense[0b10][0b11] = Complex::ONE;
        assert_matrix_eq(&p.to_matrix(dd), &dense);
    }

    #[test]
    fn toffoli_dense() {
        let mut p = DdPackage::new(3);
        let dd = p.make_gate(&gates::x(), 2, &[Control::pos(0), Control::pos(1)]);
        let dense = p.to_matrix(dd);
        let dim = 8;
        #[allow(clippy::needless_range_loop)]
        for row in 0..dim {
            for col in 0..dim {
                let expected = if col & 0b011 == 0b011 {
                    // both controls set: flip bit 2
                    usize::from(row == col ^ 0b100)
                } else {
                    usize::from(row == col)
                };
                assert!(
                    dense[row][col].approx_eq(Complex::real(expected as f64)),
                    "mismatch at ({row},{col})"
                );
            }
        }
    }

    #[test]
    fn matrix_product_matches_gate_composition() {
        let mut p = DdPackage::new(2);
        let h0 = p.make_gate(&gates::h(), 0, &[]);
        let cx = p.make_gate(&gates::x(), 1, &[Control::pos(0)]);
        let circuit = p.mul_matrices(cx, h0);
        // Apply to |00⟩ and compare with the Bell state.
        let zero = p.zero_state();
        let bell_via_matrix = p.mul_mat_vec(circuit, zero);
        let mut bell_via_gates = p.zero_state();
        bell_via_gates = p.apply_gate(bell_via_gates, &gates::h(), 0, &[]);
        bell_via_gates = p.apply_gate(bell_via_gates, &gates::x(), 1, &[Control::pos(0)]);
        assert!((p.fidelity(bell_via_matrix, bell_via_gates) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn unitary_times_adjoint_is_identity() {
        let mut p = DdPackage::new(3);
        let mut u = p.identity();
        for (q, gate) in [gates::h(), gates::t(), gates::sx()].iter().enumerate() {
            let g = p.make_gate(gate, q, &[]);
            u = p.mul_matrices(g, u);
        }
        let cx = p.make_gate(&gates::x(), 2, &[Control::pos(0)]);
        u = p.mul_matrices(cx, u);
        let udag = p.conjugate_transpose(u);
        let product = p.mul_matrices(udag, u);
        assert!(p.is_identity(product, false));
        assert!((p.identity_fidelity(product) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn identity_fidelity_detects_non_identity() {
        let mut p = DdPackage::new(2);
        let x0 = p.make_gate(&gates::x(), 0, &[]);
        assert!(p.identity_fidelity(x0) < 0.5);
        assert!(!p.is_identity(x0, true));
    }

    #[test]
    fn global_phase_identity() {
        let mut p = DdPackage::new(1);
        // RZ(θ) equals P(θ) up to a global phase, so RZ(θ)·P(θ)† should be
        // the identity only up to a global phase.
        let theta = 0.7;
        let rz = p.make_gate(&gates::rz(theta), 0, &[]);
        let phase = p.make_gate(&gates::phase(theta), 0, &[]);
        let phase_dag = p.conjugate_transpose(phase);
        let product = p.mul_matrices(rz, phase_dag);
        assert!(!p.is_identity(product, false));
        assert!(p.is_identity(product, true));
        assert!((p.identity_fidelity(product) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn inner_product_orthogonal_states() {
        let mut p = DdPackage::new(2);
        let a = p.basis_state(&[false, false]);
        let b = p.basis_state(&[true, false]);
        assert!(p.inner_product(a, b).is_zero());
        assert!(p.inner_product(a, a).is_one());
        assert_eq!(p.fidelity(a, b), 0.0);
    }

    #[test]
    fn add_vectors_and_scale() {
        let mut p = DdPackage::new(1);
        let zero = p.basis_state(&[false]);
        let one = p.basis_state(&[true]);
        let sum = p.add_vectors(zero, one);
        let amps = p.amplitudes(sum);
        assert!(amps[0].is_one());
        assert!(amps[1].is_one());
        // |0⟩ + |1⟩ has squared norm 2.
        assert!((p.norm_sqr(sum) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn add_cancellation_yields_zero() {
        let mut p = DdPackage::new(2);
        let a = p.basis_state(&[true, false]);
        let minus_w = p.intern(Complex::real(-1.0));
        let b = VEdge::new(a.node, minus_w);
        let sum = p.add_vectors(a, b);
        assert!(sum.is_zero());
    }

    #[test]
    fn from_amplitudes_roundtrip() {
        let mut p = DdPackage::new(2);
        let amps = vec![
            Complex::new(0.5, 0.0),
            Complex::new(0.0, 0.5),
            Complex::new(-0.5, 0.0),
            Complex::new(0.0, -0.5),
        ];
        let v = p.from_amplitudes(&amps);
        let back = p.amplitudes(v);
        for (a, b) in amps.iter().zip(back.iter()) {
            assert!(a.approx_eq(*b));
        }
        for (i, amp) in amps.iter().enumerate() {
            assert!(p.amplitude(v, i).approx_eq(*amp));
        }
    }

    #[test]
    fn from_matrix_roundtrip() {
        let mut p = DdPackage::new(2);
        let cx = p.make_gate(&gates::x(), 1, &[Control::pos(0)]);
        let dense = p.to_matrix(cx);
        let rebuilt = p.from_matrix(&dense);
        assert_eq!(cx, rebuilt);
    }

    #[test]
    fn hash_consing_shares_nodes() {
        let mut p = DdPackage::new(4);
        let a = p.zero_state();
        let b = p.zero_state();
        assert_eq!(a, b);
        let before = p.stats().vector_nodes;
        let _ = p.zero_state();
        assert_eq!(p.stats().vector_nodes, before);
    }

    #[test]
    fn ghz_state_has_linear_size() {
        let n = 16;
        let mut p = DdPackage::new(n);
        let mut state = p.zero_state();
        state = p.apply_gate(state, &gates::h(), 0, &[]);
        for q in 1..n {
            state = p.apply_gate(state, &gates::x(), q, &[Control::pos(q - 1)]);
        }
        assert!(p.vector_size(state) <= 2 * n);
        let (p0, p1) = p.probabilities(state, n - 1);
        assert!((p0 - 0.5).abs() < 1e-10);
        assert!((p1 - 0.5).abs() < 1e-10);
    }

    #[test]
    fn large_identity_structural_check() {
        let mut p = DdPackage::new(64);
        let mut u = p.identity();
        // A few self-inverse layers: H on every qubit, applied twice.
        for _ in 0..2 {
            for q in 0..64 {
                let g = p.make_gate(&gates::h(), q, &[]);
                u = p.mul_matrices(g, u);
            }
        }
        assert!(p.is_identity(u, false));
    }

    #[test]
    fn clear_compute_tables_keeps_results_valid() {
        let mut p = DdPackage::new(2);
        let h = p.make_gate(&gates::h(), 0, &[]);
        let a = p.mul_matrices(h, h);
        p.clear_compute_tables();
        let b = p.mul_matrices(h, h);
        assert_eq!(a, b);
        assert!(p.is_identity(a, false));
    }

    #[test]
    fn node_limit_trips_and_poisons_results() {
        use crate::limits::{Budget, LimitExceeded};
        let budget = Budget::unlimited().with_node_limit(8);
        let mut p = DdPackage::with_budget(10, budget);
        let mut state = p.zero_state();
        for q in 0..10 {
            state = p.apply_gate(state, &gates::h(), q, &[]);
            let g = p.make_gate(&gates::phase(0.1 * q as f64), q, &[]);
            state = p.mul_mat_vec(g, state);
            if p.limit_exceeded().is_some() {
                break;
            }
        }
        assert_eq!(p.limit_exceeded(), Some(LimitExceeded::NodeLimit));
        // Operations after the trip unwind to zero edges.
        let z = p.zero_state();
        assert!(p.mul_mat_vec(MEdge::ZERO, z).is_zero());
    }

    #[test]
    fn cancellation_is_observed_during_diagram_construction() {
        use crate::limits::{Budget, CancelToken, LimitExceeded};
        let token = CancelToken::new();
        let budget = Budget::unlimited().with_cancel_token(token.clone());
        let mut p = DdPackage::with_budget(12, budget);
        token.cancel();
        // Keep allocating until the 256-allocation poll notices the flag.
        let mut state = p.zero_state();
        for round in 0..64 {
            for q in 0..12 {
                state = p.apply_gate(state, &gates::ry(0.37 + round as f64 + q as f64), q, &[]);
            }
            if p.limit_exceeded().is_some() {
                break;
            }
        }
        assert_eq!(p.limit_exceeded(), Some(LimitExceeded::Cancelled));
    }

    #[test]
    fn unbudgeted_package_never_trips() {
        let mut p = DdPackage::new(8);
        let mut state = p.zero_state();
        for q in 0..8 {
            state = p.apply_gate(state, &gates::h(), q, &[]);
        }
        assert_eq!(p.limit_exceeded(), None);
        assert!((p.norm_sqr(state) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stats_report_allocations() {
        let mut p = DdPackage::new(2);
        assert_eq!(p.stats().vector_nodes, 0);
        let _ = p.zero_state();
        assert!(p.stats().vector_nodes > 0);
        assert!(p.stats().complex_values >= 2);
    }

    #[test]
    fn garbage_collect_reclaims_unprotected_nodes() {
        let mut p = DdPackage::new(4);
        let mut state = p.zero_state();
        for round in 0..8 {
            for q in 0..4 {
                state = p.apply_gate(state, &gates::ry(0.3 + round as f64 + q as f64), q, &[]);
            }
        }
        let before = p.stats().vector_nodes;
        p.protect_vector(state);
        let reclaimed = p.garbage_collect();
        assert!(reclaimed > 0, "intermediate states should be garbage");
        assert!(p.stats().vector_nodes < before);
        // The protected state is still intact and normalised.
        assert!((p.norm_sqr(state) - 1.0).abs() < 1e-9);
        // A second collection with unchanged roots finds nothing new.
        assert_eq!(p.garbage_collect(), 0);
        p.unprotect_vector(state);
        assert!(p.garbage_collect() > 0);
        assert_eq!(p.stats().vector_nodes, 0);
    }

    #[test]
    fn collected_slots_are_recycled_and_canonicity_survives() {
        let mut p = DdPackage::new(3);
        let mut state = p.zero_state();
        for q in 0..3 {
            state = p.apply_gate(state, &gates::h(), q, &[]);
            state = p.apply_gate(state, &gates::phase(0.4 * (q + 1) as f64), q, &[]);
        }
        p.protect_vector(state);
        p.garbage_collect();
        let arena_len = p.vnodes.len();
        // Re-applying the same gates must reproduce the identical edge via
        // hash-consing, reusing freed slots instead of growing the arena.
        let mut rebuilt = p.zero_state();
        for q in 0..3 {
            rebuilt = p.apply_gate(rebuilt, &gates::h(), q, &[]);
            rebuilt = p.apply_gate(rebuilt, &gates::phase(0.4 * (q + 1) as f64), q, &[]);
        }
        assert_eq!(state, rebuilt);
        assert!(p.vnodes.len() <= arena_len.max(8));
    }

    #[test]
    fn automatic_gc_bounds_live_nodes() {
        let config = MemoryConfig {
            gc_threshold: Some(512),
            ..Default::default()
        };
        let mut p = DdPackage::with_config(6, Budget::unlimited(), config);
        let mut state = p.zero_state();
        for round in 0..40 {
            for q in 0..6 {
                let angle = 0.1 + 0.37 * (round * 6 + q) as f64;
                state = p.apply_gate(state, &gates::ry(angle), q, &[]);
            }
        }
        let stats = p.memory_stats();
        assert!(stats.gc_runs > 0, "threshold should have triggered GC");
        assert!(stats.reclaimed_nodes > 0);
        // The live heap stays near the (possibly adaptively doubled)
        // threshold instead of growing with the circuit length.
        let threshold = p.gc_threshold().unwrap();
        assert!(stats.peak_nodes < 2 * threshold + 512);
        assert!((p.norm_sqr(state) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn identity_and_gate_caches_survive_collection() {
        let mut p = DdPackage::new(3);
        let ident = p.identity();
        let gate = p.make_gate(&gates::h(), 1, &[Control::pos(0)]);
        p.garbage_collect();
        // Both caches are roots: the cached edges still compare and behave
        // identically after the sweep.
        assert_eq!(p.identity(), ident);
        assert_eq!(p.make_gate(&gates::h(), 1, &[Control::pos(0)]), gate);
        assert!(p.is_identity(ident, false));
    }

    #[test]
    fn gate_cache_hits_on_repeated_gates() {
        let mut p = DdPackage::new(4);
        let before = p.gate_cache_counters();
        let first = p.make_gate(&gates::phase(0.77), 2, &[Control::pos(0)]);
        for _ in 0..10 {
            assert_eq!(
                p.make_gate(&gates::phase(0.77), 2, &[Control::pos(0)]),
                first
            );
        }
        let after = p.gate_cache_counters();
        assert_eq!(after.lookups - before.lookups, 11);
        assert_eq!(after.hits - before.hits, 10);
        // A different placement misses.
        let other = p.make_gate(&gates::phase(0.77), 2, &[Control::neg(0)]);
        assert_ne!(other, first);
    }

    #[test]
    fn compute_tables_report_hits() {
        let mut p = DdPackage::new(4);
        let mut state = p.zero_state();
        for q in 0..4 {
            state = p.apply_gate(state, &gates::h(), q, &[]);
        }
        for q in 0..4 {
            state = p.apply_gate(state, &gates::h(), q, &[]);
        }
        let stats = p.memory_stats();
        assert!(stats.compute_lookups > 0);
        assert!(stats.compute_hits > 0);
        let rate = stats.compute_hit_rate().unwrap();
        assert!(rate > 0.0 && rate <= 1.0);
        let names: Vec<_> = p.compute_table_counters().iter().map(|c| c.name).collect();
        assert!(names.contains(&"mat_vec"));
        assert!(names.contains(&"vnorm"));
    }

    #[test]
    fn deadline_trips_during_construction() {
        use crate::limits::{Budget, LimitExceeded};
        let budget = Budget::unlimited().with_deadline(std::time::Duration::ZERO);
        let mut p = DdPackage::with_budget(10, budget);
        let mut state = p.zero_state();
        for round in 0..64 {
            for q in 0..10 {
                state = p.apply_gate(state, &gates::ry(0.21 + (round * 10 + q) as f64), q, &[]);
            }
            if p.limit_exceeded().is_some() {
                break;
            }
        }
        assert_eq!(p.limit_exceeded(), Some(LimitExceeded::Deadline));
    }

    #[test]
    fn abandoned_barrier_round_lowers_the_flag_and_moves_on() {
        // Dropping the round guard without completing it (the abort path,
        // and what a panic unwind does) must lower `gc_requested` and
        // advance the request id without touching the generation; a
        // completed round advances the generation instead.
        let store = SharedStore::new();
        let (request_before, generation_before) = {
            let barrier = crate::store::lock(&store.barrier);
            (barrier.request, barrier.generation)
        };
        let round = BarrierRound::begin(&store);
        assert!(store.gc_requested.load(Ordering::Acquire));
        drop(round);
        assert!(!store.gc_requested.load(Ordering::Acquire));
        {
            let barrier = crate::store::lock(&store.barrier);
            // begin() opened request N+1; the abandonment bumped it again
            // so a workspace parked on N+1 stops waiting.
            assert_eq!(barrier.request, request_before + 2);
            assert_eq!(barrier.generation, generation_before);
        }
        let round = BarrierRound::begin(&store);
        round.complete();
        let barrier = crate::store::lock(&store.barrier);
        assert!(!store.gc_requested.load(Ordering::Acquire));
        assert_eq!(barrier.generation, generation_before + 1);
    }

    #[test]
    fn parked_workspaces_survive_an_abandoned_round() {
        use std::sync::atomic::AtomicBool;
        // A worker parked at the barrier must resume — with its diagrams
        // intact — when the collector abandons the round instead of
        // completing it (timeout abort, or a collector panic).
        let store = SharedStore::new();
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let worker = {
                let store = Arc::clone(&store);
                let done = &done;
                scope.spawn(move || {
                    let mut ws = store.workspace(4);
                    let mut state = ws.zero_state();
                    let mut i = 0u64;
                    while !done.load(Ordering::Acquire) {
                        let angle = 0.1 + (i % 97) as f64;
                        state = ws.apply_gate(state, &gates::ry(angle), (i % 4) as usize, &[]);
                        i += 1;
                    }
                    ws.norm_sqr(state)
                })
            };
            let round = BarrierRound::begin(&store);
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                if !crate::store::lock(&store.barrier).published.is_empty() {
                    break;
                }
                assert!(Instant::now() < deadline, "worker never parked");
                std::thread::yield_now();
            }
            drop(round); // the collector "dies" with the worker parked
            done.store(true, Ordering::Release);
            let norm = worker.join().expect("worker survived the dead round");
            assert!((norm - 1.0).abs() < 1e-9);
        });
    }

    #[test]
    fn deadline_trips_at_safe_points_without_allocations() {
        use crate::limits::{Budget, LimitExceeded};
        // Build the operands on an unbudgeted package first so the budgeted
        // operation below is a pure cache-hit / terminal path: zero node
        // allocations, which used to dodge the deadline poll entirely.
        let budget = Budget::unlimited().with_deadline(std::time::Duration::ZERO);
        let mut p = DdPackage::with_budget(2, budget);
        let a = VEdge::ONE;
        let b = VEdge::ONE;
        assert_eq!(p.limit_exceeded(), None);
        let _ = p.add_vectors(a, b); // allocation-free: both operands terminal
        assert_eq!(p.limit_exceeded(), Some(LimitExceeded::Deadline));
    }

    #[test]
    fn merged_memory_stats_accumulate() {
        let mut a = DdPackage::new(2);
        let mut b = DdPackage::new(2);
        let s = a.zero_state();
        let _ = a.apply_gate(s, &gates::h(), 0, &[]);
        let t = b.zero_state();
        let _ = b.apply_gate(t, &gates::x(), 1, &[]);
        let merged = a.memory_stats().merged_with(&b.memory_stats());
        assert_eq!(
            merged.allocated_nodes,
            a.memory_stats().allocated_nodes + b.memory_stats().allocated_nodes
        );
        assert!(merged.peak_nodes >= a.memory_stats().peak_nodes);
    }
}
