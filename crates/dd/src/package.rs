//! The decision-diagram package: arenas, unique tables, compute tables and
//! all operations on vector and matrix decision diagrams.
//!
//! A [`DdPackage`] owns every node and interned complex value of the diagrams
//! built through it. Edges ([`VEdge`], [`MEdge`]) are plain copyable handles
//! that are only meaningful together with the package that created them.
//!
//! # Examples
//!
//! Applying a Hadamard gate to |0⟩ and reading the outcome probabilities:
//!
//! ```
//! use dd::{DdPackage, gates};
//!
//! let mut p = DdPackage::new(1);
//! let state = p.zero_state();
//! let state = p.apply_gate(state, &gates::h(), 0, &[]);
//! let (p0, p1) = p.probabilities(state, 0);
//! assert!((p0 - 0.5).abs() < 1e-12);
//! assert!((p1 - 0.5).abs() < 1e-12);
//! ```

use crate::complex::{Complex, TOLERANCE};
use crate::gates::GateMatrix;
use crate::hash::FxHashMap;
use crate::limits::{Budget, LimitExceeded};
use crate::node::{MEdge, MNode, NodeId, VEdge, VNode};
use crate::table::{CIdx, ComplexTable};

/// A control qubit of a multi-qubit gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Control {
    /// The controlling qubit.
    pub qubit: usize,
    /// `true` for a regular (positive) control, `false` for a negative
    /// control that triggers on |0⟩.
    pub positive: bool,
}

impl Control {
    /// Positive control on `qubit`.
    pub const fn pos(qubit: usize) -> Self {
        Control {
            qubit,
            positive: true,
        }
    }

    /// Negative control on `qubit`.
    pub const fn neg(qubit: usize) -> Self {
        Control {
            qubit,
            positive: false,
        }
    }
}

/// Statistics about the current contents of a [`DdPackage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PackageStats {
    /// Number of distinct vector nodes allocated.
    pub vector_nodes: usize,
    /// Number of distinct matrix nodes allocated.
    pub matrix_nodes: usize,
    /// Number of distinct interned complex values.
    pub complex_values: usize,
}

/// Decision-diagram package for up to `n_qubits` qubits.
///
/// All diagram-producing methods take `&mut self` because they may allocate
/// nodes or interned weights.
#[derive(Debug)]
pub struct DdPackage {
    n_qubits: usize,
    ctab: ComplexTable,
    pub(crate) vnodes: Vec<VNode>,
    vunique: FxHashMap<VNode, NodeId>,
    pub(crate) mnodes: Vec<MNode>,
    munique: FxHashMap<MNode, NodeId>,
    ct_mat_vec: FxHashMap<(NodeId, NodeId), VEdge>,
    ct_mat_mat: FxHashMap<(NodeId, NodeId), MEdge>,
    ct_add_vec: FxHashMap<(NodeId, NodeId, CIdx), VEdge>,
    ct_add_mat: FxHashMap<(NodeId, NodeId, CIdx), MEdge>,
    ct_transpose: FxHashMap<NodeId, MEdge>,
    ct_inner: FxHashMap<(NodeId, NodeId), Complex>,
    ct_trace: FxHashMap<NodeId, Complex>,
    vnorm_cache: FxHashMap<NodeId, f64>,
    ident_cache: Vec<MEdge>,
    budget: Budget,
    exceeded: Option<LimitExceeded>,
    allocs_since_check: u32,
}

impl DdPackage {
    /// Creates a package for diagrams over `n_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` exceeds `u16::MAX` (the level encoding width).
    pub fn new(n_qubits: usize) -> Self {
        DdPackage::with_budget(n_qubits, Budget::unlimited())
    }

    /// Creates a package whose operations observe `budget`: cancellation via
    /// the budget's [`CancelToken`](crate::CancelToken) and the node limit
    /// are checked inside node allocation, the one funnel every diagram
    /// operation passes through.
    ///
    /// Once a limit trips, [`limit_exceeded`](Self::limit_exceeded) reports
    /// it, in-flight recursive operations unwind quickly by returning zero
    /// edges, and no further compute-table entries are recorded (so the
    /// memoisation is never poisoned by partial results). A package in this
    /// state must be discarded; results obtained after the trip are
    /// meaningless.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` exceeds `u16::MAX` (the level encoding width).
    pub fn with_budget(n_qubits: usize, budget: Budget) -> Self {
        assert!(
            n_qubits <= u16::MAX as usize,
            "qubit count {n_qubits} exceeds the supported maximum"
        );
        DdPackage {
            n_qubits,
            ctab: ComplexTable::new(),
            vnodes: Vec::new(),
            vunique: FxHashMap::default(),
            mnodes: Vec::new(),
            munique: FxHashMap::default(),
            ct_mat_vec: FxHashMap::default(),
            ct_mat_mat: FxHashMap::default(),
            ct_add_vec: FxHashMap::default(),
            ct_add_mat: FxHashMap::default(),
            ct_transpose: FxHashMap::default(),
            ct_inner: FxHashMap::default(),
            ct_trace: FxHashMap::default(),
            vnorm_cache: FxHashMap::default(),
            ident_cache: vec![MEdge::ONE],
            budget,
            exceeded: None,
            allocs_since_check: 0,
        }
    }

    /// Number of qubits this package was created for.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The budget this package observes.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Returns the limit that stopped this package, if any tripped.
    ///
    /// Callers of diagram operations on a budgeted package must check this
    /// after each operation: once set, operation results are zero edges and
    /// carry no meaning.
    #[inline]
    pub fn limit_exceeded(&self) -> Option<LimitExceeded> {
        self.exceeded
    }

    /// Budget bookkeeping on the node-allocation path.
    ///
    /// The cancel flag is an atomic shared across threads, so it is polled
    /// only every 256 allocations; the node cap is a plain comparison and is
    /// checked every time.
    #[inline]
    fn charge_allocation(&mut self) {
        if self.exceeded.is_some() {
            return;
        }
        if let Some(max) = self.budget.max_nodes() {
            if self.vnodes.len() + self.mnodes.len() > max {
                self.exceeded = Some(LimitExceeded::NodeLimit);
                return;
            }
        }
        self.allocs_since_check = self.allocs_since_check.wrapping_add(1);
        if self.allocs_since_check & 0xFF == 0 && self.budget.cancel_token().is_cancelled() {
            self.exceeded = Some(LimitExceeded::Cancelled);
        }
    }

    /// Returns allocation statistics.
    pub fn stats(&self) -> PackageStats {
        PackageStats {
            vector_nodes: self.vnodes.len(),
            matrix_nodes: self.mnodes.len(),
            complex_values: self.ctab.len(),
        }
    }

    /// Drops all memoisation tables (unique tables and nodes are kept).
    ///
    /// Useful between independent computations to bound memory growth.
    pub fn clear_compute_tables(&mut self) {
        self.ct_mat_vec.clear();
        self.ct_mat_mat.clear();
        self.ct_add_vec.clear();
        self.ct_add_mat.clear();
        self.ct_transpose.clear();
        self.ct_inner.clear();
        self.ct_trace.clear();
        self.vnorm_cache.clear();
    }

    // ------------------------------------------------------------------
    // Complex value access
    // ------------------------------------------------------------------

    /// Interns a complex value and returns its index.
    #[inline]
    pub fn intern(&mut self, value: Complex) -> CIdx {
        self.ctab.lookup(value)
    }

    /// Returns the complex value behind an index.
    #[inline]
    pub fn value(&self, idx: CIdx) -> Complex {
        self.ctab.value(idx)
    }

    /// The complex weight carried by a vector edge.
    #[inline]
    pub fn vweight(&self, e: VEdge) -> Complex {
        self.ctab.value(e.weight)
    }

    /// The complex weight carried by a matrix edge.
    #[inline]
    pub fn mweight(&self, e: MEdge) -> Complex {
        self.ctab.value(e.weight)
    }

    // ------------------------------------------------------------------
    // Node construction (normalisation + hash consing)
    // ------------------------------------------------------------------

    /// Creates (or reuses) a vector node.
    ///
    /// Nodes are normalised so that the sum of the squared magnitudes of the
    /// child weights is one and the largest-magnitude child weight is real
    /// and positive. The extracted factor is returned on the new edge. This
    /// keeps all weights of a normalised state at magnitude at most one,
    /// which avoids the numerical underflow a plain "divide by the first
    /// non-zero child" rule would cause for wide registers.
    pub fn make_vnode(&mut self, var: u16, mut children: [VEdge; 2]) -> VEdge {
        self.charge_allocation();
        for c in &mut children {
            if c.weight.is_zero() {
                *c = VEdge::ZERO;
            }
        }
        if children.iter().all(|c| c.is_zero()) {
            return VEdge::ZERO;
        }
        // Norm of the child weights and the (first) largest-magnitude child.
        let weights: Vec<Complex> = children.iter().map(|c| self.ctab.value(c.weight)).collect();
        let norm = weights.iter().map(|w| w.norm_sqr()).sum::<f64>().sqrt();
        let max_mag = weights.iter().map(|w| w.abs()).fold(0.0f64, f64::max);
        let anchor = weights
            .iter()
            .find(|w| w.abs() >= max_mag - TOLERANCE)
            .copied()
            .expect("at least one non-zero child");
        // The extracted factor restores both the norm and the anchor phase.
        let scale = anchor / anchor.abs() * norm;
        let top = self.intern(scale);
        for c in &mut children {
            if !c.is_zero() {
                let w = self.ctab.value(c.weight) / scale;
                c.weight = self.intern(w);
                if c.weight.is_zero() {
                    *c = VEdge::ZERO;
                }
            }
        }
        let node = VNode { var, children };
        let id = if let Some(&id) = self.vunique.get(&node) {
            id
        } else {
            let id = NodeId(self.vnodes.len() as u32);
            self.vnodes.push(node);
            self.vunique.insert(node, id);
            id
        };
        VEdge::new(id, top)
    }

    /// Creates (or reuses) a matrix node.
    ///
    /// Nodes are normalised by the first child weight whose magnitude equals
    /// the maximum over all children (within tolerance); that child weight
    /// becomes exactly one. All child weights therefore have magnitude at
    /// most one, which keeps round-off well below the interning tolerance.
    pub fn make_mnode(&mut self, var: u16, mut children: [MEdge; 4]) -> MEdge {
        self.charge_allocation();
        for c in &mut children {
            if c.weight.is_zero() {
                *c = MEdge::ZERO;
            }
        }
        if children.iter().all(|c| c.is_zero()) {
            return MEdge::ZERO;
        }
        let weights: Vec<Complex> = children.iter().map(|c| self.ctab.value(c.weight)).collect();
        let max_mag = weights.iter().map(|w| w.abs()).fold(0.0f64, f64::max);
        let anchor_idx = weights
            .iter()
            .position(|w| w.abs() >= max_mag - TOLERANCE)
            .expect("at least one non-zero child");
        let top = children[anchor_idx].weight;
        if !top.is_one() {
            for c in &mut children {
                if !c.is_zero() {
                    c.weight = self.ctab.div(c.weight, top);
                }
            }
        }
        let node = MNode { var, children };
        let id = if let Some(&id) = self.munique.get(&node) {
            id
        } else {
            let id = NodeId(self.mnodes.len() as u32);
            self.mnodes.push(node);
            self.munique.insert(node, id);
            id
        };
        MEdge::new(id, top)
    }

    #[inline]
    fn vnode(&self, id: NodeId) -> VNode {
        self.vnodes[id.index()]
    }

    #[inline]
    fn mnode(&self, id: NodeId) -> MNode {
        self.mnodes[id.index()]
    }

    /// Successor edges of a non-terminal vector edge.
    ///
    /// # Panics
    ///
    /// Panics when called on a terminal (or zero) edge.
    pub fn vector_children(&self, e: VEdge) -> [VEdge; 2] {
        assert!(!e.is_terminal(), "terminal edges have no children");
        self.vnode(e.node).children
    }

    /// Successor edges of a non-terminal matrix edge in the order
    /// `(row, col) = 00, 01, 10, 11`.
    ///
    /// # Panics
    ///
    /// Panics when called on a terminal (or zero) edge.
    pub fn matrix_children(&self, e: MEdge) -> [MEdge; 4] {
        assert!(!e.is_terminal(), "terminal edges have no children");
        self.mnode(e.node).children
    }

    /// Qubit level of a vector edge, or `None` for terminal edges.
    pub fn vedge_level(&self, e: VEdge) -> Option<u16> {
        if e.is_terminal() {
            None
        } else {
            Some(self.vnode(e.node).var)
        }
    }

    /// Qubit level of a matrix edge, or `None` for terminal edges.
    pub fn medge_level(&self, e: MEdge) -> Option<u16> {
        if e.is_terminal() {
            None
        } else {
            Some(self.mnode(e.node).var)
        }
    }

    // ------------------------------------------------------------------
    // State construction
    // ------------------------------------------------------------------

    /// The all-zeros computational basis state |0...0⟩.
    pub fn zero_state(&mut self) -> VEdge {
        let bits = vec![false; self.n_qubits];
        self.basis_state(&bits)
    }

    /// Computational basis state |b_{n-1} ... b_0⟩ where `bits[q]` is the
    /// value of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the package qubit count.
    pub fn basis_state(&mut self, bits: &[bool]) -> VEdge {
        assert_eq!(bits.len(), self.n_qubits, "basis state length mismatch");
        let mut e = VEdge::ONE;
        for (q, &bit) in bits.iter().enumerate() {
            let children = if bit {
                [VEdge::ZERO, e]
            } else {
                [e, VEdge::ZERO]
            };
            e = self.make_vnode(q as u16, children);
        }
        e
    }

    /// Builds a state-vector decision diagram from dense amplitudes.
    ///
    /// The amplitude at index `i` corresponds to the basis state whose qubit
    /// `q` has value `(i >> q) & 1`.
    ///
    /// # Panics
    ///
    /// Panics if `amplitudes.len() != 2^n`.
    pub fn from_amplitudes(&mut self, amplitudes: &[Complex]) -> VEdge {
        assert_eq!(
            amplitudes.len(),
            1usize << self.n_qubits,
            "amplitude vector has wrong length"
        );
        self.build_amplitudes_rec(amplitudes, self.n_qubits)
    }

    fn build_amplitudes_rec(&mut self, amps: &[Complex], level: usize) -> VEdge {
        if level == 0 {
            let w = self.intern(amps[0]);
            return if w.is_zero() {
                VEdge::ZERO
            } else {
                VEdge::terminal(w)
            };
        }
        let half = amps.len() / 2;
        let lo = self.build_amplitudes_rec(&amps[..half], level - 1);
        let hi = self.build_amplitudes_rec(&amps[half..], level - 1);
        self.make_vnode((level - 1) as u16, [lo, hi])
    }

    /// Expands a vector decision diagram into a dense amplitude vector.
    ///
    /// # Panics
    ///
    /// Panics if the package has more than 24 qubits (the dense vector would
    /// not reasonably fit in memory).
    pub fn amplitudes(&self, v: VEdge) -> Vec<Complex> {
        assert!(
            self.n_qubits <= 24,
            "dense expansion is limited to 24 qubits"
        );
        let mut out = vec![Complex::ZERO; 1usize << self.n_qubits];
        self.amplitudes_rec(v, self.n_qubits, Complex::ONE, 0, &mut out);
        out
    }

    fn amplitudes_rec(
        &self,
        e: VEdge,
        level: usize,
        acc: Complex,
        offset: usize,
        out: &mut [Complex],
    ) {
        if e.is_zero() {
            return;
        }
        let acc = acc * self.ctab.value(e.weight);
        if level == 0 {
            out[offset] = acc;
            return;
        }
        let node = self.vnode(e.node);
        debug_assert_eq!(node.var as usize, level - 1);
        let half = 1usize << (level - 1);
        self.amplitudes_rec(node.children[0], level - 1, acc, offset, out);
        self.amplitudes_rec(node.children[1], level - 1, acc, offset + half, out);
    }

    /// Amplitude of a single computational basis state.
    pub fn amplitude(&self, v: VEdge, basis_index: usize) -> Complex {
        let mut acc = Complex::ONE;
        let mut e = v;
        for level in (0..self.n_qubits).rev() {
            if e.is_zero() {
                return Complex::ZERO;
            }
            acc *= self.ctab.value(e.weight);
            let node = self.vnode(e.node);
            debug_assert_eq!(node.var as usize, level);
            let bit = (basis_index >> level) & 1;
            e = node.children[bit];
        }
        if e.is_zero() {
            return Complex::ZERO;
        }
        acc * self.ctab.value(e.weight)
    }

    // ------------------------------------------------------------------
    // Matrix construction
    // ------------------------------------------------------------------

    /// Identity operator on the `k` lowest qubits (levels `0..k`).
    ///
    /// `k == 0` yields the terminal one edge.
    pub fn make_ident(&mut self, k: usize) -> MEdge {
        assert!(k <= self.n_qubits, "identity larger than the package");
        while self.ident_cache.len() <= k {
            let below = *self
                .ident_cache
                .last()
                .expect("identity cache always holds the terminal entry");
            let level = (self.ident_cache.len() - 1) as u16;
            let next = self.make_mnode(level, [below, MEdge::ZERO, MEdge::ZERO, below]);
            self.ident_cache.push(next);
        }
        self.ident_cache[k]
    }

    /// Identity operator on all qubits of the package.
    pub fn identity(&mut self) -> MEdge {
        self.make_ident(self.n_qubits)
    }

    /// Builds the matrix decision diagram of a (multi-)controlled
    /// single-qubit gate acting on `target`.
    ///
    /// # Panics
    ///
    /// Panics if `target` or any control is out of range, or if a control
    /// coincides with the target.
    // The explicit level indices mirror the textbook construction; an
    // enumerate-based rewrite would obscure the wrap-above/wrap-below split.
    #[allow(clippy::needless_range_loop)]
    pub fn make_gate(&mut self, u: &GateMatrix, target: usize, controls: &[Control]) -> MEdge {
        let n = self.n_qubits;
        assert!(target < n, "gate target {target} out of range");
        let mut ctrl: Vec<Option<bool>> = vec![None; n];
        for c in controls {
            assert!(c.qubit < n, "control qubit {} out of range", c.qubit);
            assert_ne!(c.qubit, target, "control coincides with target");
            ctrl[c.qubit] = Some(c.positive);
        }

        // Entries of the 2x2 gate as (eventually wrapped) matrix edges in the
        // order (row, col) = 00, 01, 10, 11.
        let mut em = [MEdge::ZERO; 4];
        for row in 0..2 {
            for col in 0..2 {
                let w = self.intern(u[row][col]);
                em[row * 2 + col] = if w.is_zero() {
                    MEdge::ZERO
                } else {
                    MEdge::terminal(w)
                };
            }
        }

        // Wrap the levels below the target.
        for z in 0..target {
            let var = z as u16;
            match ctrl[z] {
                None => {
                    for e in em.iter_mut() {
                        *e = self.make_mnode(var, [*e, MEdge::ZERO, MEdge::ZERO, *e]);
                    }
                }
                Some(positive) => {
                    let ident_below = self.make_ident(z);
                    for row in 0..2 {
                        for col in 0..2 {
                            let i = row * 2 + col;
                            let diag = if row == col { ident_below } else { MEdge::ZERO };
                            em[i] = if positive {
                                self.make_mnode(var, [diag, MEdge::ZERO, MEdge::ZERO, em[i]])
                            } else {
                                self.make_mnode(var, [em[i], MEdge::ZERO, MEdge::ZERO, diag])
                            };
                        }
                    }
                }
            }
        }

        // The target level itself.
        let mut e = self.make_mnode(target as u16, em);

        // Wrap the levels above the target.
        for z in (target + 1)..n {
            let var = z as u16;
            e = match ctrl[z] {
                None => self.make_mnode(var, [e, MEdge::ZERO, MEdge::ZERO, e]),
                Some(true) => {
                    let ident_below = self.make_ident(z);
                    self.make_mnode(var, [ident_below, MEdge::ZERO, MEdge::ZERO, e])
                }
                Some(false) => {
                    let ident_below = self.make_ident(z);
                    self.make_mnode(var, [e, MEdge::ZERO, MEdge::ZERO, ident_below])
                }
            };
        }
        e
    }

    /// Builds a matrix decision diagram from a dense row-major matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `2^n x 2^n` for the package qubit count,
    /// or if the package has more than 12 qubits.
    pub fn from_matrix(&mut self, matrix: &[Vec<Complex>]) -> MEdge {
        let dim = 1usize << self.n_qubits;
        assert!(
            self.n_qubits <= 12,
            "dense construction limited to 12 qubits"
        );
        assert_eq!(matrix.len(), dim, "matrix has wrong number of rows");
        assert!(
            matrix.iter().all(|row| row.len() == dim),
            "matrix has wrong number of columns"
        );
        self.build_matrix_rec(matrix, 0, 0, self.n_qubits)
    }

    fn build_matrix_rec(
        &mut self,
        matrix: &[Vec<Complex>],
        row: usize,
        col: usize,
        level: usize,
    ) -> MEdge {
        if level == 0 {
            let w = self.intern(matrix[row][col]);
            return if w.is_zero() {
                MEdge::ZERO
            } else {
                MEdge::terminal(w)
            };
        }
        let half = 1usize << (level - 1);
        let mut children = [MEdge::ZERO; 4];
        for rbit in 0..2 {
            for cbit in 0..2 {
                children[rbit * 2 + cbit] =
                    self.build_matrix_rec(matrix, row + rbit * half, col + cbit * half, level - 1);
            }
        }
        self.make_mnode((level - 1) as u16, children)
    }

    /// Expands a matrix decision diagram into a dense matrix.
    ///
    /// # Panics
    ///
    /// Panics if the package has more than 12 qubits.
    pub fn to_matrix(&self, m: MEdge) -> Vec<Vec<Complex>> {
        assert!(self.n_qubits <= 12, "dense expansion limited to 12 qubits");
        let dim = 1usize << self.n_qubits;
        let mut out = vec![vec![Complex::ZERO; dim]; dim];
        self.to_matrix_rec(m, self.n_qubits, Complex::ONE, 0, 0, &mut out);
        out
    }

    fn to_matrix_rec(
        &self,
        e: MEdge,
        level: usize,
        acc: Complex,
        row: usize,
        col: usize,
        out: &mut [Vec<Complex>],
    ) {
        if e.is_zero() {
            return;
        }
        let acc = acc * self.ctab.value(e.weight);
        if level == 0 {
            out[row][col] = acc;
            return;
        }
        let node = self.mnode(e.node);
        debug_assert_eq!(node.var as usize, level - 1);
        let half = 1usize << (level - 1);
        for rbit in 0..2 {
            for cbit in 0..2 {
                self.to_matrix_rec(
                    node.children[rbit * 2 + cbit],
                    level - 1,
                    acc,
                    row + rbit * half,
                    col + cbit * half,
                    out,
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    /// Adds two vector decision diagrams.
    pub fn add_vectors(&mut self, a: VEdge, b: VEdge) -> VEdge {
        if self.exceeded.is_some() {
            return VEdge::ZERO;
        }
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        if a.is_terminal() && b.is_terminal() {
            let w = self.ctab.add(a.weight, b.weight);
            return if w.is_zero() {
                VEdge::ZERO
            } else {
                VEdge::terminal(w)
            };
        }
        debug_assert!(!a.is_terminal() && !b.is_terminal());
        let ratio = self.ctab.div(b.weight, a.weight);
        let key = (a.node, b.node, ratio);
        if let Some(&cached) = self.ct_add_vec.get(&key) {
            let w = self.ctab.mul(cached.weight, a.weight);
            return if w.is_zero() {
                VEdge::ZERO
            } else {
                VEdge::new(cached.node, w)
            };
        }
        let an = self.vnode(a.node);
        let bn = self.vnode(b.node);
        debug_assert_eq!(an.var, bn.var, "vector addition level mismatch");
        let mut children = [VEdge::ZERO; 2];
        for (i, child) in children.iter_mut().enumerate() {
            let bw = self.ctab.mul(bn.children[i].weight, ratio);
            let bc = bn.children[i].with_weight(bw);
            *child = self.add_vectors(an.children[i], bc);
        }
        let result = self.make_vnode(an.var, children);
        if self.exceeded.is_none() {
            self.ct_add_vec.insert(key, result);
        }
        let w = self.ctab.mul(result.weight, a.weight);
        if w.is_zero() {
            VEdge::ZERO
        } else {
            VEdge::new(result.node, w)
        }
    }

    /// Adds two matrix decision diagrams.
    pub fn add_matrices(&mut self, a: MEdge, b: MEdge) -> MEdge {
        if self.exceeded.is_some() {
            return MEdge::ZERO;
        }
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        if a.is_terminal() && b.is_terminal() {
            let w = self.ctab.add(a.weight, b.weight);
            return if w.is_zero() {
                MEdge::ZERO
            } else {
                MEdge::terminal(w)
            };
        }
        debug_assert!(!a.is_terminal() && !b.is_terminal());
        let ratio = self.ctab.div(b.weight, a.weight);
        let key = (a.node, b.node, ratio);
        if let Some(&cached) = self.ct_add_mat.get(&key) {
            let w = self.ctab.mul(cached.weight, a.weight);
            return if w.is_zero() {
                MEdge::ZERO
            } else {
                MEdge::new(cached.node, w)
            };
        }
        let an = self.mnode(a.node);
        let bn = self.mnode(b.node);
        debug_assert_eq!(an.var, bn.var, "matrix addition level mismatch");
        let mut children = [MEdge::ZERO; 4];
        for (i, child) in children.iter_mut().enumerate() {
            let bw = self.ctab.mul(bn.children[i].weight, ratio);
            let bc = bn.children[i].with_weight(bw);
            *child = self.add_matrices(an.children[i], bc);
        }
        let result = self.make_mnode(an.var, children);
        if self.exceeded.is_none() {
            self.ct_add_mat.insert(key, result);
        }
        let w = self.ctab.mul(result.weight, a.weight);
        if w.is_zero() {
            MEdge::ZERO
        } else {
            MEdge::new(result.node, w)
        }
    }

    /// Applies a matrix decision diagram to a vector decision diagram.
    pub fn mul_mat_vec(&mut self, m: MEdge, v: VEdge) -> VEdge {
        if self.exceeded.is_some() {
            return VEdge::ZERO;
        }
        if m.is_zero() || v.is_zero() {
            return VEdge::ZERO;
        }
        if m.is_terminal() && v.is_terminal() {
            let w = self.ctab.mul(m.weight, v.weight);
            return VEdge::terminal(w);
        }
        debug_assert!(!m.is_terminal() && !v.is_terminal());
        let key = (m.node, v.node);
        let result = if let Some(&cached) = self.ct_mat_vec.get(&key) {
            cached
        } else {
            let mn = self.mnode(m.node);
            let vn = self.vnode(v.node);
            debug_assert_eq!(mn.var, vn.var, "matrix-vector level mismatch");
            let mut children = [VEdge::ZERO; 2];
            for (row, child) in children.iter_mut().enumerate() {
                let mut acc = VEdge::ZERO;
                for col in 0..2 {
                    let product = self.mul_mat_vec(mn.children[row * 2 + col], vn.children[col]);
                    acc = self.add_vectors(acc, product);
                }
                *child = acc;
            }
            let r = self.make_vnode(mn.var, children);
            if self.exceeded.is_none() {
                self.ct_mat_vec.insert(key, r);
            }
            r
        };
        let w = self.ctab.mul(m.weight, v.weight);
        let w = self.ctab.mul(result.weight, w);
        if w.is_zero() {
            VEdge::ZERO
        } else {
            VEdge::new(result.node, w)
        }
    }

    /// Multiplies two matrix decision diagrams (`a · b`).
    pub fn mul_matrices(&mut self, a: MEdge, b: MEdge) -> MEdge {
        if self.exceeded.is_some() {
            return MEdge::ZERO;
        }
        if a.is_zero() || b.is_zero() {
            return MEdge::ZERO;
        }
        if a.is_terminal() && b.is_terminal() {
            let w = self.ctab.mul(a.weight, b.weight);
            return MEdge::terminal(w);
        }
        debug_assert!(!a.is_terminal() && !b.is_terminal());
        let key = (a.node, b.node);
        let result = if let Some(&cached) = self.ct_mat_mat.get(&key) {
            cached
        } else {
            let an = self.mnode(a.node);
            let bn = self.mnode(b.node);
            debug_assert_eq!(an.var, bn.var, "matrix-matrix level mismatch");
            let mut children = [MEdge::ZERO; 4];
            for row in 0..2 {
                for col in 0..2 {
                    let mut acc = MEdge::ZERO;
                    for k in 0..2 {
                        let product =
                            self.mul_matrices(an.children[row * 2 + k], bn.children[k * 2 + col]);
                        acc = self.add_matrices(acc, product);
                    }
                    children[row * 2 + col] = acc;
                }
            }
            let r = self.make_mnode(an.var, children);
            if self.exceeded.is_none() {
                self.ct_mat_mat.insert(key, r);
            }
            r
        };
        let w = self.ctab.mul(a.weight, b.weight);
        let w = self.ctab.mul(result.weight, w);
        if w.is_zero() {
            MEdge::ZERO
        } else {
            MEdge::new(result.node, w)
        }
    }

    /// Complex-conjugate transpose of a matrix decision diagram.
    pub fn conjugate_transpose(&mut self, m: MEdge) -> MEdge {
        if self.exceeded.is_some() {
            return MEdge::ZERO;
        }
        if m.is_terminal() {
            let w = self.ctab.conj(m.weight);
            return if w.is_zero() {
                MEdge::ZERO
            } else {
                MEdge::terminal(w)
            };
        }
        let result = if let Some(&cached) = self.ct_transpose.get(&m.node) {
            cached
        } else {
            let node = self.mnode(m.node);
            let transposed = [
                node.children[0],
                node.children[2],
                node.children[1],
                node.children[3],
            ];
            let mut children = [MEdge::ZERO; 4];
            for (i, child) in children.iter_mut().enumerate() {
                *child = self.conjugate_transpose(transposed[i]);
            }
            let r = self.make_mnode(node.var, children);
            if self.exceeded.is_none() {
                self.ct_transpose.insert(m.node, r);
            }
            r
        };
        let w = self.ctab.conj(m.weight);
        let w = self.ctab.mul(result.weight, w);
        if w.is_zero() {
            MEdge::ZERO
        } else {
            MEdge::new(result.node, w)
        }
    }

    /// Convenience: applies a (controlled) single-qubit gate to a state.
    pub fn apply_gate(
        &mut self,
        state: VEdge,
        u: &GateMatrix,
        target: usize,
        controls: &[Control],
    ) -> VEdge {
        let gate = self.make_gate(u, target, controls);
        self.mul_mat_vec(gate, state)
    }

    // ------------------------------------------------------------------
    // Inner products, traces and identity checks
    // ------------------------------------------------------------------

    /// Hermitian inner product `⟨a|b⟩`.
    pub fn inner_product(&mut self, a: VEdge, b: VEdge) -> Complex {
        if a.is_zero() || b.is_zero() {
            return Complex::ZERO;
        }
        let scale = self.ctab.value(a.weight).conj() * self.ctab.value(b.weight);
        if a.is_terminal() && b.is_terminal() {
            return scale;
        }
        debug_assert!(!a.is_terminal() && !b.is_terminal());
        let key = (a.node, b.node);
        let inner = if let Some(&cached) = self.ct_inner.get(&key) {
            cached
        } else {
            let an = self.vnode(a.node);
            let bn = self.vnode(b.node);
            debug_assert_eq!(an.var, bn.var, "inner product level mismatch");
            let mut acc = Complex::ZERO;
            for k in 0..2 {
                acc += self.inner_product(an.children[k], bn.children[k]);
            }
            self.ct_inner.insert(key, acc);
            acc
        };
        scale * inner
    }

    /// Fidelity `|⟨a|b⟩|^2` between two states.
    pub fn fidelity(&mut self, a: VEdge, b: VEdge) -> f64 {
        self.inner_product(a, b).norm_sqr()
    }

    /// Squared norm `⟨v|v⟩` of a state.
    pub fn norm_sqr(&mut self, v: VEdge) -> f64 {
        if v.is_zero() {
            return 0.0;
        }
        let w = self.ctab.value(v.weight).norm_sqr();
        w * self.node_norm_sqr(v.node)
    }

    fn node_norm_sqr(&mut self, node: NodeId) -> f64 {
        if node.is_terminal() {
            return 1.0;
        }
        if let Some(&cached) = self.vnorm_cache.get(&node) {
            return cached;
        }
        let n = self.vnode(node);
        let mut total = 0.0;
        for child in n.children {
            if child.is_zero() {
                continue;
            }
            let w = self.ctab.value(child.weight).norm_sqr();
            total += w * self.node_norm_sqr(child.node);
        }
        self.vnorm_cache.insert(node, total);
        total
    }

    /// Trace of a matrix decision diagram.
    pub fn trace(&mut self, m: MEdge) -> Complex {
        if m.is_zero() {
            return Complex::ZERO;
        }
        let scale = self.ctab.value(m.weight);
        if m.is_terminal() {
            return scale;
        }
        let inner = if let Some(&cached) = self.ct_trace.get(&m.node) {
            cached
        } else {
            let node = self.mnode(m.node);
            let t0 = self.trace(node.children[0]);
            let t3 = self.trace(node.children[3]);
            let acc = t0 + t3;
            self.ct_trace.insert(m.node, acc);
            acc
        };
        scale * inner
    }

    /// Normalised identity fidelity `|tr(M)| / 2^n` of a matrix diagram.
    ///
    /// The value is 1 exactly when `M` is the identity up to a global phase,
    /// making it a numerically robust equivalence criterion.
    pub fn identity_fidelity(&mut self, m: MEdge) -> f64 {
        let dim = 2f64.powi(self.n_qubits as i32);
        self.trace(m).abs() / dim
    }

    /// Structural identity check: `m` equals the identity diagram node-for-node.
    ///
    /// With `up_to_global_phase`, the top weight only needs unit magnitude.
    pub fn is_identity(&mut self, m: MEdge, up_to_global_phase: bool) -> bool {
        let ident = self.identity();
        if m.node != ident.node {
            return false;
        }
        let w = self.ctab.value(m.weight);
        if up_to_global_phase {
            (w.abs() - 1.0).abs() < TOLERANCE
        } else {
            w.is_one()
        }
    }

    // ------------------------------------------------------------------
    // Measurement support
    // ------------------------------------------------------------------

    /// Probabilities of measuring `qubit` as 0 and 1 in state `v`.
    ///
    /// The state does not need to be normalised; the returned values are the
    /// squared norms of the two projections.
    pub fn probabilities(&mut self, v: VEdge, qubit: usize) -> (f64, f64) {
        assert!(qubit < self.n_qubits, "qubit {qubit} out of range");
        let mut cache: FxHashMap<NodeId, (f64, f64)> = FxHashMap::default();
        let (p0, p1) = self.prob_rec(v, qubit, &mut cache);
        (p0, p1)
    }

    fn prob_rec(
        &mut self,
        e: VEdge,
        qubit: usize,
        cache: &mut FxHashMap<NodeId, (f64, f64)>,
    ) -> (f64, f64) {
        if e.is_zero() {
            return (0.0, 0.0);
        }
        debug_assert!(!e.is_terminal(), "probability query below the target qubit");
        let w = self.ctab.value(e.weight).norm_sqr();
        if let Some(&(c0, c1)) = cache.get(&e.node) {
            return (w * c0, w * c1);
        }
        let node = self.vnode(e.node);
        let (n0, n1) = if node.var as usize == qubit {
            let p0 = if node.children[0].is_zero() {
                0.0
            } else {
                let cw = self.ctab.value(node.children[0].weight).norm_sqr();
                cw * self.node_norm_sqr(node.children[0].node)
            };
            let p1 = if node.children[1].is_zero() {
                0.0
            } else {
                let cw = self.ctab.value(node.children[1].weight).norm_sqr();
                cw * self.node_norm_sqr(node.children[1].node)
            };
            (p0, p1)
        } else {
            let (a0, a1) = self.prob_rec(node.children[0], qubit, cache);
            let (b0, b1) = self.prob_rec(node.children[1], qubit, cache);
            (a0 + b0, a1 + b1)
        };
        cache.insert(e.node, (n0, n1));
        (w * n0, w * n1)
    }

    /// Projects `qubit` onto `outcome`, optionally renormalising the result.
    ///
    /// Returns the projected state and the probability of the outcome.
    pub fn collapse(
        &mut self,
        v: VEdge,
        qubit: usize,
        outcome: bool,
        renormalize: bool,
    ) -> (VEdge, f64) {
        let (p0, p1) = self.probabilities(v, qubit);
        let p = if outcome { p1 } else { p0 };
        if p <= TOLERANCE {
            return (VEdge::ZERO, 0.0);
        }
        let mut cache: FxHashMap<NodeId, VEdge> = FxHashMap::default();
        let projected = self.project_rec(v, qubit, outcome, &mut cache);
        let result = if renormalize {
            let scale = self.intern(Complex::real(1.0 / p.sqrt()));
            let w = self.ctab.mul(projected.weight, scale);
            VEdge::new(projected.node, w)
        } else {
            projected
        };
        (result, p)
    }

    fn project_rec(
        &mut self,
        e: VEdge,
        qubit: usize,
        outcome: bool,
        cache: &mut FxHashMap<NodeId, VEdge>,
    ) -> VEdge {
        if e.is_zero() {
            return VEdge::ZERO;
        }
        debug_assert!(!e.is_terminal(), "projection below the target qubit");
        let result = if let Some(&cached) = cache.get(&e.node) {
            cached
        } else {
            let node = self.vnode(e.node);
            let r = if node.var as usize == qubit {
                let mut children = [VEdge::ZERO; 2];
                children[outcome as usize] = node.children[outcome as usize];
                self.make_vnode(node.var, children)
            } else {
                let c0 = self.project_rec(node.children[0], qubit, outcome, cache);
                let c1 = self.project_rec(node.children[1], qubit, outcome, cache);
                self.make_vnode(node.var, [c0, c1])
            };
            cache.insert(e.node, r);
            r
        };
        let w = self.ctab.mul(result.weight, e.weight);
        if w.is_zero() {
            VEdge::ZERO
        } else {
            VEdge::new(result.node, w)
        }
    }

    // ------------------------------------------------------------------
    // Diagram statistics
    // ------------------------------------------------------------------

    /// Number of distinct nodes reachable from a vector edge (excluding the
    /// terminal).
    pub fn vector_size(&self, v: VEdge) -> usize {
        let mut seen = std::collections::HashSet::new();
        self.vsize_rec(v, &mut seen);
        seen.len()
    }

    fn vsize_rec(&self, e: VEdge, seen: &mut std::collections::HashSet<NodeId>) {
        if e.is_zero() || e.is_terminal() || !seen.insert(e.node) {
            return;
        }
        let node = self.vnode(e.node);
        for child in node.children {
            self.vsize_rec(child, seen);
        }
    }

    /// Number of distinct nodes reachable from a matrix edge (excluding the
    /// terminal).
    pub fn matrix_size(&self, m: MEdge) -> usize {
        let mut seen = std::collections::HashSet::new();
        self.msize_rec(m, &mut seen);
        seen.len()
    }

    fn msize_rec(&self, e: MEdge, seen: &mut std::collections::HashSet<NodeId>) {
        if e.is_zero() || e.is_terminal() || !seen.insert(e.node) {
            return;
        }
        let node = self.mnode(e.node);
        for child in node.children {
            self.msize_rec(child, seen);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    fn dense_kron(a: &[Vec<Complex>], b: &[Vec<Complex>]) -> Vec<Vec<Complex>> {
        let n = a.len() * b.len();
        let mut out = vec![vec![Complex::ZERO; n]; n];
        for (i, arow) in a.iter().enumerate() {
            for (j, aval) in arow.iter().enumerate() {
                for (k, brow) in b.iter().enumerate() {
                    for (l, bval) in brow.iter().enumerate() {
                        out[i * b.len() + k][j * b.len() + l] = *aval * *bval;
                    }
                }
            }
        }
        out
    }

    fn gate_to_dense(g: &GateMatrix) -> Vec<Vec<Complex>> {
        vec![vec![g[0][0], g[0][1]], vec![g[1][0], g[1][1]]]
    }

    fn ident_dense(n: usize) -> Vec<Vec<Complex>> {
        let dim = 1 << n;
        let mut m = vec![vec![Complex::ZERO; dim]; dim];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = Complex::ONE;
        }
        m
    }

    fn assert_matrix_eq(a: &[Vec<Complex>], b: &[Vec<Complex>]) {
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(b.iter()) {
            for (x, y) in ra.iter().zip(rb.iter()) {
                assert!(x.approx_eq(*y), "{x} != {y}");
            }
        }
    }

    #[test]
    fn basis_state_amplitudes() {
        let mut p = DdPackage::new(3);
        let state = p.basis_state(&[true, false, true]); // |101⟩ = index 5
        let amps = p.amplitudes(state);
        for (i, amp) in amps.iter().enumerate() {
            if i == 0b101 {
                assert!(amp.is_one());
            } else {
                assert!(amp.is_zero());
            }
        }
        assert!((p.norm_sqr(state) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_creates_uniform_superposition() {
        let mut p = DdPackage::new(2);
        let mut state = p.zero_state();
        state = p.apply_gate(state, &gates::h(), 0, &[]);
        state = p.apply_gate(state, &gates::h(), 1, &[]);
        let amps = p.amplitudes(state);
        for amp in amps {
            assert!(amp.approx_eq(Complex::real(0.5)));
        }
    }

    #[test]
    fn bell_state_probabilities() {
        let mut p = DdPackage::new(2);
        let mut state = p.zero_state();
        state = p.apply_gate(state, &gates::h(), 0, &[]);
        state = p.apply_gate(state, &gates::x(), 1, &[Control::pos(0)]);
        let amps = p.amplitudes(state);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!(amps[0b00].approx_eq(Complex::real(s)));
        assert!(amps[0b11].approx_eq(Complex::real(s)));
        assert!(amps[0b01].is_zero());
        assert!(amps[0b10].is_zero());
        let (p0, p1) = p.probabilities(state, 0);
        assert!((p0 - 0.5).abs() < 1e-12);
        assert!((p1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn collapse_bell_state() {
        let mut p = DdPackage::new(2);
        let mut state = p.zero_state();
        state = p.apply_gate(state, &gates::h(), 0, &[]);
        state = p.apply_gate(state, &gates::x(), 1, &[Control::pos(0)]);
        let (collapsed, prob) = p.collapse(state, 0, true, true);
        assert!((prob - 0.5).abs() < 1e-12);
        let amps = p.amplitudes(collapsed);
        assert!(amps[0b11].is_one());
        assert!(amps[0b00].is_zero());
    }

    #[test]
    fn collapse_impossible_outcome_returns_zero() {
        let mut p = DdPackage::new(1);
        let state = p.zero_state();
        let (collapsed, prob) = p.collapse(state, 0, true, true);
        assert!(collapsed.is_zero());
        assert_eq!(prob, 0.0);
    }

    #[test]
    fn gate_dd_matches_dense_kron_no_control() {
        // H on qubit 1 of a 3-qubit register: I ⊗ H ⊗ I (qubit 2 ⊗ 1 ⊗ 0).
        let mut p = DdPackage::new(3);
        let dd = p.make_gate(&gates::h(), 1, &[]);
        let dense = dense_kron(
            &dense_kron(&ident_dense(1), &gate_to_dense(&gates::h())),
            &ident_dense(1),
        );
        assert_matrix_eq(&p.to_matrix(dd), &dense);
    }

    #[test]
    fn gate_dd_matches_dense_cnot() {
        // CNOT with control 0, target 1 in a 2-qubit register.
        let mut p = DdPackage::new(2);
        let dd = p.make_gate(&gates::x(), 1, &[Control::pos(0)]);
        // Basis order: index = q1 q0. CX(control=0, target=1):
        // |00⟩→|00⟩, |01⟩→|11⟩, |10⟩→|10⟩, |11⟩→|01⟩.
        let mut dense = vec![vec![Complex::ZERO; 4]; 4];
        dense[0b00][0b00] = Complex::ONE;
        dense[0b11][0b01] = Complex::ONE;
        dense[0b10][0b10] = Complex::ONE;
        dense[0b01][0b11] = Complex::ONE;
        assert_matrix_eq(&p.to_matrix(dd), &dense);
    }

    #[test]
    fn gate_dd_negative_control() {
        let mut p = DdPackage::new(2);
        let dd = p.make_gate(&gates::x(), 1, &[Control::neg(0)]);
        // X on qubit 1 applied only when qubit 0 is |0⟩.
        let mut dense = vec![vec![Complex::ZERO; 4]; 4];
        dense[0b10][0b00] = Complex::ONE;
        dense[0b00][0b10] = Complex::ONE;
        dense[0b01][0b01] = Complex::ONE;
        dense[0b11][0b11] = Complex::ONE;
        assert_matrix_eq(&p.to_matrix(dd), &dense);
    }

    #[test]
    fn gate_dd_control_above_target() {
        let mut p = DdPackage::new(2);
        let dd = p.make_gate(&gates::x(), 0, &[Control::pos(1)]);
        // CX with control 1, target 0: |10⟩→|11⟩, |11⟩→|10⟩.
        let mut dense = vec![vec![Complex::ZERO; 4]; 4];
        dense[0b00][0b00] = Complex::ONE;
        dense[0b01][0b01] = Complex::ONE;
        dense[0b11][0b10] = Complex::ONE;
        dense[0b10][0b11] = Complex::ONE;
        assert_matrix_eq(&p.to_matrix(dd), &dense);
    }

    #[test]
    fn toffoli_dense() {
        let mut p = DdPackage::new(3);
        let dd = p.make_gate(&gates::x(), 2, &[Control::pos(0), Control::pos(1)]);
        let dense = p.to_matrix(dd);
        let dim = 8;
        #[allow(clippy::needless_range_loop)]
        for row in 0..dim {
            for col in 0..dim {
                let expected = if col & 0b011 == 0b011 {
                    // both controls set: flip bit 2
                    usize::from(row == col ^ 0b100)
                } else {
                    usize::from(row == col)
                };
                assert!(
                    dense[row][col].approx_eq(Complex::real(expected as f64)),
                    "mismatch at ({row},{col})"
                );
            }
        }
    }

    #[test]
    fn matrix_product_matches_gate_composition() {
        let mut p = DdPackage::new(2);
        let h0 = p.make_gate(&gates::h(), 0, &[]);
        let cx = p.make_gate(&gates::x(), 1, &[Control::pos(0)]);
        let circuit = p.mul_matrices(cx, h0);
        // Apply to |00⟩ and compare with the Bell state.
        let zero = p.zero_state();
        let bell_via_matrix = p.mul_mat_vec(circuit, zero);
        let mut bell_via_gates = p.zero_state();
        bell_via_gates = p.apply_gate(bell_via_gates, &gates::h(), 0, &[]);
        bell_via_gates = p.apply_gate(bell_via_gates, &gates::x(), 1, &[Control::pos(0)]);
        assert!((p.fidelity(bell_via_matrix, bell_via_gates) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn unitary_times_adjoint_is_identity() {
        let mut p = DdPackage::new(3);
        let mut u = p.identity();
        for (q, gate) in [gates::h(), gates::t(), gates::sx()].iter().enumerate() {
            let g = p.make_gate(gate, q, &[]);
            u = p.mul_matrices(g, u);
        }
        let cx = p.make_gate(&gates::x(), 2, &[Control::pos(0)]);
        u = p.mul_matrices(cx, u);
        let udag = p.conjugate_transpose(u);
        let product = p.mul_matrices(udag, u);
        assert!(p.is_identity(product, false));
        assert!((p.identity_fidelity(product) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn identity_fidelity_detects_non_identity() {
        let mut p = DdPackage::new(2);
        let x0 = p.make_gate(&gates::x(), 0, &[]);
        assert!(p.identity_fidelity(x0) < 0.5);
        assert!(!p.is_identity(x0, true));
    }

    #[test]
    fn global_phase_identity() {
        let mut p = DdPackage::new(1);
        // RZ(θ) equals P(θ) up to a global phase, so RZ(θ)·P(θ)† should be
        // the identity only up to a global phase.
        let theta = 0.7;
        let rz = p.make_gate(&gates::rz(theta), 0, &[]);
        let phase = p.make_gate(&gates::phase(theta), 0, &[]);
        let phase_dag = p.conjugate_transpose(phase);
        let product = p.mul_matrices(rz, phase_dag);
        assert!(!p.is_identity(product, false));
        assert!(p.is_identity(product, true));
        assert!((p.identity_fidelity(product) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn inner_product_orthogonal_states() {
        let mut p = DdPackage::new(2);
        let a = p.basis_state(&[false, false]);
        let b = p.basis_state(&[true, false]);
        assert!(p.inner_product(a, b).is_zero());
        assert!(p.inner_product(a, a).is_one());
        assert_eq!(p.fidelity(a, b), 0.0);
    }

    #[test]
    fn add_vectors_and_scale() {
        let mut p = DdPackage::new(1);
        let zero = p.basis_state(&[false]);
        let one = p.basis_state(&[true]);
        let sum = p.add_vectors(zero, one);
        let amps = p.amplitudes(sum);
        assert!(amps[0].is_one());
        assert!(amps[1].is_one());
        // |0⟩ + |1⟩ has squared norm 2.
        assert!((p.norm_sqr(sum) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn add_cancellation_yields_zero() {
        let mut p = DdPackage::new(2);
        let a = p.basis_state(&[true, false]);
        let minus_w = p.intern(Complex::real(-1.0));
        let b = VEdge::new(a.node, minus_w);
        let sum = p.add_vectors(a, b);
        assert!(sum.is_zero());
    }

    #[test]
    fn from_amplitudes_roundtrip() {
        let mut p = DdPackage::new(2);
        let amps = vec![
            Complex::new(0.5, 0.0),
            Complex::new(0.0, 0.5),
            Complex::new(-0.5, 0.0),
            Complex::new(0.0, -0.5),
        ];
        let v = p.from_amplitudes(&amps);
        let back = p.amplitudes(v);
        for (a, b) in amps.iter().zip(back.iter()) {
            assert!(a.approx_eq(*b));
        }
        for (i, amp) in amps.iter().enumerate() {
            assert!(p.amplitude(v, i).approx_eq(*amp));
        }
    }

    #[test]
    fn from_matrix_roundtrip() {
        let mut p = DdPackage::new(2);
        let cx = p.make_gate(&gates::x(), 1, &[Control::pos(0)]);
        let dense = p.to_matrix(cx);
        let rebuilt = p.from_matrix(&dense);
        assert_eq!(cx, rebuilt);
    }

    #[test]
    fn hash_consing_shares_nodes() {
        let mut p = DdPackage::new(4);
        let a = p.zero_state();
        let b = p.zero_state();
        assert_eq!(a, b);
        let before = p.stats().vector_nodes;
        let _ = p.zero_state();
        assert_eq!(p.stats().vector_nodes, before);
    }

    #[test]
    fn ghz_state_has_linear_size() {
        let n = 16;
        let mut p = DdPackage::new(n);
        let mut state = p.zero_state();
        state = p.apply_gate(state, &gates::h(), 0, &[]);
        for q in 1..n {
            state = p.apply_gate(state, &gates::x(), q, &[Control::pos(q - 1)]);
        }
        assert!(p.vector_size(state) <= 2 * n);
        let (p0, p1) = p.probabilities(state, n - 1);
        assert!((p0 - 0.5).abs() < 1e-10);
        assert!((p1 - 0.5).abs() < 1e-10);
    }

    #[test]
    fn large_identity_structural_check() {
        let mut p = DdPackage::new(64);
        let mut u = p.identity();
        // A few self-inverse layers: H on every qubit, applied twice.
        for _ in 0..2 {
            for q in 0..64 {
                let g = p.make_gate(&gates::h(), q, &[]);
                u = p.mul_matrices(g, u);
            }
        }
        assert!(p.is_identity(u, false));
    }

    #[test]
    fn clear_compute_tables_keeps_results_valid() {
        let mut p = DdPackage::new(2);
        let h = p.make_gate(&gates::h(), 0, &[]);
        let a = p.mul_matrices(h, h);
        p.clear_compute_tables();
        let b = p.mul_matrices(h, h);
        assert_eq!(a, b);
        assert!(p.is_identity(a, false));
    }

    #[test]
    fn node_limit_trips_and_poisons_results() {
        use crate::limits::{Budget, LimitExceeded};
        let budget = Budget::unlimited().with_node_limit(8);
        let mut p = DdPackage::with_budget(10, budget);
        let mut state = p.zero_state();
        for q in 0..10 {
            state = p.apply_gate(state, &gates::h(), q, &[]);
            let g = p.make_gate(&gates::phase(0.1 * q as f64), q, &[]);
            state = p.mul_mat_vec(g, state);
            if p.limit_exceeded().is_some() {
                break;
            }
        }
        assert_eq!(p.limit_exceeded(), Some(LimitExceeded::NodeLimit));
        // Operations after the trip unwind to zero edges.
        let z = p.zero_state();
        assert!(p.mul_mat_vec(MEdge::ZERO, z).is_zero());
    }

    #[test]
    fn cancellation_is_observed_during_diagram_construction() {
        use crate::limits::{Budget, CancelToken, LimitExceeded};
        let token = CancelToken::new();
        let budget = Budget::unlimited().with_cancel_token(token.clone());
        let mut p = DdPackage::with_budget(12, budget);
        token.cancel();
        // Keep allocating until the 256-allocation poll notices the flag.
        let mut state = p.zero_state();
        for round in 0..64 {
            for q in 0..12 {
                state = p.apply_gate(state, &gates::ry(0.37 + round as f64 + q as f64), q, &[]);
            }
            if p.limit_exceeded().is_some() {
                break;
            }
        }
        assert_eq!(p.limit_exceeded(), Some(LimitExceeded::Cancelled));
    }

    #[test]
    fn unbudgeted_package_never_trips() {
        let mut p = DdPackage::new(8);
        let mut state = p.zero_state();
        for q in 0..8 {
            state = p.apply_gate(state, &gates::h(), q, &[]);
        }
        assert_eq!(p.limit_exceeded(), None);
        assert!((p.norm_sqr(state) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stats_report_allocations() {
        let mut p = DdPackage::new(2);
        assert_eq!(p.stats().vector_nodes, 0);
        let _ = p.zero_state();
        assert!(p.stats().vector_nodes > 0);
        assert!(p.stats().complex_values >= 2);
    }
}
